"""Deep dive: derandomizing MIS three different ways.

Solves MIS on the same 2-hop colored instance with every solver in the
library and compares them:

* **A_*** — the paper's Figure 3 algorithm, run faithfully (candidate
  enumeration and all);
* **A_∞ / practical** — the Theorem 2 construction on the finite view
  graph, with the smallest-successful-assignment rule;
* **greedy-by-color** — the direct deterministic baseline that skips the
  generic machinery.

All three are deterministic given the colored instance and all three
outputs are valid — but they are *different* MIS's computed at wildly
different costs, which is exactly the trade-off DESIGN.md's ablation
section talks about.

Run:  python examples/mis_derandomized.py
"""

from __future__ import annotations

import time

from repro import MISProblem, cycle_graph, with_uniform_input
from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.core.a_star import AStarSolver
from repro.core.infinity import AInfinitySolver
from repro.core.practical import PracticalDerandomizer
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.runtime.simulation import run_deterministic


def main() -> None:
    # A colored C6 that covers a colored C3: the quotient has 3 nodes,
    # which keeps even the faithful A_* comfortable.
    base = with_uniform_input(cycle_graph(3))
    base = apply_two_hop_coloring(base, greedy_two_hop_coloring(base))
    instance, _ = cyclic_lift(base, 2)
    plain = instance.with_only_layers(["input"])
    problem = MISProblem()
    print(f"instance: colored C6 covering colored C3 ({instance.num_nodes} nodes)")

    # 1. Faithful A_* (Figure 3).
    solver = AStarSolver(problem, AnonymousMISAlgorithm(), max_candidate_nodes=3)
    start = time.perf_counter()
    a_star_outputs, diagnostics = solver.solve(instance, max_phases=16)
    a_star_ms = (time.perf_counter() - start) * 1000
    assert problem.is_valid_output(plain, a_star_outputs)
    print(
        f"\nA_* (faithful Figure 3): {diagnostics.phases} phases, "
        f"{diagnostics.message_rounds} gather rounds, "
        f"{diagnostics.candidates_enumerated} candidates, {a_star_ms:.1f} ms"
    )
    print(f"  outputs: {a_star_outputs}")

    # 2. A_infinity / practical derandomizer (Theorem 2 route).
    start = time.perf_counter()
    infinity_result = AInfinitySolver(problem, AnonymousMISAlgorithm()).solve(instance)
    infinity_ms = (time.perf_counter() - start) * 1000
    assert problem.is_valid_output(plain, infinity_result.outputs)
    print(
        f"\nA_infinity (Theorem 2): quotient "
        f"{infinity_result.quotient.graph.num_nodes} nodes, selected "
        f"assignment {infinity_result.assignment}, {infinity_ms:.1f} ms"
    )
    print(f"  outputs: {infinity_result.outputs}")

    practical = PracticalDerandomizer(problem, AnonymousMISAlgorithm()).solve(instance)
    print(
        "  practical derandomizer agrees with A_infinity:",
        practical.outputs == infinity_result.outputs,
    )

    # 3. Greedy-by-color baseline.
    start = time.perf_counter()
    greedy = run_deterministic(GreedyMISByColor(), instance)
    greedy_ms = (time.perf_counter() - start) * 1000
    assert problem.is_valid_output(plain, greedy.outputs)
    print(f"\ngreedy-by-color baseline: {greedy.rounds} rounds, {greedy_ms:.2f} ms")
    print(f"  outputs: {greedy.outputs}")

    print(
        "\nall three deterministic solvers valid; sizes: "
        f"A_*={sum(a_star_outputs.values())}, "
        f"A_inf={sum(infinity_result.outputs.values())}, "
        f"greedy={sum(greedy.outputs.values())}"
    )


if __name__ == "__main__":
    main()
