"""Quickstart: the paper's headline result in ten lines of library use.

"Randomization = 2-hop coloring": solving MIS in an anonymous network by
(1) a generic randomized 2-hop coloring stage and (2) a deterministic
problem-specific stage, with every intermediate object inspectable.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnonymousMISAlgorithm,
    GranBundle,
    MISProblem,
    WellFormedInputDecider,
    cycle_graph,
    derandomize_pipeline,
    run_randomized,
    with_uniform_input,
)


def main() -> None:
    # An anonymous 8-cycle: all nodes identical, no IDs — the classic
    # setting where deterministic algorithms are powerless.
    graph = with_uniform_input(cycle_graph(8))
    print(f"instance: {graph}")

    # MIS is in GRAN: a randomized anonymous solver plus a decider.
    bundle = GranBundle(
        problem=MISProblem(),
        solver=AnonymousMISAlgorithm(),
        decider=WellFormedInputDecider(),
    )

    # For comparison: the purely randomized solve.
    randomized = run_randomized(bundle.solver, graph, seed=42)
    print(f"\nrandomized MIS ({randomized.rounds} rounds):")
    print(f"  {randomized.outputs}")

    # The paper's decoupling: randomness only for the 2-hop coloring,
    # then a deterministic stage.
    result = derandomize_pipeline(bundle, graph, seed=42, strategy="prg")
    print(f"\npipeline stage 1 (randomized 2-hop coloring, "
          f"{result.stage1_rounds} rounds):")
    print(f"  {result.coloring}")
    print(f"\npipeline stage 2 (deterministic on the quotient of "
          f"{result.quotient_size} view classes):")
    print(f"  selected simulation: {result.stage2.assignment}")
    print(f"  outputs: {result.outputs}")

    in_mis = sorted(v for v, value in result.outputs.items() if value)
    print(f"\nMIS found deterministically from the coloring: {in_mis}")
    print("validated:", bundle.problem.is_valid_output(graph, result.outputs))

    # The same coloring, reused for a *different* problem — the coloring
    # stage is generic (that is the theorem's point).
    from repro import ColoringProblem, VertexColoringAlgorithm

    coloring_bundle = GranBundle(
        ColoringProblem(), VertexColoringAlgorithm(), WellFormedInputDecider()
    )
    second = derandomize_pipeline(coloring_bundle, graph, seed=42, strategy="prg")
    print(f"\nsame stage-1 coloring reused for proper coloring: "
          f"{second.outputs}")


if __name__ == "__main__":
    main()
