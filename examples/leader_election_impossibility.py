"""Why leader election is *not* rescued by 2-hop colorings.

The paper restricts Theorem 1 to GRAN, explicitly ruling out problems
like leader election.  This example makes the boundary tangible:

1. On a *prime* 2-hop colored instance, views are unique aliases
   (Lemma 4) and a deterministic anonymous algorithm can elect the node
   with the minimal view.
2. On a *non-prime* instance (a lifted cycle), whole fibers share their
   views; we exhibit the lifted execution in which all fiber members
   behave identically — no algorithm, even a randomized Las-Vegas one,
   can guarantee a unique leader.

Run:  python examples/leader_election_impossibility.py
"""

from __future__ import annotations

from repro import cycle_graph, path_graph, with_uniform_input
from repro.analysis.symmetry import (
    election_is_deterministically_impossible,
    view_class_profile,
)
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import verify_execution_lifting
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.runtime.simulation import run_randomized
from repro.views.local_views import all_views


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def elect_by_minimal_view(graph):
    """Deterministic anonymous election on a prime instance: leader =
    the node whose depth-n view is the minimum in the canonical order."""
    views = all_views(graph, graph.num_nodes)
    minimum = min(views.values(), key=lambda t: t.sort_key())
    return {v: views[v] is minimum for v in graph.nodes}


def main() -> None:
    # Case 1: a prime 2-hop colored instance — election works.
    prime_instance = colored(with_uniform_input(path_graph(5)))
    profile = view_class_profile(prime_instance)
    print(
        f"prime instance (colored P5): {profile.num_classes} view classes "
        f"for {profile.num_nodes} nodes"
    )
    leaders = elect_by_minimal_view(prime_instance)
    elected = [v for v, is_leader in leaders.items() if is_leader]
    print(f"  deterministic election by minimal view alias: leader = {elected}")
    assert len(elected) == 1

    # Case 2: a lifted (non-prime) instance — election impossible.
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, projection = cyclic_lift(base, 4)  # colored C12, quotient C3
    profile = view_class_profile(lift)
    print(
        f"\nnon-prime instance (colored C12 over C3): "
        f"{profile.num_classes} view classes for {profile.num_nodes} nodes "
        f"(classes of size {profile.class_sizes})"
    )
    print(
        "  deterministic election impossible:",
        election_is_deterministically_impossible(lift),
    )

    # Even randomized Las-Vegas election fails: lift an execution from
    # the quotient — it occurs with positive probability on C12, and in
    # it every fiber of 4 nodes acts in lockstep.
    fm = FactorizingMap(
        lift.with_only_layers(["input"]),
        base.with_only_layers(["input"]),
        projection,
    )
    algorithm = AnonymousMISAlgorithm()
    factor_run = run_randomized(algorithm, fm.factor, seed=5)
    comparison = verify_execution_lifting(algorithm, fm, factor_run.trace.assignment())
    assert comparison.lemma_holds
    print(
        "\n  lifted execution: per-fiber outputs "
        + str(
            {
                target: sorted(
                    {comparison.product_result.outputs[v] for v in fm.fiber(target)}
                )
                for target in fm.factor.nodes
            }
        )
    )
    print(
        "  every fiber of 4 nodes is indistinguishable -> any 'leader' "
        "would be elected 4 times.  Leader election is the paper's 'mock "
        "case' excluded from GRAN."
    )


if __name__ == "__main__":
    main()
