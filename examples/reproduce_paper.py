"""Reproduce the whole paper in one run.

Drives the :mod:`repro.experiments` registry: regenerates Figures 1-3,
validates Theorems 1-3 and Lemmas 2-4, exercises the lifting lemma, and
probes the boundaries (k-hop colorings, leader election, port
emulation).  Equivalent to ``python -m repro.experiments --all`` but
shows the library API for driving experiments programmatically.

Run:  python examples/reproduce_paper.py
"""

from __future__ import annotations

import time

from repro.experiments import all_experiment_ids, get_experiment


def main() -> None:
    print("Reproducing: Anonymous Networks: Randomization = 2-Hop Coloring")
    print("(Emek, Pfister, Seidel, Wattenhofer; PODC 2014)\n")

    total_checks = 0
    failed = []
    for experiment_id in all_experiment_ids():
        start = time.perf_counter()
        result = get_experiment(experiment_id)()
        elapsed = time.perf_counter() - start
        verdict = "PASS" if result.passed else "FAIL"
        print(
            f"[{verdict}] {experiment_id:<16} "
            f"{len(result.checks):>3} checks, {len(result.rows):>3} rows, "
            f"{elapsed * 1000:7.1f} ms — {result.title[:60]}"
        )
        total_checks += len(result.checks)
        if not result.passed:
            failed.append(experiment_id)

    print(f"\n{total_checks} executable claims checked across "
          f"{len(all_experiment_ids())} experiments.")
    if failed:
        raise SystemExit(f"FAILED: {failed}")
    print("Every figure regenerated; every theorem/lemma validated.")
    print("\nFor the full tables: python -m repro.experiments --all")


if __name__ == "__main__":
    main()
