"""The decoupling, recomposed: one anonymous algorithm end to end.

`derandomize_pipeline` orchestrates the two stages centrally (run the
coloring, collect it, hand it to the deterministic solver).  But the
paper's claim is about *anonymous algorithms*, so the repository also
provides :class:`~repro.runtime.composition.TwoStageComposition`: the
two stages fused into a single anonymous algorithm, with an embedded
synchronizer that handles nodes finishing stage 1 at different times.
No central orchestration — every node just runs the one composed state
machine.

Run:  python examples/one_algorithm_pipeline.py
"""

from __future__ import annotations

from repro import (
    MISProblem,
    TwoHopColoringAlgorithm,
    petersen_graph,
    run_randomized,
    with_uniform_input,
)
from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.analysis.render import render_output_timeline
from repro.runtime.composition import TwoStageComposition


def main() -> None:
    graph = with_uniform_input(petersen_graph())
    composed = TwoStageComposition(
        stage1=TwoHopColoringAlgorithm(),
        stage2=GreedyMISByColor(),
        make_stage2_input=lambda original, degree, color: (original[0], color),
    )
    print(f"running {composed.name!r} on the Petersen graph\n")

    result = run_randomized(composed, graph, seed=4)
    problem = MISProblem()
    assert problem.is_valid_output(graph, result.outputs)

    in_mis = sorted(v for v, value in result.outputs.items() if value)
    print(f"finished in {result.rounds} rounds; MIS = {in_mis} "
          f"(validated: {problem.is_valid_output(graph, result.outputs)})\n")
    print(render_output_timeline(result.trace))
    print(
        "\nNodes decide at different rounds — the embedded synchronizer "
        "bridged the staggered hand-off from the randomized coloring "
        "stage to the deterministic MIS stage."
    )


if __name__ == "__main__":
    main()
