"""Explorer for factors, products and prime factors of labeled graphs.

Walks through the paper's Section 2.3.1 machinery interactively-ish:
builds the Figure 2 tower, enumerates all factors of small graphs,
contrasts the unique prime factor of 2-hop colored graphs (Lemma 3) with
the uncolored 12-cycle's two prime factors, and shows the finite view
graph as the canonical representative.

Run:  python examples/prime_factor_explorer.py
"""

from __future__ import annotations

from repro import cycle_graph, with_uniform_input
from repro.factor.prime import all_factors, is_prime, prime_factors
from repro.factor.quotient import finite_view_graph
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift


def describe_factors(name: str, graph) -> None:
    factors = all_factors(graph, include_trivial=True)
    primes = prime_factors(graph)
    print(f"{name}: n={graph.num_nodes}, prime={is_prime(graph)}")
    sizes = sorted({fm.factor.num_nodes for fm in factors})
    print(f"  factor sizes: {sizes}")
    print(f"  prime factors (up to isomorphism): "
          f"{sorted(p.num_nodes for p in primes)}")


def main() -> None:
    print("=== uncolored cycles (the paper's counterexample) ===")
    describe_factors("C6 ", with_uniform_input(cycle_graph(6)))
    describe_factors("C12", with_uniform_input(cycle_graph(12)))
    print("  -> C12 has TWO prime factors (C3 and C4): without a 2-hop")
    print("     coloring, prime factorization is not unique.\n")

    print("=== the 2-hop colored tower of Figure 2 ===")
    base = with_uniform_input(cycle_graph(3))
    base = apply_two_hop_coloring(base, greedy_two_hop_coloring(base))
    for fiber in (2, 4):
        lift, _ = cyclic_lift(base, fiber)
        describe_factors(f"colored C{3 * fiber}", lift)
        quotient = finite_view_graph(lift)
        print(
            f"  finite view graph: {quotient.graph.num_nodes} nodes; "
            f"isomorphic to the colored C3 base: "
            f"{are_isomorphic(quotient.graph, base)}"
        )
    print("  -> with a 2-hop coloring the prime factor is unique (Lemma 3)")
    print("     and equals the infinite view graph.\n")

    print("=== node aliases in a prime graph (Lemma 4 / Corollary 1) ===")
    quotient = finite_view_graph(cyclic_lift(base, 4)[0])
    assert quotient.views is not None
    for node_id, view_tree in sorted(quotient.views.items()):
        print(
            f"  quotient node {node_id}: alias view depth={view_tree.depth}, "
            f"expanded size={view_tree.size}, mark={view_tree.mark!r}"
        )
    print("  distinct aliases:", len({id(t) for t in quotient.views.values()}))


if __name__ == "__main__":
    main()
