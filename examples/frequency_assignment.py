"""Frequency assignment in an anonymous radio mesh.

The paper cites frequency assignment in radio networks as the classic
application of 2-hop colorings (two transmitters sharing a frequency
must not have a common neighbor, or their transmissions collide at the
receiver).  This example models a randomly deployed mesh of identical,
unidentified radio nodes and assigns frequencies with the anonymous
randomized 2-hop coloring algorithm — then reduces the (bitstring)
colors to small frequency numbers with the greedy-by-color stage.

Run:  python examples/frequency_assignment.py
"""

from __future__ import annotations

import random

from repro import (
    LabeledGraph,
    TwoHopColoringAlgorithm,
    is_two_hop_coloring,
    run_randomized,
)
from repro.algorithms.greedy_by_color import GreedyColoringByColor
from repro.graphs.coloring import apply_two_hop_coloring, num_colors
from repro.runtime.simulation import run_deterministic


def deploy_mesh(num_nodes: int, radio_range: float, seed: int) -> LabeledGraph:
    """Random geometric-style deployment: nodes on a unit square, edges
    between nodes within radio range; resampled until connected."""
    rng = random.Random(seed)
    for _attempt in range(200):
        positions = {
            v: (rng.random(), rng.random()) for v in range(num_nodes)
        }
        edges = [
            (u, v)
            for u in range(num_nodes)
            for v in range(u + 1, num_nodes)
            if _dist(positions[u], positions[v]) <= radio_range
        ]
        try:
            graph = LabeledGraph(edges, nodes=range(num_nodes))
        except Exception:
            continue
        graph = graph.with_layer(
            "input", {v: (graph.degree(v), "radio") for v in graph.nodes}
        )
        return graph
    raise RuntimeError("could not deploy a connected mesh; increase range")


def _dist(a, b) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5


def main() -> None:
    mesh = deploy_mesh(num_nodes=24, radio_range=0.35, seed=7)
    print(f"deployed mesh: {mesh.num_nodes} radios, {mesh.num_edges} links")

    # Stage 1 — anonymous randomized 2-hop coloring (interference-free
    # "raw channels", but as unboundedly long bitstrings).
    run = run_randomized(TwoHopColoringAlgorithm(), mesh, seed=3)
    assert is_two_hop_coloring(mesh, run.outputs)
    print(
        f"2-hop coloring found in {run.rounds} rounds; "
        f"{num_colors(run.outputs)} distinct raw colors, longest "
        f"{max(len(c) for c in run.outputs.values())} bits"
    )

    # Stage 2 — deterministic frequency compaction: greedy reduction to
    # small integers in color order (distinct within 1 hop; for strict
    # 2-hop distinctness the raw colors can be kept).
    colored = apply_two_hop_coloring(mesh, run.outputs)
    reduced = run_deterministic(GreedyColoringByColor(), colored)
    frequencies = reduced.outputs
    print(
        f"compacted to {num_colors(frequencies)} frequencies in "
        f"{reduced.rounds} deterministic rounds"
    )

    # Report the channel map.
    by_frequency: dict = {}
    for v, f in sorted(frequencies.items()):
        by_frequency.setdefault(f, []).append(v)
    for f in sorted(by_frequency):
        print(f"  frequency {f}: radios {by_frequency[f]}")

    # Collision check at the MAC layer: adjacent radios never share.
    for u, v in mesh.edges():
        assert frequencies[u] != frequencies[v]
    print("no adjacent radios share a frequency — assignment is collision-free")


if __name__ == "__main__":
    main()
