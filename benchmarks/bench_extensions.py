"""Experiment EXT — the extension algorithms built on the paper's stack.

What a 2-hop coloring buys beyond the headline theorem:

* deterministic palette compaction to ≤ Δ² + 1 colors
  (:class:`TwoHopColorReduction`);
* a deterministic leader + BFS spanning tree on prime instances
  (:class:`LeaderBFSTree`);
* randomized 2-local election (:class:`TwoLocalElection`) — the
  related-work problem sitting at the same radius-2 boundary;
* the success-probability curve that explains the assignment-search
  economics.
"""

from __future__ import annotations

from repro.algorithms.bfs_tree import BFSTreeProblem, LeaderBFSTree
from repro.algorithms.color_reduction import TwoHopColorReduction
from repro.algorithms.local_election import TwoLocalElection
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.probability import measure_success_curve
from repro.analysis.sweeps import SweepRow, format_table
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import (
    apply_two_hop_coloring,
    greedy_two_hop_coloring,
    is_two_hop_coloring,
    num_colors,
)
from repro.graphs.properties import max_degree
from repro.runtime.simulation import run_deterministic, run_randomized
from repro.views.refinement import color_refinement


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def test_color_reduction_sweep(report, benchmark):
    cases = [
        ("cycle-12", with_uniform_input(cycle_graph(12))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("random-16", with_uniform_input(random_connected_graph(16, 0.2, seed=6))),
        ("random-24", with_uniform_input(random_connected_graph(24, 0.12, seed=7))),
    ]

    def run():
        results = []
        for name, graph in cases:
            instance = colored(graph)
            raw_colors = num_colors(instance.layer("color"))
            reduced = run_deterministic(TwoHopColorReduction(), instance, max_rounds=500)
            assert is_two_hop_coloring(graph, reduced.outputs)
            results.append((name, graph, raw_colors, reduced))
        return results

    rows = []
    for name, graph, raw_colors, reduced in benchmark.pedantic(run, rounds=1):
        delta = max_degree(graph)
        palette = num_colors(reduced.outputs)
        assert palette <= delta * delta + 1
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "Δ": delta,
                    "input colors": raw_colors,
                    "reduced palette": palette,
                    "bound Δ²+1": delta * delta + 1,
                    "rounds": reduced.rounds,
                },
            )
        )
    report(
        format_table(
            "EXT — deterministic distance-2 palette compaction "
            "(valid 2-hop colorings, ≤ Δ²+1 colors)",
            ["n", "Δ", "input colors", "reduced palette", "bound Δ²+1", "rounds"],
            rows,
        )
    )


def test_bfs_tree_sweep(report, benchmark):
    problem = BFSTreeProblem()

    def instance_of(graph):
        n = graph.num_nodes
        g = graph.with_layer(
            "input", {v: (graph.degree(v), n) for v in graph.nodes}
        )
        return colored(g)

    cases = [
        ("path-6", instance_of(path_graph(6))),
        ("cycle-5", instance_of(cycle_graph(5))),
        ("random-8", instance_of(random_connected_graph(8, 0.3, seed=4))),
        ("random-12", instance_of(random_connected_graph(12, 0.2, seed=13))),
    ]
    cases = [
        (name, g)
        for name, g in cases
        if color_refinement(g).num_classes == g.num_nodes
    ]

    def run():
        results = []
        for name, instance in cases:
            execution = run_deterministic(LeaderBFSTree(), instance, max_rounds=300)
            assert problem.is_valid_output(instance, execution.outputs)
            results.append((name, instance, execution))
        return results

    rows = []
    for name, instance, execution in benchmark.pedantic(run, rounds=1):
        depths = [
            value[1] for value in execution.outputs.values() if value[0] == "child"
        ]
        rows.append(
            SweepRow(
                name,
                {
                    "n": instance.num_nodes,
                    "rounds": execution.rounds,
                    "tree height": max(depths) if depths else 0,
                },
            )
        )
    report(
        format_table(
            "EXT — deterministic leader + BFS spanning tree on prime "
            "2-hop colored instances (validated trees)",
            ["n", "rounds", "tree height"],
            rows,
        )
    )


def test_two_local_election_sweep(report, benchmark):
    cases = [
        ("path-9", with_uniform_input(path_graph(9))),
        ("cycle-12", with_uniform_input(cycle_graph(12))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("random-16", with_uniform_input(random_connected_graph(16, 0.15, seed=2))),
    ]

    def run():
        results = []
        for name, graph in cases:
            leader_counts = []
            rounds = []
            for seed in range(5):
                execution = run_randomized(TwoLocalElection(), graph, seed=seed)
                leaders = [v for v in graph.nodes if execution.outputs[v]]
                for i, u in enumerate(leaders):
                    for v in leaders[i + 1 :]:
                        assert graph.distance(u, v) > 2
                for v in graph.nodes:
                    assert any(execution.outputs[u] for u in graph.nodes_within(v, 2))
                leader_counts.append(len(leaders))
                rounds.append(execution.rounds)
            results.append((name, graph, leader_counts, rounds))
        return results

    rows = []
    for name, graph, leader_counts, rounds in benchmark.pedantic(run, rounds=1):
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "mean leaders": sum(leader_counts) / len(leader_counts),
                    "mean rounds": sum(rounds) / len(rounds),
                },
            )
        )
    report(
        format_table(
            "EXT — randomized 2-local election (leaders pairwise > 2 hops, "
            "2-hop domination; 5 seeds each, all validated)",
            ["n", "mean leaders", "mean rounds"],
            rows,
        )
    )


def test_composed_pipeline_sweep(report, benchmark):
    """The decoupling as one anonymous algorithm (synchronized hand-off)."""
    from repro.algorithms.greedy_by_color import GreedyMISByColor
    from repro.problems.mis import MISProblem
    from repro.runtime.composition import TwoStageComposition

    composed = TwoStageComposition(
        TwoHopColoringAlgorithm(),
        GreedyMISByColor(),
        lambda original, degree, color: (original[0], color),
    )
    problem = MISProblem()
    cases = [
        ("cycle-12", with_uniform_input(cycle_graph(12))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("random-16", with_uniform_input(random_connected_graph(16, 0.15, seed=8))),
        ("random-24", with_uniform_input(random_connected_graph(24, 0.1, seed=9))),
    ]

    def run():
        results = []
        for name, graph in cases:
            rounds, sizes = [], []
            for seed in range(5):
                execution = run_randomized(composed, graph, seed=seed)
                assert problem.is_valid_output(graph, execution.outputs)
                rounds.append(execution.rounds)
                sizes.append(sum(execution.outputs.values()))
            results.append((name, graph, rounds, sizes))
        return results

    rows = []
    for name, graph, rounds, sizes in benchmark.pedantic(run, rounds=1):
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "mean rounds": sum(rounds) / len(rounds),
                    "mean |MIS|": sum(sizes) / len(sizes),
                },
            )
        )
    report(
        format_table(
            "EXT — the decoupling as ONE anonymous algorithm "
            "(coloring ; greedy MIS with embedded synchronizer; validated)",
            ["n", "mean rounds", "mean |MIS|"],
            rows,
        )
    )


def test_composed_pipeline_benchmark(benchmark):
    from repro.algorithms.greedy_by_color import GreedyMISByColor
    from repro.runtime.composition import TwoStageComposition

    composed = TwoStageComposition(
        TwoHopColoringAlgorithm(),
        GreedyMISByColor(),
        lambda original, degree, color: (original[0], color),
    )
    graph = with_uniform_input(cycle_graph(16))
    result = benchmark(lambda: run_randomized(composed, graph, seed=1))
    assert result.all_decided


def test_success_curve_sweep(report, benchmark):
    algorithm = AnonymousMISAlgorithm()
    cases = [
        ("path-2", with_uniform_input(path_graph(2))),
        ("path-3", with_uniform_input(path_graph(3))),
        ("cycle-5", with_uniform_input(cycle_graph(5))),
    ]

    def run():
        return [
            (
                name,
                measure_success_curve(
                    algorithm, graph, lengths=(2, 3, 4, 8, 16), samples_per_length=150
                ),
            )
            for name, graph in cases
        ]

    rows = []
    for name, curve in benchmark.pedantic(run, rounds=1):
        points = dict(curve.points)
        assert points[16] >= 0.9
        rows.append(
            SweepRow(name, {f"p_{t}": points[t] for t in (2, 3, 4, 8, 16)})
        )
    report(
        format_table(
            "EXT — success probability of random assignments by length "
            "(the economics of the assignment search)",
            ["p_2", "p_3", "p_4", "p_8", "p_16"],
            rows,
        )
    )
