"""Experiment CONF — the GRAN conformance suite over the library bundles.

Runs the full hypothesis battery (solver validity, replayability,
liftability, factor closure, decider correctness, derandomizability)
against every bundled problem and reports the per-check tallies — the
repo certifying its own Theorem 1 inputs.
"""

from __future__ import annotations

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.core.verification import check_gran_bundle
from repro.graphs.builders import cycle_graph, path_graph, star_graph, with_uniform_input
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem

DECIDER = WellFormedInputDecider()
BUNDLES = [
    GranBundle(MISProblem(), AnonymousMISAlgorithm(), DECIDER),
    GranBundle(ColoringProblem(), VertexColoringAlgorithm(), DECIDER),
    GranBundle(KHopColoringProblem(2), TwoHopColoringAlgorithm(), DECIDER),
    GranBundle(MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), DECIDER),
]
INSTANCES = [
    ("cycle-5", with_uniform_input(cycle_graph(5))),
    ("path-4", with_uniform_input(path_graph(4))),
    ("star-4", with_uniform_input(star_graph(4))),
]
NON_INSTANCES = [
    ("bad-degrees", cycle_graph(4).with_layer("input", {v: (9, 0) for v in range(4)})),
]


def test_conformance_of_library_bundles(report, benchmark):
    def run():
        return [
            (
                bundle.problem.name,
                check_gran_bundle(bundle, INSTANCES, NON_INSTANCES, seeds=(0, 1)),
            )
            for bundle in BUNDLES
        ]

    rows = []
    for name, conformance in benchmark.pedantic(run, rounds=1):
        assert conformance.passed, conformance.failures()
        by_check: dict = {}
        for outcome in conformance.outcomes:
            by_check[outcome.check] = by_check.get(outcome.check, 0) + 1
        rows.append(
            SweepRow(
                name,
                {
                    "checks run": len(conformance.outcomes),
                    "solver runs": by_check.get("solver-valid", 0),
                    "lift checks": by_check.get("liftable", 0),
                    "passed": conformance.passed,
                },
            )
        )
    report(
        format_table(
            "CONF — GRAN conformance battery over the library's bundles "
            "(hypotheses of Theorem 1, certified)",
            ["checks run", "solver runs", "lift checks", "passed"],
            rows,
        )
    )
