#!/usr/bin/env python
"""Run the view/refinement/quotient scaling benches and persist a baseline.

Writes ``benchmarks/BENCH_views.json``: machine info, an n-sweep of
timings for the three hot paths (view construction, color refinement,
quotient construction) plus incremental-deepening and interning
statistics.  Future PRs regress against the committed file:

    python benchmarks/run_perf_suite.py            # measure + rewrite baseline
    python benchmarks/run_perf_suite.py --quick    # smaller sweep, no rewrite
    python benchmarks/run_perf_suite.py --check    # compare vs committed baseline

``--check`` exits non-zero when cold view construction at the guard case
(cycle n=64, depth 64) regresses more than the allowed factor (default
2x) against the committed baseline — the CI ``perf-smoke`` gate.  A
timing ratio is only meaningful between runs on the same hardware, so
``--check`` first compares the recorded machine specs (platform, Python
version, implementation) and refuses with a field-by-field diff when
they differ; pass ``--allow-machine-mismatch`` to compare anyway (CI
does, with a widened ``--tolerance`` — see docs/PERFORMANCE.md).

Each *cold* sample clears the intern/rank tables and builder caches
first (`repro.views.clear_caches`), measuring construction from nothing;
*warm* samples reuse them, measuring the cached/incremental path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.graphs.builders import (  # noqa: E402
    cycle_graph,
    random_connected_graph,
    torus_graph,
    with_uniform_input,
)
from repro.graphs.coloring import (  # noqa: E402
    apply_two_hop_coloring,
    greedy_two_hop_coloring,
)
from repro.graphs.lifts import lift_graph  # noqa: E402
from repro.factor.quotient import finite_view_graph, infinite_view_graph  # noqa: E402
from repro.algorithms import TwoHopColoringAlgorithm  # noqa: E402
from repro.dynamic import (  # noqa: E402
    ChurnPlan,
    ChurnSchedule,
    DynamicGraph,
    DynamicViewMaintainer,
)
from repro.faults import FaultPlan, execute_with_faults  # noqa: E402
from repro.runtime.algorithm import AnonymousAlgorithm  # noqa: E402
from repro.runtime.engine import collect_engine_metrics, execute  # noqa: E402
from repro.runtime.port_model import PortAwareAlgorithm, PortEmulation  # noqa: E402
from repro.artifacts.service import ArtifactService  # noqa: E402
from repro.artifacts.specs import (  # noqa: E402
    quotient_spec,
    refinement_spec,
    views_spec,
)
from repro.artifacts.store import ArtifactStore  # noqa: E402
from repro.views.local_views import ViewBuilder, all_views, view_builder  # noqa: E402
from repro.views.refinement import color_refinement  # noqa: E402
from repro.views.view_tree import clear_caches, intern_stats  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "benchmarks" / "BENCH_views.json"
GUARD_BENCH = "views_cycle"
GUARD_N = 64
DEFAULT_TOLERANCE = 2.0

# Pre-CSR (PR-5) cold best-of-7 timings in milliseconds, measured at
# commit 4549e74 on the recording machine, for the cases the CSR core
# targets.  The ``csr`` section of the baseline records the speedup of
# each case against these denominators; ``--check`` enforces the
# headline floors on the *recorded* speedups (machine-independent — the
# recording machine measured both sides).
PR5_BASELINE_MS = {
    "refinement_cycle/256": 0.8211,
    "refinement_cycle/1024": 3.2574,
    "refinement_cycle/4096": 14.2036,
    "refinement_torus/256": 0.8188,
    "refinement_torus/1024": 3.2744,
    "refinement_torus/4096": 14.7188,
    "quotient_lift/256": 2.8626,
    "quotient_lift/1024": 11.0988,
    "quotient_lift/4096": 47.5437,
    "refinement_random/256": 1.6774,
    "refinement_random/512": 5.3166,
    "views_cycle/64": 0.5282,
}
PR5_COMMIT = "4549e74"

# Floors the recorded csr speedups must clear for perf-smoke to pass
# (the headline acceptance targets of the CSR PR).
CSR_SPEEDUP_FLOORS = {
    "refinement_cycle/1024": 5.0,
    "refinement_torus/1024": 5.0,
    "views_cycle/64": 3.0,
}

# Artifact-service latency gate: a warm hit (memory tier) must beat a
# cold miss (compute + persist) by at least this factor.  The ratio is
# measured live within one run — cold and warm share the machine — so
# the floor is hardware-independent and gated on the *current* run, not
# on the committed baseline.
ARTIFACT_NS = [256, 1024]
ARTIFACT_RATIO_FLOOR = 10.0
ARTIFACT_VIEW_DEPTH = 8

# Incremental view-maintenance gate: after one churn batch, advancing a
# maintainer (blast-radius recompute only) must beat a from-scratch
# ``ViewBuilder(new_graph).views(depth)`` rebuild by the floor at the
# headline case (n=1024, 1% churn).  Both sides run back to back in one
# invocation with shared intern tables — like the artifact ratios, the
# speedup is hardware-independent and gated on the *current* run.  A
# churn rate here means "expected deltas ~ rate * n", split across the
# op families (the blast-radius fraction, and so the attainable
# speedup, is governed by dirty-nodes x depth / n — see docs/DYNAMIC.md).
DYNAMIC_NS = [256, 1024]
DYNAMIC_CHURN_RATES = [0.01, 0.05]
DYNAMIC_VIEW_DEPTH = 6
DYNAMIC_SPEEDUP_FLOORS = {"dynamic_views_cycle/1024@1%": 5.0}


def _colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def _colored_lift(base_n: int, fiber: int):
    """A permutation-voltage lift of a 2-hop colored cycle: a large
    product graph whose quotient recovers the ``base_n``-node base —
    the paper-shaped workload for quotient construction at scale."""
    base = _colored(with_uniform_input(cycle_graph(base_n)))
    lift, _ = lift_graph(base, fiber, seed=base_n * fiber)
    return lift


def _git_info() -> dict:
    """The repo's HEAD commit and date, or ``"unknown"`` outside git."""
    info = {}
    for field, fmt in (("commit", "%h"), ("date", "%cs")):
        try:
            info[field] = subprocess.run(
                ["git", "-C", str(REPO_ROOT), "log", "-1", f"--format={fmt}"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        except Exception:
            info[field] = "unknown"
    return info


def _baseline_provenance(baseline: dict) -> str:
    git = baseline.get("git", {})
    commit = git.get("commit", "unknown")
    date = git.get("date", "unknown")
    return f"baseline recorded at commit {commit} ({date})"


def _time(fn, repeats, cold):
    samples = []
    for _ in range(repeats):
        if cold:
            clear_caches()
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "median_s": statistics.median(samples),
        "repeats": repeats,
    }


class _PortEcho(PortAwareAlgorithm):
    """Fixed-length port workload: each node ledgers (round, port) pairs."""

    bits_per_round = 0
    name = "perf-port-echo"

    def __init__(self, rounds_needed: int) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        return ((), 0)

    def messages(self, state, degree: int):
        return [(state[1], port) for port in range(degree)]

    def transition(self, state, received, bits: str):
        return (state[0] + (tuple(received),), state[1] + 1)

    def output(self, state):
        return state[0] if state[1] >= self.rounds_needed else None


class _BroadcastTally(AnonymousAlgorithm):
    """Fault-tolerant broadcast workload: each node ledgers the size of the
    received multiset per round, so drops/duplicates/crashed neighbors
    change the ledger without ever tripping an invariant."""

    bits_per_round = 0
    name = "perf-broadcast-tally"

    def __init__(self, rounds_needed: int) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        return ((), 0)

    def message(self, state):
        return state[1]

    def transition(self, state, received, bits: str):
        return (state[0] + (len(received),), state[1] + 1)

    def output(self, state):
        return state[0] if state[1] >= self.rounds_needed else None


def run_runtime_benches(repeats: int) -> list:
    """Unified-engine workloads, timed plus deterministic instrumentation.

    The ``counts`` block (executions, rounds, messages sent, bits drawn,
    nodes decided) is machine-independent: ``--check`` asserts it matches
    the committed baseline exactly, so any behavioral drift in the round
    kernel — an extra round, a changed message count, different bit
    accounting — fails the perf-smoke gate even when timings are fine.
    """
    coloring_graph = with_uniform_input(cycle_graph(32))
    port_graph = _colored(with_uniform_input(cycle_graph(16)))
    workloads = [
        (
            "engine_broadcast_coloring",
            32,
            lambda: execute(
                TwoHopColoringAlgorithm(),
                coloring_graph,
                seed=7,
                require_decided=True,
            ),
        ),
        (
            "engine_port_emulation",
            16,
            lambda: execute(
                PortEmulation(_PortEcho(rounds_needed=5)),
                port_graph,
                max_rounds=10,
                require_decided=True,
            ),
        ),
        # Fixed fault workloads: the plans are pure values, so rounds /
        # messages / bits / faults_injected are deterministic and gated
        # by --check like every other count.
        (
            "engine_faulty_broadcast",
            16,
            lambda: execute_with_faults(
                _BroadcastTally(rounds_needed=6),
                with_uniform_input(cycle_graph(16)),
                FaultPlan(
                    plan_seed=41,
                    drop_rate=0.15,
                    duplicate_rate=0.1,
                    crashes=((3, 4),),
                ),
                max_rounds=6,
                require_decided=True,
            ),
        ),
        (
            "engine_faulty_port",
            16,
            lambda: execute_with_faults(
                _PortEcho(rounds_needed=5),
                port_graph,
                FaultPlan(plan_seed=42, drop_rate=0.1, reorder_rate=0.3),
                max_rounds=5,
                require_decided=True,
            ),
        ),
    ]
    rows = []
    for bench, n, thunk in workloads:
        samples = []
        counts = None
        for _ in range(repeats):
            with collect_engine_metrics() as totals:
                start = time.perf_counter()
                thunk()
                samples.append(time.perf_counter() - start)
            sample_counts = totals.as_dict(include_wall=False)
            if counts is None:
                counts = sample_counts
            elif counts != sample_counts:
                raise AssertionError(
                    f"runtime bench {bench!r} is not deterministic: "
                    f"{counts} vs {sample_counts}"
                )
        rows.append(
            {
                "bench": bench,
                "n": n,
                "best_s": min(samples),
                "median_s": statistics.median(samples),
                "repeats": repeats,
                "counts": counts,
            }
        )
    return rows


def _serve_once(specs: list, service: ArtifactService) -> float:
    """One service pass over ``specs``; returns the in-loop wall seconds
    of ``get_many`` only (loop startup and store opening excluded).

    A service instance holds no loop state between runs, so the same one
    can serve across successive ``asyncio.run`` calls — which is exactly
    the warm scenario: a long-lived front-end replaying prepared
    requests."""

    async def _run() -> float:
        start = time.perf_counter()
        await service.get_many(specs)
        return time.perf_counter() - start

    return asyncio.run(_run())


def run_artifact_benches(repeats: int) -> dict:
    """Cold-miss vs warm-hit service latency for the standard query mix
    (refinement + views + quotient) on 2-hop colored cycles.

    Cold resets everything a request could hit — memory tier, interned
    trees, the persistent store file — so it pays compute, encoding and
    fsync'd persistence.  Warm replays the same prepared requests
    against the populated memory tier.  The per-``n`` ``ratio`` is
    cold/warm on best samples; ``--check`` enforces
    ``ARTIFACT_RATIO_FLOOR`` on it.
    """
    rows = []
    for n in ARTIFACT_NS:
        graph = _colored(with_uniform_input(cycle_graph(n)))
        specs = [
            refinement_spec(graph),
            views_spec(graph, ARTIFACT_VIEW_DEPTH),
            quotient_spec(graph, with_views=False),
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.jsonl"
            cold_samples = []
            service = None
            for _ in range(repeats):
                if path.exists():
                    path.unlink()
                clear_caches()
                service = ArtifactService(ArtifactStore(path))
                cold_samples.append(_serve_once(specs, service))
            warm_samples = [_serve_once(specs, service) for _ in range(repeats)]
        cold_best = min(cold_samples)
        warm_best = min(warm_samples)
        rows.append(
            {
                "bench": "artifact_service",
                "n": n,
                "queries": len(specs),
                "cold": {
                    "best_s": cold_best,
                    "median_s": statistics.median(cold_samples),
                    "repeats": repeats,
                },
                "warm": {
                    "best_s": warm_best,
                    "median_s": statistics.median(warm_samples),
                    "repeats": repeats,
                },
                "ratio": round(cold_best / warm_best, 2),
            }
        )
    clear_caches()
    return {"ratio_floor": ARTIFACT_RATIO_FLOOR, "rows": rows}


def run_dynamic_benches(repeats: int) -> dict:
    """Incremental view maintenance vs a from-scratch rebuild after one
    churn batch on 2-hop colored cycles.

    Setup (seeding the maintainer on the base snapshot, generating and
    applying the batch) is excluded from both sides: the incremental
    sample times ``maintainer.update(...)`` alone, the from-scratch
    sample times a fresh ``ViewBuilder(new_graph).views(depth)``.  The
    intern tables stay warm throughout, which is the honest comparison —
    both sides hash-cons into the same pool, the rebuild just visits
    every (node, depth) slot while the maintainer only walks the blast
    radius.
    """
    rows = []
    for n in DYNAMIC_NS:
        base = _colored(with_uniform_input(cycle_graph(n)))
        for rate in DYNAMIC_CHURN_RATES:
            plan = ChurnPlan(
                plan_seed=n,
                insert_rate=rate / 4,
                delete_rate=rate / 4,
                relabel_rate=rate / 2,
                relabel_values=(("A",), ("B",)),
            )
            dynamic = DynamicGraph(base)
            batch = ChurnSchedule(plan).batch(1, base)
            applied = dynamic.apply(batch)
            incremental_samples = []
            stats = None
            for _ in range(repeats):
                maintainer = DynamicViewMaintainer(base, DYNAMIC_VIEW_DEPTH)
                start = time.perf_counter()
                stats = maintainer.update(
                    applied.graph, applied.relabeled, applied.touched
                )
                incremental_samples.append(time.perf_counter() - start)
            scratch_samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                ViewBuilder(applied.graph).views(DYNAMIC_VIEW_DEPTH)
                scratch_samples.append(time.perf_counter() - start)
            incremental_best = min(incremental_samples)
            scratch_best = min(scratch_samples)
            rows.append(
                {
                    "bench": "dynamic_views_cycle",
                    "n": n,
                    "churn_rate": rate,
                    "deltas": len(batch),
                    "recomputed": stats.recomputed,
                    "reused": stats.reused,
                    "incremental": {
                        "best_s": incremental_best,
                        "median_s": statistics.median(incremental_samples),
                        "repeats": repeats,
                    },
                    "from_scratch": {
                        "best_s": scratch_best,
                        "median_s": statistics.median(scratch_samples),
                        "repeats": repeats,
                    },
                    "speedup": round(scratch_best / incremental_best, 2),
                }
            )
    clear_caches()
    return {"speedup_floors": DYNAMIC_SPEEDUP_FLOORS, "rows": rows}


def run_suite(quick: bool, repeats: int) -> dict:
    view_ns = [8, 16, 32, 64] if quick else [8, 16, 32, 64, 96, 128]
    refine_ns = [16, 64, 128] if quick else [16, 64, 128, 256, 512]
    quotient_ns = [8, 16, 32] if quick else [8, 16, 32, 48, 64]
    rows = []

    for n in view_ns:
        graph = with_uniform_input(cycle_graph(n))
        cold = _time(lambda: all_views(graph, n), repeats, cold=True)
        stats = intern_stats()
        warm = _time(lambda: all_views(graph, n), repeats, cold=False)
        rows.append(
            {
                "bench": GUARD_BENCH,
                "n": n,
                "cold": cold,
                "warm": warm,
                "intern": stats,
            }
        )

    for n in view_ns:
        # Incremental deepening: extend a cached depth-(n//2) builder to
        # depth n, versus the cold full build measured above.
        graph = with_uniform_input(cycle_graph(n))
        clear_caches()
        builder = view_builder(graph)
        builder.views(n // 2)
        start = time.perf_counter()
        builder.views(n)
        extend_s = time.perf_counter() - start
        rows.append(
            {
                "bench": "views_incremental_extend",
                "n": n,
                "cold": {"best_s": extend_s, "median_s": extend_s, "repeats": 1},
                "warm": None,
                "intern": None,
            }
        )

    for n in refine_ns:
        graph = with_uniform_input(random_connected_graph(n, 0.1, seed=n))
        cold = _time(lambda: color_refinement(graph), repeats, cold=True)
        warm = _time(lambda: color_refinement(graph), repeats, cold=False)
        rows.append(
            {"bench": "refinement_random", "n": n, "cold": cold, "warm": warm, "intern": None}
        )

    for n in quotient_ns:
        graph = _colored(with_uniform_input(random_connected_graph(n, 0.15, seed=n)))
        cold = _time(lambda: finite_view_graph(graph), repeats, cold=True)
        warm = _time(lambda: finite_view_graph(graph), repeats, cold=False)
        rows.append(
            {"bench": "quotient_colored", "n": n, "cold": cold, "warm": warm, "intern": None}
        )

    # The CSR-core headline cases: flat-array refinement on uniform
    # cycles and tori, and quotient construction on lifts of a 2-hop
    # colored cycle (the sizes the PR-5 reference timings were recorded
    # at; see PR5_BASELINE_MS).
    csr_ns = [256, 1024] if quick else [256, 1024, 4096]
    for n in csr_ns:
        graph = with_uniform_input(cycle_graph(n))
        cold = _time(lambda: color_refinement(graph), repeats, cold=True)
        warm = _time(lambda: color_refinement(graph), repeats, cold=False)
        rows.append(
            {"bench": "refinement_cycle", "n": n, "cold": cold, "warm": warm, "intern": None}
        )

    for n in csr_ns:
        side = math.isqrt(n)
        graph = with_uniform_input(torus_graph(side, side))
        cold = _time(lambda: color_refinement(graph), repeats, cold=True)
        warm = _time(lambda: color_refinement(graph), repeats, cold=False)
        rows.append(
            {"bench": "refinement_torus", "n": n, "cold": cold, "warm": warm, "intern": None}
        )

    for n in csr_ns:
        graph = _colored_lift(16, n // 16)
        cold = _time(lambda: infinite_view_graph(graph), repeats, cold=True)
        warm = _time(lambda: infinite_view_graph(graph), repeats, cold=False)
        rows.append(
            {"bench": "quotient_lift", "n": n, "cold": cold, "warm": warm, "intern": None}
        )

    clear_caches()
    speedups = {}
    for row in rows:
        case = f"{row['bench']}/{row['n']}"
        reference_ms = PR5_BASELINE_MS.get(case)
        if reference_ms is not None:
            speedups[case] = round(reference_ms / (row["cold"]["best_s"] * 1e3), 2)
    return {
        # Schema history: 2 = runtime counts section; 3 = git provenance
        # block + fault workloads + ``faults_injected`` in counts;
        # 4 = ``csr`` section (speedups of the array kernels vs the
        # embedded pre-CSR reference timings) + refinement_cycle /
        # refinement_torus / quotient_lift benches; 5 = ``artifacts``
        # section (cold-miss vs warm-hit artifact-service latency with a
        # live warm/cold ratio floor); 6 = ``dynamic`` section
        # (incremental view maintenance vs from-scratch rebuild under
        # churn, with a live speedup floor).
        "schema": 6,
        "suite": "views-perf",
        "quick": quick,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "git": _git_info(),
        "csr": {
            "reference_commit": PR5_COMMIT,
            "reference_ms": PR5_BASELINE_MS,
            "speedups": speedups,
        },
        "results": rows,
        "runtime": run_runtime_benches(repeats),
        "artifacts": run_artifact_benches(repeats),
        "dynamic": run_dynamic_benches(repeats),
    }


def _guard_time(payload: dict):
    for row in payload.get("results", []):
        if row.get("bench") == GUARD_BENCH and row.get("n") == GUARD_N:
            return row["cold"]["best_s"]
    return None


def _runtime_counts_drift(baseline: dict, current: dict) -> list:
    """Per-bench diff of the engine's deterministic counts (empty = same).

    A baseline without a ``runtime`` section (schema 1) produces no
    drift: the counts gate only arms once a schema-2 baseline is
    committed.
    """
    base_rows = {row["bench"]: row["counts"] for row in baseline.get("runtime", [])}
    cur_rows = {row["bench"]: row["counts"] for row in current.get("runtime", [])}
    drifts = []
    for bench in sorted(base_rows):
        if bench not in cur_rows:
            drifts.append(f"  {bench}: missing from current run")
            continue
        for field in sorted(set(base_rows[bench]) | set(cur_rows[bench])):
            base_value = base_rows[bench].get(field, "<missing>")
            cur_value = cur_rows[bench].get(field, "<missing>")
            if base_value != cur_value:
                drifts.append(
                    f"  {bench}.{field}: baseline={base_value!r} "
                    f"vs current={cur_value!r}"
                )
    return drifts


def _machine_mismatch(baseline: dict, current: dict) -> list:
    """Field-by-field diff of the recorded machine specs (empty = same)."""
    base_machine = baseline.get("machine", {})
    cur_machine = current.get("machine", {})
    diffs = []
    for field in sorted(set(base_machine) | set(cur_machine)):
        base_value = base_machine.get(field, "<missing>")
        cur_value = cur_machine.get(field, "<missing>")
        if base_value != cur_value:
            diffs.append(f"  {field}: baseline={base_value!r} vs current={cur_value!r}")
    return diffs


def _cold_by_case(payload: dict) -> dict:
    """``{"bench/n": cold best seconds}`` for every measured case."""
    return {
        f"{row['bench']}/{row['n']}": row["cold"]["best_s"]
        for row in payload.get("results", [])
    }


def _ratio_table(baseline: dict, current: dict) -> list:
    """Per-bench old/new rows ``(case, base_s, cur_s, ratio)`` over the
    cases present in both runs (``--check`` runs the quick sweep, so the
    committed full-sweep baseline usually has extra sizes)."""
    base_cases = _cold_by_case(baseline)
    cur_cases = _cold_by_case(current)
    return [
        (case, base_cases[case], cur_cases[case], cur_cases[case] / base_cases[case])
        for case in sorted(base_cases)
        if case in cur_cases
    ]


def _print_ratio_table(rows: list, tolerance: float) -> None:
    print(f"{'bench/n':<26}{'baseline':>12}{'current':>12}{'ratio':>8}")
    for case, base_s, cur_s, ratio in rows:
        print(
            f"{case:<26}{base_s * 1e3:10.4f}ms{cur_s * 1e3:10.4f}ms{ratio:8.2f}"
        )
    print(f"(ratio = current/baseline cold best; guard tolerance {tolerance:.2f})")


def _write_step_summary(rows: list, csr_lines: list, tolerance: float) -> None:
    """Append the ratio table as markdown to the GitHub job summary, when
    running under Actions (``$GITHUB_STEP_SUMMARY`` set)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### perf-smoke: baseline vs current (cold best)",
        "",
        "| bench/n | baseline | current | ratio |",
        "| --- | ---: | ---: | ---: |",
    ]
    for case, base_s, cur_s, ratio in rows:
        lines.append(
            f"| {case} | {base_s * 1e3:.4f}ms | {cur_s * 1e3:.4f}ms | {ratio:.2f} |"
        )
    lines.append("")
    lines.append(f"ratio = current/baseline; guard tolerance {tolerance:.2f}")
    if csr_lines:
        lines.append("")
        lines.extend(csr_lines)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError:
        pass  # summary output is best-effort; the stdout table is canonical


def _check_csr_floors(baseline: dict) -> tuple:
    """Validate the *recorded* csr speedups against the acceptance floors.

    The speedups in the committed baseline were measured on the recording
    machine against PR-5 timings from the same machine, so the check is
    hardware-independent — it gates what the baseline claims, and the
    timing-ratio guard above gates whether this run still matches the
    baseline.  A baseline without a ``csr`` section (schema <= 3) arms
    nothing.  Returns ``(failures, summary_lines)``.
    """
    recorded = baseline.get("csr", {}).get("speedups", {})
    failures = []
    lines = ["recorded CSR speedups vs pre-CSR reference "
             f"(commit {baseline.get('csr', {}).get('reference_commit', '?')}):"]
    for case in sorted(recorded):
        floor = CSR_SPEEDUP_FLOORS.get(case)
        floor_note = f" (floor {floor:.1f})" if floor is not None else ""
        lines.append(f"  {case}: {recorded[case]:.2f}x{floor_note}")
        if floor is not None and recorded[case] < floor:
            failures.append(
                f"  {case}: recorded speedup {recorded[case]:.2f}x is below "
                f"the acceptance floor {floor:.1f}x"
            )
    for case in sorted(CSR_SPEEDUP_FLOORS):
        if recorded and case not in recorded:
            failures.append(
                f"  {case}: required by the acceptance floors but missing "
                "from the baseline's csr section (re-record the baseline "
                "with the full sweep)"
            )
    return failures, lines if recorded else []


def _check_artifact_ratios(current: dict) -> tuple:
    """Validate the *current* run's warm/cold service ratios against the
    floor.

    Cold and warm are measured back to back on this machine within one
    invocation, so the ratio needs no baseline and no machine match — a
    warm hit that stopped beating a cold miss by ``ARTIFACT_RATIO_FLOOR``
    means the read path regressed, wherever the check runs.  Returns
    ``(failures, summary_lines)``.
    """
    section = current.get("artifacts", {})
    rows = section.get("rows", [])
    floor = section.get("ratio_floor", ARTIFACT_RATIO_FLOOR)
    failures = []
    lines = [f"artifact service cold/warm ratios (floor {floor:.1f}x, live):"]
    for row in rows:
        case = f"{row['bench']}/{row['n']}"
        lines.append(
            f"  {case}: cold {row['cold']['best_s'] * 1e3:.4f}ms "
            f"warm {row['warm']['best_s'] * 1e3:.4f}ms -> {row['ratio']:.2f}x"
        )
        if row["ratio"] < floor:
            failures.append(
                f"  {case}: warm hits beat cold misses by only "
                f"{row['ratio']:.2f}x (floor {floor:.1f}x)"
            )
    return failures, lines if rows else []


def _dynamic_case(row: dict) -> str:
    return f"{row['bench']}/{row['n']}@{row['churn_rate']:.0%}"


def _check_dynamic_speedups(current: dict) -> tuple:
    """Validate the *current* run's incremental-vs-rebuild speedups
    against the floors.

    Like the artifact ratios, both sides are measured back to back on
    this machine within one invocation, so the check needs no baseline
    and no machine match.  Returns ``(failures, summary_lines)``.
    """
    section = current.get("dynamic", {})
    rows = section.get("rows", [])
    floors = section.get("speedup_floors", DYNAMIC_SPEEDUP_FLOORS)
    failures = []
    lines = ["incremental view maintenance vs from-scratch rebuild (live):"]
    for row in rows:
        case = _dynamic_case(row)
        floor = floors.get(case)
        floor_note = f" (floor {floor:.1f})" if floor is not None else ""
        lines.append(
            f"  {case}: incremental {row['incremental']['best_s'] * 1e3:.4f}ms "
            f"rebuild {row['from_scratch']['best_s'] * 1e3:.4f}ms "
            f"-> {row['speedup']:.2f}x{floor_note}"
        )
        if floor is not None and row["speedup"] < floor:
            failures.append(
                f"  {case}: incremental maintenance beats a rebuild by only "
                f"{row['speedup']:.2f}x (floor {floor:.1f}x)"
            )
    measured = {_dynamic_case(row) for row in rows}
    for case in sorted(floors):
        if rows and case not in measured:
            failures.append(
                f"  {case}: required by the speedup floors but missing from "
                "the dynamic section"
            )
    return failures, lines if rows else []


def check_against_baseline(
    current: dict,
    baseline_path: Path,
    tolerance: float,
    allow_machine_mismatch: bool = False,
) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run without --check to create one")
        return 1
    baseline = json.loads(baseline_path.read_text())
    mismatch = _machine_mismatch(baseline, current)
    if mismatch:
        print(
            f"machine specs differ from the committed baseline ({baseline_path}, "
            f"{_baseline_provenance(baseline)}):"
        )
        for line in mismatch:
            print(line)
        if not allow_machine_mismatch:
            print(
                "timing ratios across machines are not comparable; refusing "
                "the check.  Re-record the baseline on this machine (run "
                "without --check) or pass --allow-machine-mismatch (ideally "
                "with a widened --tolerance) to compare anyway."
            )
            return 3
        print("--allow-machine-mismatch given: comparing anyway")
    base_time = _guard_time(baseline)
    new_time = _guard_time(current)
    if base_time is None or new_time is None:
        print("guard case missing from baseline or current run")
        return 1
    ratio = new_time / base_time
    table = _ratio_table(baseline, current)
    csr_failures, csr_lines = _check_csr_floors(baseline)
    artifact_failures, artifact_lines = _check_artifact_ratios(current)
    dynamic_failures, dynamic_lines = _check_dynamic_speedups(current)
    _print_ratio_table(table, tolerance)
    for line in csr_lines:
        print(line)
    for line in artifact_lines:
        print(line)
    for line in dynamic_lines:
        print(line)
    _write_step_summary(table, csr_lines + artifact_lines + dynamic_lines, tolerance)
    print(
        f"perf-smoke guard: views cycle n={GUARD_N} cold "
        f"{new_time * 1e3:.3f}ms vs baseline {base_time * 1e3:.3f}ms "
        f"(ratio {ratio:.2f}, allowed {tolerance:.2f})"
    )
    if ratio > tolerance:
        print("PERF REGRESSION: view construction slowed beyond tolerance")
        return 2
    if csr_failures:
        print("CSR SPEEDUP FLOOR VIOLATION:")
        for line in csr_failures:
            print(line)
        return 2
    if artifact_failures:
        print("ARTIFACT CACHE RATIO FLOOR VIOLATION:")
        for line in artifact_failures:
            print(line)
        return 2
    if dynamic_failures:
        print("INCREMENTAL MAINTENANCE SPEEDUP FLOOR VIOLATION:")
        for line in dynamic_failures:
            print(line)
        return 2
    drift = _runtime_counts_drift(baseline, current)
    if drift:
        print(
            "runtime engine counts drifted from the committed baseline "
            f"({_baseline_provenance(baseline)}):"
        )
        for line in drift:
            print(line)
        print(
            "ENGINE BEHAVIOR CHANGE: rounds/messages/bits differ from the "
            "baseline.  If intentional, re-record it (run without --check)."
        )
        return 2
    print("perf-smoke ok")
    return 0


def _print_table(payload: dict) -> None:
    print(f"{'bench':<26}{'n':>5}{'cold best':>14}{'warm best':>14}")
    for row in payload["results"]:
        cold = row["cold"]["best_s"] * 1e3
        warm = "" if row["warm"] is None else f"{row['warm']['best_s'] * 1e3:11.4f}ms"
        print(f"{row['bench']:<26}{row['n']:>5}{cold:11.4f}ms{warm:>14}")
    for row in payload.get("runtime", []):
        counts = row["counts"]
        print(
            f"{row['bench']:<26}{row['n']:>5}{row['best_s'] * 1e3:11.4f}ms"
            f"    rounds={counts['rounds']} msgs={counts['messages_sent']} "
            f"bits={counts['bits_drawn']}"
        )
    for row in payload.get("artifacts", {}).get("rows", []):
        cold = row["cold"]["best_s"] * 1e3
        warm = row["warm"]["best_s"] * 1e3
        print(
            f"{row['bench']:<26}{row['n']:>5}{cold:11.4f}ms{warm:11.4f}ms"
            f"   ratio={row['ratio']:.2f}x"
        )
    for row in payload.get("dynamic", {}).get("rows", []):
        scratch = row["from_scratch"]["best_s"] * 1e3
        incremental = row["incremental"]["best_s"] * 1e3
        print(
            f"{_dynamic_case(row):<26}     {scratch:11.4f}ms{incremental:11.4f}ms"
            f"   speedup={row['speedup']:.2f}x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=(__doc__ or "").splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller sweep (CI smoke)")
    parser.add_argument("--repeats", type=int, default=5, help="samples per case")
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed slowdown factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--allow-machine-mismatch",
        action="store_true",
        help=(
            "compare against a baseline recorded on different machine specs "
            "instead of refusing (consider widening --tolerance)"
        ),
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="baseline file path"
    )
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick or args.check, repeats=args.repeats)
    _print_table(payload)

    if args.check:
        return check_against_baseline(
            payload,
            args.output,
            args.tolerance,
            allow_machine_mismatch=args.allow_machine_mismatch,
        )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
