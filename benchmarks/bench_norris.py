"""Experiment T3 — Theorem 3 (Norris): L_n determines L_∞.

Measures the view-refinement stabilization depth across graph families
and confirms the paper's bound (depth at most n).  The table also shows
how far below the bound typical graphs sit — the quantity the A_*
machinery implicitly pays for.
"""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow, format_table, standard_families
from repro.graphs.builders import path_graph, with_uniform_input
from repro.views.refinement import color_refinement, stabilization_depth


def test_norris_bound_sweep(report, benchmark):
    cases = list(standard_families(sizes=(4, 6, 8, 12), include_random=True))

    def run():
        return [(name, graph, stabilization_depth(graph)) for name, graph in cases]

    rows = []
    for name, graph, depth in benchmark.pedantic(run, rounds=1):
        n = graph.num_nodes
        assert depth <= n, f"Norris bound violated on {name}"
        rows.append(
            SweepRow(name, {"n": n, "stab depth": depth, "bound n": n, "slack": n - depth})
        )
    report(
        format_table(
            "Theorem 3 (Norris) — view stabilization depth vs the bound n",
            ["n", "stab depth", "bound n", "slack"],
            rows,
        )
    )


def test_worst_case_family_paths(report, benchmark):
    """Uniform paths stabilize slowly (refinement creeps inward from the
    ends): the family that approaches the Norris bound."""

    def run():
        return [
            (n, stabilization_depth(with_uniform_input(path_graph(n))))
            for n in (4, 8, 12, 16, 20)
        ]

    rows = []
    for n, depth in benchmark.pedantic(run, rounds=1):
        assert depth <= n
        assert depth >= n // 2 - 1  # paths genuinely need deep views
        rows.append(SweepRow(f"path-{n}", {"n": n, "stab depth": depth}))
    report(
        format_table(
            "Theorem 3 — uniform paths approach the Norris bound",
            ["n", "stab depth"],
            rows,
        )
    )


def test_refinement_benchmark(benchmark):
    g = with_uniform_input(path_graph(64))
    result = benchmark(lambda: color_refinement(g))
    assert result.num_classes == 32
