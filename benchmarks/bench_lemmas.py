"""Experiment L2-L4 — Lemmas 2, 3 and 4, plus the paper's counterexample.

* Lemma 2: the infinite view graph of a 2-hop colored graph is a factor.
* Lemma 3: it is the *unique* prime factor — checked by exhaustive
  factor enumeration on lifted colored cycles.
* Lemma 4: in a prime 2-hop colored graph, views are aliases (pairwise
  distinct).
* Counterexample: the *uncolored* C12 has two prime factors (C3, C4),
  showing Lemma 3 genuinely needs the 2-hop coloring.
"""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow, format_table
from repro.factor.prime import all_factors, is_prime, prime_factors
from repro.factor.quotient import infinite_view_graph
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.isomorphism import are_isomorphic
from repro.views.local_views import all_views
from benchmarks.conftest import lifted_colored_c3


def test_lemma2_quotient_is_factor(report, benchmark):
    def run():
        results = []
        for fiber in (1, 2, 3, 4):
            _base, lift, _proj = lifted_colored_c3(fiber)
            quotient = infinite_view_graph(lift)  # verifies the map itself
            results.append((fiber, lift, quotient))
        return results

    rows = []
    for fiber, lift, quotient in benchmark.pedantic(run, rounds=1):
        rows.append(
            SweepRow(
                f"C3-lift x{fiber}",
                {
                    "|V|": lift.num_nodes,
                    "|V_inf|": quotient.graph.num_nodes,
                    "m": quotient.map.multiplicity,
                },
            )
        )
    report(
        format_table(
            "Lemma 2 — G_infinity ⪯ G for 2-hop colored lifts of C3 "
            "(factorizing map verified)",
            ["|V|", "|V_inf|", "m"],
            rows,
        )
    )


def test_lemma3_unique_prime_factor(report, benchmark):
    def run():
        _base, lift, _proj = lifted_colored_c3(4)  # colored C12
        primes = prime_factors(lift)
        quotient = infinite_view_graph(lift)
        uncolored_primes = prime_factors(with_uniform_input(cycle_graph(12)))
        return lift, primes, quotient, uncolored_primes

    lift, primes, quotient, uncolored_primes = benchmark.pedantic(run, rounds=1)
    assert len(primes) == 1
    assert are_isomorphic(primes[0], quotient.graph)
    assert sorted(p.num_nodes for p in uncolored_primes) == [3, 4]
    rows = [
        SweepRow(
            "colored C12 (2-hop colored)",
            {"prime factors": 1, "sizes": [quotient.graph.num_nodes]},
        ),
        SweepRow(
            "uncolored C12 (counterexample)",
            {
                "prime factors": len(uncolored_primes),
                "sizes": sorted(p.num_nodes for p in uncolored_primes),
            },
        ),
    ]
    report(
        format_table(
            "Lemma 3 — unique prime factor under 2-hop coloring; "
            "uniqueness fails without it",
            ["prime factors", "sizes"],
            rows,
        )
    )


def test_lemma4_views_are_aliases(report, benchmark):
    def run():
        base, _lift, _proj = lifted_colored_c3(1)
        assert is_prime(base)
        views = all_views(base, base.num_nodes)
        return base, views

    base, views = benchmark.pedantic(run, rounds=1)
    distinct = len({id(t) for t in views.values()})
    assert distinct == base.num_nodes
    report(
        format_table(
            "Lemma 4 — depth-n views of a prime 2-hop colored graph are "
            "pairwise distinct (aliases)",
            ["n", "distinct views"],
            [SweepRow("colored C3", {"n": base.num_nodes, "distinct views": distinct})],
        )
    )


def test_factor_enumeration_benchmark(benchmark):
    g = with_uniform_input(cycle_graph(8))
    factors = benchmark(lambda: all_factors(g))
    assert factors  # C8 has C4 as a factor
