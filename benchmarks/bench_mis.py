"""Experiment R2 — MIS ∈ GRAN, randomized vs color-greedy deterministic.

The paper's motivating example: MIS is solvable anonymously only with
randomness — or deterministically once a 2-hop coloring is available.
This bench compares the randomized anonymous MIS against the
deterministic greedy-by-color baseline (which consumes a coloring) on
the same instances: round counts and MIS sizes.
"""

from __future__ import annotations

from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.analysis.stats import RunStats, aggregate
from repro.analysis.sweeps import SweepRow, format_table
from repro.graphs.builders import (
    cycle_graph,
    petersen_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.problems.mis import MISProblem
from repro.runtime.simulation import run_deterministic, run_randomized

PROBLEM = MISProblem()
SEEDS = range(5)


def cases():
    for n in (8, 16, 32):
        yield f"cycle-{n}", with_uniform_input(cycle_graph(n))
    yield "petersen", with_uniform_input(petersen_graph())
    for n in (16, 32):
        yield f"random-{n}", with_uniform_input(random_connected_graph(n, 0.15, seed=n))


def test_mis_randomized_vs_greedy(report, benchmark):
    case_list = list(cases())

    def run():
        results = []
        for name, graph in case_list:
            randomized_runs, mis_sizes = [], []
            for seed in SEEDS:
                result = run_randomized(AnonymousMISAlgorithm(), graph, seed=seed)
                assert PROBLEM.is_valid_output(graph, result.outputs)
                randomized_runs.append(RunStats.of(graph, result, 1))
                mis_sizes.append(sum(result.outputs.values()))
            colored = apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))
            greedy = run_deterministic(GreedyMISByColor(), colored)
            assert PROBLEM.is_valid_output(graph, greedy.outputs)
            results.append(
                (name, graph, aggregate(randomized_runs), mis_sizes, greedy)
            )
        return results

    rows = []
    for name, graph, agg, mis_sizes, greedy in benchmark.pedantic(run, rounds=1):
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "rand rounds": agg.mean_rounds,
                    "greedy rounds": greedy.rounds,
                    "rand |MIS|": sum(mis_sizes) / len(mis_sizes),
                    "greedy |MIS|": sum(greedy.outputs.values()),
                },
            )
        )
    report(
        format_table(
            "R2 — anonymous randomized MIS vs deterministic greedy-by-color "
            "(both validated)",
            ["n", "rand rounds", "greedy rounds", "rand |MIS|", "greedy |MIS|"],
            rows,
        )
    )


def test_mis_single_run_benchmark(benchmark):
    g = with_uniform_input(cycle_graph(32))
    result = benchmark(lambda: run_randomized(AnonymousMISAlgorithm(), g, seed=3))
    assert result.all_decided
