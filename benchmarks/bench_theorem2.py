"""Experiment T2 — Theorem 2: A_∞ solves Π^c in the infinity model.

Runs A_∞ (exact on finite graphs via the finite view graph) across
lifted instances with nontrivial quotients and across prime instances,
reporting quotient sizes and selected-assignment lengths; every output
labeling is validated against the underlying problem.
"""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.core.infinity import AInfinitySolver
from repro.graphs.builders import cycle_graph, complete_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift, lift_graph
from repro.problems.coloring import ColoringProblem
from repro.problems.mis import MISProblem


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def instances():
    base_c3 = colored(with_uniform_input(cycle_graph(3)))
    base_k4 = colored(with_uniform_input(complete_graph(4)))
    cases = [("C3 (prime)", base_c3), ("K4 (prime)", base_k4)]
    for fiber in (2, 3, 4):
        lift, _ = cyclic_lift(base_c3, fiber)
        cases.append((f"C{3 * fiber} = C3-lift x{fiber}", lift))
    k4_lift, _ = lift_graph(base_k4, 2, seed=3)
    cases.append(("K4-lift x2", k4_lift))
    return cases


@pytest.mark.parametrize(
    "problem,algorithm",
    [(MISProblem(), AnonymousMISAlgorithm()), (ColoringProblem(), VertexColoringAlgorithm())],
    ids=["mis", "coloring"],
)
def test_theorem2_sweep(problem, algorithm, report, benchmark):
    solver = AInfinitySolver(problem, algorithm)
    cases = instances()

    def run():
        return [(name, instance, solver.solve(instance)) for name, instance in cases]

    rows = []
    for name, instance, result in benchmark.pedantic(run, rounds=1):
        plain = instance.with_only_layers(["input"])
        assert problem.is_valid_output(plain, result.outputs)
        rows.append(
            SweepRow(
                name,
                {
                    "n": instance.num_nodes,
                    "quotient": result.quotient.graph.num_nodes,
                    "sim rounds": result.simulation_rounds,
                    "assignment t": max(
                        len(b) for b in result.assignment.values()
                    ),
                },
            )
        )
    report(
        format_table(
            f"Theorem 2 — A_infinity for {problem.name} "
            "(smallest successful simulation on the view quotient)",
            ["n", "quotient", "sim rounds", "assignment t"],
            rows,
        )
    )


def test_a_infinity_solve_benchmark(benchmark):
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, _ = cyclic_lift(base, 4)
    solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
    result = benchmark(lambda: solver.solve(lift))
    assert len(result.outputs) == 12
