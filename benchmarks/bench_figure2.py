"""Experiment F2 — regenerate Figure 2: the factor tower C3 ⪯ C6 ⪯ C12.

The paper's figure exhibits the labeled 12-cycle as a product of the
labeled 6-cycle via ``f`` and that in turn as a product of the labeled
3-cycle via ``g``.  We rebuild the tower with explicit factorizing maps,
verify all three defining properties (verification happens inside
``FactorizingMap``), confirm C3 is prime, and benchmark map verification.
"""

from __future__ import annotations

from repro.factor.factorizing_map import FactorizingMap
from repro.factor.prime import is_prime
from repro.graphs.builders import cycle_graph
from repro.analysis.sweeps import SweepRow, format_table


def labeled_cycle(n: int):
    return cycle_graph(n).with_layer("color", {v: f"c{v % 3}" for v in range(n)})


def tower():
    c12, c6, c3 = labeled_cycle(12), labeled_cycle(6), labeled_cycle(3)
    f = FactorizingMap(c12, c6, {v: v % 6 for v in c12.nodes})
    g = FactorizingMap(c6, c3, {v: v % 3 for v in c6.nodes})
    return c12, c6, c3, f, g


def test_figure2_tower(report, benchmark):
    c12, c6, c3, f, g = benchmark.pedantic(tower, rounds=1)
    composed = f.compose(g)
    assert f.multiplicity == 2
    assert g.multiplicity == 2
    assert composed.multiplicity == 4
    assert is_prime(c3)
    assert not is_prime(c6)
    assert not is_prime(c12)
    rows = [
        SweepRow("C12 -> C6 (f)", {"|V| product": 12, "|V| factor": 6, "m": 2}),
        SweepRow("C6 -> C3 (g)", {"|V| product": 6, "|V| factor": 3, "m": 2}),
        SweepRow("C12 -> C3 (g∘f)", {"|V| product": 12, "|V| factor": 3, "m": 4}),
    ]
    report(
        format_table(
            "Figure 2 — the labeled factor tower C3 ⪯ C6 ⪯ C12 "
            "(C3 prime; C6, C12 not)",
            ["|V| product", "|V| factor", "m"],
            rows,
        )
    )


def test_figure2_verification_benchmark(benchmark):
    c12, c6, _c3, _f, _g = tower()
    mapping = {v: v % 6 for v in c12.nodes}
    benchmark(lambda: FactorizingMap(c12, c6, mapping))


def test_figure2_primality_benchmark(benchmark):
    c12 = labeled_cycle(12)
    assert benchmark(lambda: is_prime(c12)) is False
