"""Experiment PORTS — "port numbers can be emulated" (Section 1.3).

Runs a port-sensitive algorithm natively in the port-numbering model and
under the broadcast + 2-hop-color emulation, confirming identical
outputs at a one-round overhead, and benchmarks the emulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweeps import SweepRow, format_table
from repro.graphs.builders import cycle_graph, path_graph, star_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.runtime.engine import execute
from repro.runtime.port_model import PortAwareAlgorithm, PortEmulation


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


@dataclass(frozen=True)
class _State:
    ledger: tuple
    round_number: int


class PortLedger(PortAwareAlgorithm):
    """Records, per round, which payload arrived on which port."""

    bits_per_round = 0
    name = "port-ledger"

    def __init__(self, rounds_needed: int = 3) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        return _State(ledger=(), round_number=0)

    def messages(self, state: _State, degree: int):
        return [(state.round_number, port) for port in range(degree)]

    def transition(self, state: _State, received, bits: str):
        return _State(
            ledger=state.ledger + (tuple(enumerate(received)),),
            round_number=state.round_number + 1,
        )

    def output(self, state: _State):
        return state.ledger if state.round_number >= self.rounds_needed else None


def _color_order_ports(graph):
    def key(u):
        c = graph.label_of(u, "color")
        return (type(c).__name__, repr(c))

    return graph.with_ports(
        {v: sorted(graph.neighbors(v), key=key) for v in graph.nodes}
    )


def test_port_emulation_equivalence(report, benchmark):
    cases = [
        ("path-5", colored(with_uniform_input(path_graph(5)))),
        ("cycle-6", colored(with_uniform_input(cycle_graph(6)))),
        ("star-5", colored(with_uniform_input(star_graph(5)))),
    ]

    def run():
        results = []
        for name, graph in cases:
            inner = PortLedger(rounds_needed=3)
            native = execute(inner, _color_order_ports(graph), max_rounds=10)
            emulated = execute(PortEmulation(inner), graph, max_rounds=10)
            results.append((name, native, emulated))
        return results

    rows = []
    for name, native, emulated in benchmark.pedantic(run, rounds=1):
        assert native.outputs == emulated.outputs
        rows.append(
            SweepRow(
                name,
                {
                    "native rounds": native.rounds,
                    "emulated rounds": emulated.rounds,
                    "overhead": emulated.rounds - native.rounds,
                    "outputs equal": native.outputs == emulated.outputs,
                },
            )
        )
    report(
        format_table(
            "PORTS — port-numbering emulated over broadcast + 2-hop colors "
            "(identical outputs, one hello-round overhead)",
            ["native rounds", "emulated rounds", "overhead", "outputs equal"],
            rows,
        )
    )


def test_emulation_round_benchmark(benchmark):
    graph = colored(with_uniform_input(cycle_graph(16)))
    inner = PortLedger(rounds_needed=5)

    def run():
        return execute(PortEmulation(inner), graph, max_rounds=10)

    result = benchmark(run)
    assert result.all_decided
