"""Experiment F3 — Figure 3's algorithm A_* run faithfully.

Runs the three-subprocedure phase loop (Update-Graph / Update-Output /
Update-Bits with real candidate enumeration) on lifted 2-hop colored
cycles, reporting the phase-by-phase selections against the predictions
of Lemmas 5-8, and benchmarks one phase's candidate enumeration — the
super-exponential heart of the construction.
"""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.core.a_star import AStarSolver
from repro.core.candidates import enumerate_candidates
from repro.problems.mis import MISProblem
from repro.problems.problem import TwoHopColoredVariant
from repro.views.local_views import view
from benchmarks.conftest import lifted_colored_c3


@pytest.mark.parametrize("fiber", [1, 2, 4])
def test_a_star_on_lifted_cycles(fiber, report, benchmark):
    _base, lift, _proj = lifted_colored_c3(fiber)
    solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
    outputs, diagnostics = benchmark.pedantic(
        lambda: solver.solve(lift, max_phases=16), rounds=1
    )
    plain = lift.with_only_layers(["input"])
    assert MISProblem().is_valid_output(plain, outputs)
    # Lemma 1 agreement: within each phase, all nodes selected the same graph.
    by_phase = {}
    for phase, size, encoding in diagnostics.phase_selections:
        by_phase.setdefault(phase, set()).add((size, encoding))
    assert all(len(selections) == 1 for selections in by_phase.values())
    rows = [
        SweepRow(
            f"phase {phase}",
            {"selected |V*|": next(iter(sel))[0], "distinct selections": len(sel)},
        )
        for phase, sel in sorted(by_phase.items())
    ]
    rows.append(
        SweepRow(
            "totals",
            {
                "selected |V*|": f"phases={diagnostics.phases}",
                "distinct selections": f"candidates={diagnostics.candidates_enumerated}",
            },
        )
    )
    report(
        format_table(
            f"Figure 3 — faithful A_* on the colored C{3 * fiber} "
            "(lift of C3, quotient size 3)",
            ["selected |V*|", "distinct selections"],
            rows,
        )
    )


def test_candidate_enumeration_benchmark(benchmark):
    _base, lift, _proj = lifted_colored_c3(2)
    instance = lift.with_layer("bits", {v: "" for v in lift.nodes})
    instance = instance.with_only_layers(["input", "color", "bits"])
    problem_c = TwoHopColoredVariant(MISProblem())
    t = view(instance, instance.nodes[0], 4)
    candidates = benchmark(
        lambda: enumerate_candidates(
            t, 4, problem_c, ("input", "color", "bits"), max_nodes=3
        )
    )
    assert candidates


def test_a_star_full_solve_benchmark(benchmark):
    _base, lift, _proj = lifted_colored_c3(2)
    solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
    outputs, _diag = benchmark(lambda: solver.solve(lift, max_phases=16))
    assert len(outputs) == lift.num_nodes
