"""Experiment FAULTS — deterministic fault injection (docs/FAULTS.md).

Benchmarks the fault subsystem's two contracts: an *empty* plan is a
transparent wrapper (byte-identical outputs at negligible overhead),
and a *nonzero* plan is a pure value (the same plan replays the same
faulted run, event for event).
"""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow, format_table
from repro.faults import FaultPlan, execute_with_faults
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.algorithms import TwoHopColoringAlgorithm
from repro.runtime.engine import execute

PLAN = FaultPlan(plan_seed=41, drop_rate=0.1, duplicate_rate=0.05, crashes=((0, 3),))


def test_zero_fault_transparency(report, benchmark):
    cases = [
        ("cycle-8", with_uniform_input(cycle_graph(8))),
        ("path-8", with_uniform_input(path_graph(8))),
    ]

    def run():
        results = []
        for name, graph in cases:
            bare = execute(TwoHopColoringAlgorithm(), graph, seed=7)
            wrapped = execute_with_faults(
                TwoHopColoringAlgorithm(), graph, FaultPlan(), seed=7
            )
            results.append((name, bare, wrapped))
        return results

    rows = []
    for name, bare, wrapped in benchmark.pedantic(run, rounds=1):
        assert bare.outputs == wrapped.result.outputs
        assert wrapped.faults_injected == 0
        rows.append(
            SweepRow(
                name,
                {
                    "bare rounds": bare.rounds,
                    "wrapped rounds": wrapped.result.rounds,
                    "faults": wrapped.faults_injected,
                    "outputs equal": bare.outputs == wrapped.result.outputs,
                },
            )
        )
    report(
        format_table(
            "FAULTS — empty plan is transparent "
            "(identical outputs, zero injected events)",
            ["bare rounds", "wrapped rounds", "faults", "outputs equal"],
            rows,
        )
    )


def test_faulty_replay_determinism(report, benchmark):
    graph = with_uniform_input(cycle_graph(8))

    def run():
        return execute_with_faults(
            _tolerant(), graph, PLAN, max_rounds=6, require_decided=True
        )

    first = benchmark(run)
    second = run()
    assert first.result.outputs == second.result.outputs
    assert first.fault_counts() == second.fault_counts()
    assert first.faults_injected == second.faults_injected > 0
    counts = dict(first.fault_counts())
    report(
        format_table(
            "FAULTS — a fixed nonzero plan replays byte-identically",
            ["faults", "drops", "duplicates", "crashes", "replay equal"],
            [
                SweepRow(
                    "cycle-8",
                    {
                        "faults": first.faults_injected,
                        "drops": counts.get("drop", 0),
                        "duplicates": counts.get("duplicate", 0),
                        "crashes": counts.get("crash", 0),
                        "replay equal": True,
                    },
                )
            ],
        )
    )


def _tolerant():
    """A drop/duplicate/crash-tolerant broadcast workload."""
    from repro.runtime.algorithm import AnonymousAlgorithm

    class Tally(AnonymousAlgorithm):
        bits_per_round = 0
        name = "bench-fault-tally"

        def init_state(self, input_label, degree: int):
            return ((), 0)

        def message(self, state):
            return state[1]

        def transition(self, state, received, bits: str):
            return (state[0] + (len(received),), state[1] + 1)

        def output(self, state):
            return state[0] if state[1] >= 6 else None

    return Tally()
