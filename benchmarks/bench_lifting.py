"""Experiment LIFT — the lifting lemma, executed.

For every (algorithm, fiber) pair: run the algorithm on the factor with
recorded bits, lift the bit assignment to the product, run there, and
verify messages and outputs are identical through the factorizing map —
the statement the paper's correctness proofs lean on twice.
"""

from __future__ import annotations


from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import lift_assignment, verify_execution_lifting
from repro.runtime.simulation import run_randomized, simulate_with_assignment
from benchmarks.conftest import lifted_colored_c3

ALGORITHMS = {
    "two-hop-coloring": TwoHopColoringAlgorithm(),
    "mis": AnonymousMISAlgorithm(),
    "coloring": VertexColoringAlgorithm(),
}


def stripped_map(fiber: int) -> FactorizingMap:
    base, lift, projection = lifted_colored_c3(fiber)
    return FactorizingMap(
        lift.with_only_layers(["input"]),
        base.with_only_layers(["input"]),
        projection,
    )


def test_lifting_lemma_sweep(report, benchmark):
    def run():
        results = []
        for algorithm_name, algorithm in ALGORITHMS.items():
            for fiber in (2, 3, 4):
                fm = stripped_map(fiber)
                factor_run = run_randomized(algorithm, fm.factor, seed=17)
                comparison = verify_execution_lifting(
                    algorithm, fm, factor_run.trace.assignment()
                )
                results.append((algorithm_name, fiber, comparison))
        return results

    rows = []
    for algorithm_name, fiber, comparison in benchmark.pedantic(run, rounds=1):
        assert comparison.lemma_holds
        rows.append(
            SweepRow(
                f"{algorithm_name} x{fiber}",
                {
                    "factor rounds": comparison.factor_result.rounds,
                    "product rounds": comparison.product_result.rounds,
                    "messages match": comparison.messages_match,
                    "outputs match": comparison.outputs_match,
                },
            )
        )
    report(
        format_table(
            "Lifting lemma — factor executions lift to product executions "
            "(per-fiber identical messages and outputs)",
            ["factor rounds", "product rounds", "messages match", "outputs match"],
            rows,
        )
    )


def test_lift_and_simulate_benchmark(benchmark):
    fm = stripped_map(4)
    algorithm = AnonymousMISAlgorithm()
    factor_run = run_randomized(algorithm, fm.factor, seed=17)
    assignment = factor_run.trace.assignment()

    def lift_and_run():
        lifted = lift_assignment(assignment, fm)
        return simulate_with_assignment(algorithm, fm.product, lifted)

    result = benchmark(lift_and_run)
    assert result.successful
