"""Experiment ELECT — the edges of the theorem: leader election.

Three measurements around the GRAN boundary:

* deterministic minimal-view election succeeds on *prime* 2-hop colored
  instances (Corollary 1 in action);
* on non-prime instances the same algorithm elects one *per fiber* —
  election is simply not solvable there (the "mock cases" the paper
  excludes);
* the Monte-Carlo route (random IDs + flooding) succeeds with
  probability governed by the collision bound ``n²/2^b`` — measured
  failure rates against the bound across ID lengths.
"""

from __future__ import annotations

from repro.algorithms.monte_carlo_election import (
    MonteCarloElection,
    failure_probability_bound,
)
from repro.analysis.sweeps import SweepRow, format_table
from repro.graphs.builders import cycle_graph, path_graph, star_graph
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.problems.election import LEADER, LeaderElectionProblem, MinimalViewElection
from repro.runtime.simulation import run_deterministic, run_randomized
from repro.views.refinement import color_refinement

PROBLEM = LeaderElectionProblem()


def with_n_input(graph):
    n = graph.num_nodes
    return graph.with_layer("input", {v: (graph.degree(v), n) for v in graph.nodes})


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def test_minimal_view_election_boundary(report, benchmark):
    def run():
        results = []
        for name, instance in _instances():
            execution = run_deterministic(
                MinimalViewElection(), instance, max_rounds=200
            )
            leaders = sum(1 for out in execution.outputs.values() if out == LEADER)
            valid = PROBLEM.is_valid_output(
                instance.with_only_layers(["input"]), execution.outputs
            )
            classes = color_refinement(instance).num_classes
            prime = classes == instance.num_nodes
            # The sharp boundary: election succeeds iff the instance is
            # prime, and the number of leaders is exactly one fiber.
            assert valid == prime
            assert leaders == instance.num_nodes // classes
            results.append((name, instance, leaders, valid, prime))
        return results

    rows = [
        SweepRow(
            name,
            {"n": instance.num_nodes, "prime": prime, "leaders": leaders, "valid": valid},
        )
        for name, instance, leaders, valid, prime in benchmark.pedantic(run, rounds=1)
    ]
    report(
        format_table(
            "ELECT — deterministic election succeeds exactly on prime "
            "colored instances; otherwise one 'leader' per fiber",
            ["n", "prime", "leaders", "valid"],
            rows,
        )
    )


def _instances():
    cases = [
        ("path-5 greedy-colored", colored(with_n_input(path_graph(5)))),
        ("star-4 greedy-colored", colored(with_n_input(star_graph(4)))),
        # Greedy colors cycles of length divisible by 3 periodically, so
        # this instance is 2-hop colored yet NOT prime.
        ("cycle-6 periodic-colored", colored(with_n_input(cycle_graph(6)))),
        ("cycle-5 greedy-colored", colored(with_n_input(cycle_graph(5)))),
    ]
    base = colored(with_n_input(cycle_graph(3)))
    for fiber in (2, 4):
        lift, _ = cyclic_lift(base, fiber)
        lift = lift.with_layer(
            "input", {v: (lift.degree(v), lift.num_nodes) for v in lift.nodes}
        )
        cases.append((f"C{3*fiber} over C3", lift))
    return cases


def test_monte_carlo_failure_rates(report, benchmark):
    graph = with_n_input(cycle_graph(8))
    trials = 60

    def run():
        results = []
        for id_bits in (1, 2, 4, 8, 16):
            algorithm = MonteCarloElection(id_bits=id_bits)
            failures = 0
            for seed in range(trials):
                outcome = run_randomized(algorithm, graph, seed=seed)
                if not PROBLEM.is_valid_output(graph, outcome.outputs):
                    failures += 1
            results.append((id_bits, failures))
        return results

    rows = []
    previous_rate = 1.1
    for id_bits, failures in benchmark.pedantic(run, rounds=1):
        rate = failures / trials
        bound = failure_probability_bound(graph.num_nodes, id_bits)
        rows.append(
            SweepRow(
                f"id_bits={id_bits}",
                {
                    "measured failure rate": rate,
                    "union bound n^2/2^b": bound,
                    "within bound": rate <= bound + 0.15,
                },
            )
        )
        previous_rate = min(previous_rate, rate + 0.25)
    # Qualitative shape: the failure rate decays with more ID bits.
    rates = [row.values["measured failure rate"] for row in rows]
    assert rates[-1] == 0.0
    assert rates[0] > rates[-1]
    report(
        format_table(
            "ELECT — Monte-Carlo election failure rate vs the collision "
            f"bound (C8, {trials} seeds per row): Las-Vegas impossibility, "
            "Monte-Carlo feasibility",
            ["measured failure rate", "union bound n^2/2^b", "within bound"],
            rows,
        )
    )
