"""Experiment PERF — scaling of the proof machinery's primitives.

Measures the costs the theory leaves implicit: explicit view
construction (exponential expanded size, near-linear shared size),
color refinement, quotient construction, and canonical encodings.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepRow, format_table
from repro.core.orders import finite_view_graph_sort_key
from repro.factor.quotient import finite_view_graph, infinite_view_graph
from repro.graphs.builders import (
    cycle_graph,
    random_connected_graph,
    torus_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.csr import csr_of
from repro.graphs.lifts import lift_graph
from repro.views.local_views import all_views, view_builder
from repro.views.refinement import color_refinement
from repro.views.view_tree import clear_caches


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def colored_lift(base_n, fiber):
    base = colored(with_uniform_input(cycle_graph(base_n)))
    lift, _ = lift_graph(base, fiber, seed=base_n * fiber)
    return lift


@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_view_construction_scaling(n, benchmark):
    g = with_uniform_input(cycle_graph(n))
    views = benchmark(lambda: all_views(g, n))
    assert len(views) == n


@pytest.mark.parametrize("n", [16, 32, 64])
def test_incremental_deepening(n, benchmark):
    """Extending a cached depth-(n/2) builder to depth n: the cost of the
    *new* levels only, not a from-scratch rebuild."""
    g = with_uniform_input(cycle_graph(n))

    def run():
        clear_caches()
        builder = view_builder(g)
        builder.views(n // 2)
        return builder.views(n)

    views = benchmark(run)
    assert len(views) == n


@pytest.mark.parametrize("n", [16, 64, 128])
def test_refinement_scaling(n, benchmark):
    g = with_uniform_input(random_connected_graph(n, 0.1, seed=n))
    result = benchmark(lambda: color_refinement(g))
    assert result.num_classes >= 1


@pytest.mark.parametrize("n", [8, 16, 32])
def test_quotient_scaling(n, benchmark):
    g = colored(with_uniform_input(random_connected_graph(n, 0.15, seed=n)))
    result = benchmark(lambda: finite_view_graph(g))
    assert result.graph.num_nodes <= n


@pytest.mark.parametrize("n", [256, 1024])
def test_refinement_csr_cycle(n, benchmark):
    """The CSR headline case: flat-array refinement on a uniform cycle
    (one round to the single-class fixpoint, dominated by array setup)."""
    g = with_uniform_input(cycle_graph(n))
    csr_of(g)  # arrays are built once per graph; measure the kernel
    result = benchmark(lambda: color_refinement(g))
    assert result.num_classes == 1


@pytest.mark.parametrize("n", [256, 1024])
def test_refinement_csr_torus(n, benchmark):
    side = 16 if n == 256 else 32
    g = with_uniform_input(torus_graph(side, side))
    csr_of(g)
    result = benchmark(lambda: color_refinement(g))
    assert result.num_classes == 1


@pytest.mark.parametrize("fiber", [16, 64])
def test_quotient_csr_lift(fiber, benchmark):
    """Quotient construction on a lift of a 2-hop colored cycle: the
    int-array class/edge walk plus the factorizing-map fast verify."""
    g = colored_lift(16, fiber)
    factor = benchmark(lambda: infinite_view_graph(g))
    assert factor.graph.num_nodes == 16


@pytest.mark.parametrize("n", [256, 1024])
def test_bfs_csr_distance(n, benchmark):
    """Epoch-stamped BFS on the CSR arrays: antipodal distance plus a
    radius query, no per-call buffer allocation."""
    g = with_uniform_input(cycle_graph(n))

    def run():
        return g.distance(0, n // 2), len(g.nodes_within(0, n // 4))

    dist, within = benchmark(run)
    assert dist == n // 2
    assert within == n // 2 + 1


def test_canonical_encoding_benchmark(benchmark):
    g = colored(with_uniform_input(random_connected_graph(12, 0.2, seed=5)))
    key = benchmark(lambda: finite_view_graph_sort_key(finite_view_graph(g).graph))
    assert key[0] <= 12


def test_view_sharing_report(report, benchmark):
    """Expanded view size vs distinct interned subtrees: hash-consing is
    what keeps deep views affordable."""

    def run():
        rows = []
        for n in (8, 16, 24):
            g = with_uniform_input(cycle_graph(n))
            views = all_views(g, n)
            distinct: set = set()
            for tree in views.values():
                distinct.update(id(subtree) for subtree in tree.subtrees())
            expanded = max(t.size for t in views.values())
            rows.append(
                SweepRow(
                    f"cycle-{n} depth-{n}",
                    {
                        "expanded size": expanded,
                        "distinct shared trees": len(distinct),
                    },
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report(
        format_table(
            "PERF — exponential expanded views vs shared (interned) trees",
            ["expanded size", "distinct shared trees"],
            rows,
        )
    )
