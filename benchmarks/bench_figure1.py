"""Experiment F1 — regenerate Figure 1: the depth-3 local view of node
u0 in the labeled C6.

The paper's figure shows a 2-hop colored 6-cycle (three colors, repeated
with period 3, so antipodal nodes share colors) and the depth-3 view of
u0: a root with 2 children and 4 grandchildren whose marks follow the
cycle's coloring.  We rebuild exactly that tree, assert its shape, print
it, and benchmark view construction on the same graph.
"""

from __future__ import annotations

from repro.graphs.builders import cycle_graph
from repro.views.local_views import all_views, view, view_partition


def figure1_graph():
    labels = {0: "c0", 1: "c1", 2: "c2", 3: "c0", 4: "c1", 5: "c2"}
    return cycle_graph(6).with_layer("color", labels)


def test_figure1_tree_shape(report, benchmark):
    g = figure1_graph()
    tree = benchmark.pedantic(lambda: view(g, 0, 3), rounds=1)
    assert tree.depth == 3
    assert tree.size == 7  # 1 root + 2 children + 4 grandchildren
    assert tree.mark == ("c0",)
    assert sorted(c.mark for c in tree.children) == [("c1",), ("c2",)]
    # Figure 1's key observation: same-colored nodes share their views.
    partition = view_partition(g, 6)
    assert sorted(map(sorted, partition)) == [[0, 3], [1, 4], [2, 5]]
    report(
        "Figure 1 — depth-3 local view of u0 in the 2-hop colored C6\n"
        + "-" * 60
        + "\n"
        + tree.render()
        + "\n"
        + f"view classes at depth 6: {partition}"
    )


def test_figure1_view_construction_benchmark(benchmark):
    g = figure1_graph()
    result = benchmark(lambda: all_views(g, 6))
    assert len(result) == 6
