"""Experiment IMP — Angluin-style impossibility (Section 1.3 context).

Two demonstrations:

* *View collapse*: on vertex-transitive unlabeled graphs every node has
  the same view, so deterministic anonymous leader election is
  impossible; the table profiles the collapse across families.
* *Lifted symmetric executions*: for a product graph, the lift of any
  factor execution is a legal execution in which whole fibers behave
  identically — exhibiting, for Las-Vegas algorithms, a
  positive-probability execution that breaks any would-be election.
"""

from __future__ import annotations

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.analysis.symmetry import (
    election_is_deterministically_impossible,
    view_class_profile,
)
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import verify_execution_lifting
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    star_graph,
    torus_graph,
    with_uniform_input,
)
from repro.runtime.simulation import run_randomized
from benchmarks.conftest import lifted_colored_c3


def test_view_collapse_profile(report, benchmark):
    cases = [
        ("cycle-8", with_uniform_input(cycle_graph(8))),
        ("complete-6", with_uniform_input(complete_graph(6))),
        ("hypercube-3", with_uniform_input(hypercube_graph(3))),
        ("torus-3x3", with_uniform_input(torus_graph(3, 3))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("path-6", with_uniform_input(path_graph(6))),
        ("star-5", with_uniform_input(star_graph(5))),
    ]

    def run():
        return [
            (
                name,
                view_class_profile(g),
                election_is_deterministically_impossible(g),
            )
            for name, g in cases
        ]

    rows = []
    for name, profile, impossible in benchmark.pedantic(run, rounds=1):
        assert impossible  # all these families collapse somewhere
        rows.append(
            SweepRow(
                name,
                {
                    "n": profile.num_nodes,
                    "view classes": profile.num_classes,
                    "largest class": profile.class_sizes[0],
                    "election impossible": impossible,
                },
            )
        )
    report(
        format_table(
            "IMP — view-class collapse forbids deterministic anonymous "
            "leader election",
            ["n", "view classes", "largest class", "election impossible"],
            rows,
        )
    )


def test_lifted_symmetric_execution(report, benchmark):
    def run():
        base, lift, projection = lifted_colored_c3(4)
        fm = FactorizingMap(
            lift.with_only_layers(["input"]),
            base.with_only_layers(["input"]),
            projection,
        )
        algorithm = AnonymousMISAlgorithm()
        factor_run = run_randomized(algorithm, fm.factor, seed=23)
        comparison = verify_execution_lifting(
            algorithm, fm, factor_run.trace.assignment()
        )
        return fm, comparison

    fm, comparison = benchmark.pedantic(run, rounds=1)
    assert comparison.lemma_holds
    fiber_sizes = []
    for target in fm.factor.nodes:
        fiber = fm.fiber(target)
        values = {comparison.product_result.outputs[v] for v in fiber}
        assert len(values) == 1  # whole fiber acts as one node
        fiber_sizes.append(len(fiber))
    report(
        format_table(
            "IMP — the lifted execution is fiber-symmetric: no node of a "
            "fiber can be distinguished (election impossible with positive "
            "probability)",
            ["fibers", "fiber size", "symmetric"],
            [
                SweepRow(
                    "C12 over C3",
                    {
                        "fibers": len(fiber_sizes),
                        "fiber size": fiber_sizes[0],
                        "symmetric": True,
                    },
                )
            ],
        )
    )
