"""Experiment R1 — the generic randomized preprocessing stage.

Measures the randomized anonymous 2-hop coloring algorithm: rounds, bits
and color-length statistics across graph families and sizes, averaged
over seeds.  This is the cost of the "randomization" side of the
paper's equation.
"""

from __future__ import annotations

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.stats import RunStats, aggregate
from repro.analysis.sweeps import SweepRow, format_table
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import is_two_hop_coloring
from repro.runtime.simulation import run_randomized

SEEDS = range(5)


def cases():
    for n in (4, 8, 16, 32):
        yield f"cycle-{n}", with_uniform_input(cycle_graph(n))
    for n in (4, 6, 8):
        yield f"complete-{n}", with_uniform_input(complete_graph(n))
    for n in (8, 16, 32):
        yield f"random-{n}", with_uniform_input(
            random_connected_graph(n, 0.2, seed=n)
        )


def test_two_hop_coloring_sweep(report, benchmark):
    algorithm = TwoHopColoringAlgorithm()
    case_list = list(cases())

    def run():
        results = []
        for name, graph in case_list:
            runs = []
            max_color_len = 0
            for seed in SEEDS:
                result = run_randomized(algorithm, graph, seed=seed)
                assert is_two_hop_coloring(graph, result.outputs)
                runs.append(RunStats.of(graph, result, algorithm.bits_per_round))
                max_color_len = max(
                    max_color_len, max(len(c) for c in result.outputs.values())
                )
            results.append((name, graph, aggregate(runs), max_color_len))
        return results

    rows = []
    for name, graph, agg, max_color_len in benchmark.pedantic(run, rounds=1):
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "mean rounds": agg.mean_rounds,
                    "max rounds": agg.max_rounds,
                    "mean bits": agg.mean_bits,
                    "max color len": max_color_len,
                },
            )
        )
    report(
        format_table(
            "R1 — randomized anonymous 2-hop coloring "
            f"(validated, {len(list(SEEDS))} seeds each)",
            ["n", "mean rounds", "max rounds", "mean bits", "max color len"],
            rows,
        )
    )


def test_two_hop_coloring_single_run_benchmark(benchmark):
    g = with_uniform_input(cycle_graph(32))
    algorithm = TwoHopColoringAlgorithm()
    result = benchmark(lambda: run_randomized(algorithm, g, seed=1))
    assert result.all_decided
