"""Experiment ABL — ablations of the design choices in DESIGN.md.

* **Assignment search order**: the paper's lexicographic
  smallest-assignment order vs the deterministic-pseudorandom order.
  Any predetermined order satisfies Lemma 1; the ablation quantifies the
  exponential-vs-expected-constant trial gap, and also confirms both
  orders yield *valid* (though possibly different) outputs.
* **Refinement vs explicit views** for the quotient partition: the two
  ways to compute view equivalence, same partition, very different cost.
"""

from __future__ import annotations

import time

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.analysis.sweeps import SweepRow, format_table
from repro.core.assignment_search import smallest_successful_assignment
from repro.core.infinity import AInfinitySolver
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.problems.mis import MISProblem
from repro.runtime.simulation import simulate_with_assignment
from repro.views.local_views import view_partition
from repro.views.refinement import refinement_partition
from benchmarks.conftest import lifted_colored_c3


def _count_trials(algorithm, graph, order, strategy):
    """Trials used by a search strategy (counted via a wrapping proxy)."""
    calls = {"n": 0}

    class Counting(type(algorithm)):
        def transition(self, state, received, bits):
            return super().transition(state, received, bits)

    import repro.core.assignment_search as search_module

    original = search_module.simulate_with_assignment

    def counting_simulate(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    search_module.simulate_with_assignment = counting_simulate
    try:
        assignment = smallest_successful_assignment(
            algorithm, graph, order, max_length=64, strategy=strategy
        )
    finally:
        search_module.simulate_with_assignment = original
    return calls["n"], assignment


def test_search_order_ablation(report, benchmark):
    def run():
        rows = []
        algorithm = AnonymousMISAlgorithm()
        for name, graph in [
            ("path-2", with_uniform_input(path_graph(2))),
            ("path-3", with_uniform_input(path_graph(3))),
            ("cycle-3", with_uniform_input(cycle_graph(3))),
        ]:
            order = list(graph.nodes)
            lex_trials, lex_assignment = _count_trials(
                algorithm, graph, order, "lexicographic"
            )
            prg_trials, prg_assignment = _count_trials(algorithm, graph, order, "prg")
            for assignment in (lex_assignment, prg_assignment):
                assert simulate_with_assignment(algorithm, graph, assignment).successful
            rows.append(
                SweepRow(
                    name,
                    {
                        "lex trials": lex_trials,
                        "prg trials": prg_trials,
                        "lex t": max(len(b) for b in lex_assignment.values()),
                        "prg t": max(len(b) for b in prg_assignment.values()),
                    },
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report(
        format_table(
            "ABL — assignment search order: paper's lexicographic vs "
            "deterministic-pseudorandom (both valid per Lemma 1)",
            ["lex trials", "prg trials", "lex t", "prg t"],
            rows,
        )
    )


def test_refinement_vs_views_ablation(report, benchmark):
    def run():
        rows = []
        for n in (8, 12, 16):
            g = with_uniform_input(cycle_graph(n))
            start = time.perf_counter()
            by_views = sorted(map(sorted, view_partition(g, n)))
            views_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            by_refinement = sorted(map(sorted, refinement_partition(g)))
            refinement_ms = (time.perf_counter() - start) * 1000
            assert by_views == by_refinement
            rows.append(
                SweepRow(
                    f"cycle-{n}",
                    {
                        "views ms": views_ms,
                        "refinement ms": refinement_ms,
                        "partitions equal": True,
                    },
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report(
        format_table(
            "ABL — explicit views vs color refinement for the view "
            "partition (identical partitions)",
            ["views ms", "refinement ms", "partitions equal"],
            rows,
        )
    )


def test_strategy_output_validity_cross_check(benchmark):
    """Both strategies produce valid (potentially different) outputs for
    the same derandomized solve."""
    _base, lift, _proj = lifted_colored_c3(2)
    problem, algorithm = MISProblem(), AnonymousMISAlgorithm()

    def run():
        lex = AInfinitySolver(problem, algorithm, strategy="lexicographic").solve(lift)
        prg = AInfinitySolver(problem, algorithm, strategy="prg").solve(lift)
        return lex, prg

    lex, prg = benchmark.pedantic(run, rounds=1)
    plain = lift.with_only_layers(["input"])
    assert problem.is_valid_output(plain, lex.outputs)
    assert problem.is_valid_output(plain, prg.outputs)
