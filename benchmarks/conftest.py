"""Shared helpers for the benchmark/experiment suite.

Each ``bench_*`` module regenerates one paper artifact (figure, theorem
or lemma — see DESIGN.md's experiment index) as a plain-text table
printed on stdout (run with ``pytest benchmarks/ --benchmark-only -s``
to see them) and measures the cost of the underlying machinery via
pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.views.view_tree import clear_caches


@pytest.fixture(autouse=True)
def fresh_view_caches():
    """Empty the view intern/rank tables before every benchmark case.

    Long parametrized sessions would otherwise accumulate interned trees
    without bound, and cross-case cache warmth would skew timings."""
    clear_caches()
    yield


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def lifted_colored_c3(fiber: int):
    """The Figure 2 family: a 2-hop colored C3 and its cyclic lifts."""
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, projection = cyclic_lift(base, fiber)
    return base, lift, projection


@pytest.fixture(scope="session")
def report(request):
    """Print an experiment table at the end of the run (works without -s)."""

    tables = []

    def add(table: str) -> None:
        tables.append(table)

    yield add
    if tables:
        capmanager = request.config.pluginmanager.getplugin("capturemanager")
        with capmanager.global_and_fixture_disabled():
            print()
            for table in tables:
                print(table)
                print()
