"""Experiment SEC4 — Section 4's fibration correspondence.

Builds the directed edge-colored representations of 2-hop colored graphs
and checks the three properties the paper asserts (symmetric,
deterministic coloring, symmetry-respecting colors), then validates the
fibration <-> factorizing-map correspondence on the lift projections.
"""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow, format_table, standard_families
from repro.factor.fibrations import (
    coloring_respects_symmetry,
    directed_representation,
    fibration_to_factorizing_map,
    is_deterministic_coloring,
    is_fibration,
    is_symmetric_representation,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from benchmarks.conftest import lifted_colored_c3


def test_representation_properties_sweep(report, benchmark):
    cases = [
        (name, apply_two_hop_coloring(g, greedy_two_hop_coloring(g)))
        for name, g in standard_families(sizes=(4, 6), include_random=False)
    ]

    def run():
        return [(name, g, directed_representation(g)) for name, g in cases]

    rows = []
    for name, g, rep in benchmark.pedantic(run, rounds=1):
        symmetric = is_symmetric_representation(rep)
        deterministic = is_deterministic_coloring(rep)
        respects = coloring_respects_symmetry(rep)
        assert symmetric and deterministic and respects
        rows.append(
            SweepRow(
                name,
                {
                    "directed edges": len(rep.edges),
                    "symmetric": symmetric,
                    "deterministic": deterministic,
                    "respects symmetry": respects,
                },
            )
        )
    report(
        format_table(
            "Section 4 — directed representations of 2-hop colored graphs "
            "satisfy all three stated properties",
            ["directed edges", "symmetric", "deterministic", "respects symmetry"],
            rows,
        )
    )


def test_fibration_correspondence(report, benchmark):
    def run():
        results = []
        for fiber in (2, 4):
            base, lift, projection = lifted_colored_c3(fiber)
            rep_total = directed_representation(lift)
            rep_base = directed_representation(base)
            ok = is_fibration(rep_total, rep_base, projection)
            fm = fibration_to_factorizing_map(lift, base, projection)
            results.append((fiber, ok, fm.multiplicity))
        return results

    rows = []
    for fiber, ok, multiplicity in benchmark.pedantic(run, rounds=1):
        assert ok and multiplicity == fiber
        rows.append(
            SweepRow(
                f"C3-lift x{fiber}",
                {"is fibration": ok, "factorizing m": multiplicity},
            )
        )
    report(
        format_table(
            "Section 4 — fibrations of directed representations correspond "
            "to factorizing maps",
            ["is fibration", "factorizing m"],
            rows,
        )
    )


def test_representation_benchmark(benchmark):
    base, lift, _ = lifted_colored_c3(4)
    rep = benchmark(lambda: directed_representation(lift))
    assert len(rep.edges) == 2 * lift.num_edges
