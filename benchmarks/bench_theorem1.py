"""Experiment T1 — Theorem 1 end to end.

For each GRAN problem (MIS, coloring, 2-hop coloring, matching) and
graph family, run the full decoupled pipeline — randomized 2-hop
coloring stage, then the deterministic stage — and report the costs.
The pipeline call validates outputs internally, so every row of the
table is a verified instance of Theorem 1.
"""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow, format_table, standard_families
from repro.core.derandomize import derandomize_pipeline
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem

DECIDER = WellFormedInputDecider()
BUNDLES = {
    "mis": GranBundle(MISProblem(), AnonymousMISAlgorithm(), DECIDER),
    "coloring": GranBundle(ColoringProblem(), VertexColoringAlgorithm(), DECIDER),
    "2-hop-coloring": GranBundle(
        KHopColoringProblem(2), TwoHopColoringAlgorithm(), DECIDER
    ),
    "matching": GranBundle(
        MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), DECIDER
    ),
}


@pytest.mark.parametrize("problem_name", list(BUNDLES), ids=list(BUNDLES))
def test_theorem1_sweep(problem_name, report, benchmark):
    bundle = BUNDLES[problem_name]
    cases = list(standard_families(sizes=(4, 6, 8), include_random=True))

    def run_sweep():
        return [
            (
                name,
                graph,
                derandomize_pipeline(
                    bundle, graph, seed=1, strategy="prg", max_assignment_length=128
                ),
            )
            for name, graph in cases
        ]

    rows = []
    for name, graph, result in benchmark.pedantic(run_sweep, rounds=1):
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "stage1 rounds": result.stage1_rounds,
                    "quotient": result.quotient_size,
                    "sim rounds": result.stage2.simulation_rounds,
                    "assignment bits": sum(
                        len(b) for b in result.stage2.assignment.values()
                    ),
                },
            )
        )
    report(
        format_table(
            "Theorem 1 — pipeline (random 2-hop stage + deterministic stage) "
            f"for {problem_name}; every row validated",
            ["n", "stage1 rounds", "quotient", "sim rounds", "assignment bits"],
            rows,
        )
    )


def test_theorem1_pipeline_benchmark(benchmark):
    from repro.graphs.builders import cycle_graph, with_uniform_input

    bundle = BUNDLES["mis"]
    graph = with_uniform_input(cycle_graph(8))
    result = benchmark(
        lambda: derandomize_pipeline(bundle, graph, seed=1, strategy="prg")
    )
    assert set(result.outputs) == set(graph.nodes)
