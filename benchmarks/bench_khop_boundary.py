"""Experiment KHOP — the k = 2 boundary of Section 1.2.

"While the 2-hop variant of graph coloring is still solvable by
randomized anonymous algorithms … this no longer holds for its k-hop
variant for any k > 2."  The table lifts successful coloring executions
along uniform cycle covers and reports the largest ``k`` for which the
lifted output is still a k-hop coloring: the 2-hop guarantee survives
every lift, the 3-hop one dies exactly at the fiber distance.
"""

from __future__ import annotations

from repro.analysis.khop_boundary import lifted_khop_violation, uniform_cycle_cover
from repro.analysis.sweeps import SweepRow, format_table


def test_khop_boundary_sweep(report, benchmark):
    covers = [(3, 2), (3, 3), (3, 4), (4, 2), (5, 2), (6, 2)]

    def run():
        results = []
        for factor, multiplier in covers:
            covering = uniform_cycle_cover(factor, multiplier)
            violation = lifted_khop_violation(covering, seed=2, max_k=8)
            results.append((factor, multiplier, violation))
        return results

    rows = []
    for factor, multiplier, violation in benchmark.pedantic(run, rounds=1):
        assert violation.valid_up_to >= 2  # 2-hop always survives lifting
        assert violation.valid_up_to < factor  # breaks at the fiber distance
        rows.append(
            SweepRow(
                f"C{factor} ⪯ C{factor * multiplier}",
                {
                    "factor n": violation.factor_nodes,
                    "product n": violation.product_nodes,
                    "lifted valid up to k": violation.valid_up_to,
                    "violates k=3": violation.violates(3),
                },
            )
        )
    report(
        format_table(
            "KHOP — lifted 2-hop colorings stay 2-hop valid but break as "
            "k-hop colorings for k > 2 (why GRAN stops at 2 hops)",
            ["factor n", "product n", "lifted valid up to k", "violates k=3"],
            rows,
        )
    )
