"""Thin setup.py shim.

Kept alongside pyproject.toml so that editable installs work in offline
environments lacking the ``wheel`` package (legacy ``pip install -e .
--no-use-pep517`` path).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
