"""Executable form of docs/TUTORIAL.md — the walkthrough cannot rot.

Each test mirrors one tutorial section; the code is kept intentionally
identical to the document's snippets.
"""

from __future__ import annotations

from repro.algorithms.deciders import WellFormedInputDecider
from repro.core.derandomize import derandomize_pipeline
from repro.core.verification import check_gran_bundle
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.problems.gran import GranBundle
from repro.problems.problem import DistributedProblem
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.simulation import run_deterministic


class NeighborhoodCensusProblem(DistributedProblem):
    """Each node outputs the sorted tuple of its neighbors' degrees."""

    name = "neighborhood-census"

    def is_instance(self, graph):
        return self.inputs_well_formed(graph)

    def is_valid_output(self, graph, outputs):
        self.require_total(graph, outputs)
        for v in graph.nodes:
            expected = tuple(sorted(graph.degree(u) for u in graph.neighbors(v)))
            if outputs[v] != expected:
                return False
        return True


class CensusAlgorithm(AnonymousAlgorithm):
    bits_per_round = 0  # deterministic
    name = "census"

    def init_state(self, input_label, degree):
        return ("fresh", degree)

    def message(self, state):
        return state[1]  # my degree

    def transition(self, state, received, bits):
        return ("done", tuple(sorted(received)))

    def output(self, state):
        return state[1] if state[0] == "done" else None


class RandomizedCensus(CensusAlgorithm):
    bits_per_round = 1  # draw (and ignore) one bit per round
    name = "census-randomized"


def test_section_2_algorithm_solves_problem():
    problem = NeighborhoodCensusProblem()
    graph = with_uniform_input(cycle_graph(5))
    result = run_deterministic(CensusAlgorithm(), graph)
    assert problem.is_valid_output(graph, result.outputs)
    assert result.rounds == 1


def test_section_3_conformance():
    bundle = GranBundle(
        NeighborhoodCensusProblem(), CensusAlgorithm(), WellFormedInputDecider()
    )
    report = check_gran_bundle(
        bundle,
        instances=[
            ("cycle-5", with_uniform_input(cycle_graph(5))),
            ("path-4", with_uniform_input(path_graph(4))),
        ],
        non_instances=[("unlabeled", cycle_graph(4))],
        seeds=(0, 1),
    )
    assert report.passed, report.failures()


def test_section_4_pipeline():
    bundle = GranBundle(
        NeighborhoodCensusProblem(), RandomizedCensus(), WellFormedInputDecider()
    )
    graph = with_uniform_input(cycle_graph(6))
    result = derandomize_pipeline(bundle, graph, seed=7, strategy="prg")
    assert bundle.problem.is_valid_output(graph, result.outputs)
