"""Tests for ambient injection (``repro.faults.context``) and the
``execute_with_faults`` harness.

The wiring under test: while an ``inject_faults`` block is active,
every ``execute()`` call gets wrapped decorators, a child trace, and a
``faults_injected`` metric — and outside the block (or under an empty
plan) the engine behaves exactly as if the fault package did not exist.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultPlan,
    current,
    execute_with_faults,
    inject_faults,
)
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.engine import execute


def counter(stop_at: int):
    return FunctionAlgorithm(
        init=lambda label, deg: 0,
        msg=lambda s: s,
        step=lambda s, received, b: s + 1,
        out=lambda s: s if s >= stop_at else None,
        bits_per_round=0,
        name="counter",
    )


def tally(stop_at: int):
    """Decides after ``stop_at`` rounds with the per-round inbox sizes."""
    return FunctionAlgorithm(
        init=lambda label, deg: ((), 0),
        msg=lambda s: s[1],
        step=lambda s, received, b: (s[0] + (len(received),), s[1] + 1),
        out=lambda s: s[0] if s[1] >= stop_at else None,
        bits_per_round=0,
        name="tally",
    )


GRAPH = with_uniform_input(cycle_graph(6))


class TestAmbientContext:
    def test_no_context_by_default(self):
        assert current() is None

    def test_context_is_active_inside_the_block(self):
        with inject_faults(FaultPlan()) as injection:
            assert current() is injection
        assert current() is None

    def test_contexts_nest_innermost_wins(self):
        outer_plan = FaultPlan(plan_seed=1)
        inner_plan = FaultPlan(plan_seed=2)
        with inject_faults(outer_plan) as outer:
            with inject_faults(inner_plan) as inner:
                assert current() is inner
            assert current() is outer

    def test_context_is_released_on_error(self):
        with pytest.raises(RuntimeError):
            with inject_faults(FaultPlan()):
                raise RuntimeError("boom")
        assert current() is None

    def test_execute_inside_block_is_wrapped(self):
        with inject_faults(FaultPlan(plan_seed=3, drop_rate=1.0)) as injection:
            result = execute(tally(2), GRAPH, max_rounds=2)
        assert all(log == (0, 0) for log in result.outputs.values())
        assert len(injection.trace) > 0
        assert result.metrics.faults_injected == len(injection.trace)

    def test_empty_plan_is_transparent_but_still_wraps(self):
        bare = execute(tally(3), GRAPH, max_rounds=3)
        with inject_faults(FaultPlan()) as injection:
            wrapped = execute(tally(3), GRAPH, max_rounds=3)
        assert bare.outputs == wrapped.outputs
        assert len(injection.execution_traces) == 1  # it did wrap
        assert len(injection.trace) == 0
        assert wrapped.metrics.faults_injected == 0

    def test_block_accumulates_across_executions(self):
        plan = FaultPlan(plan_seed=3, drop_rate=0.5)
        with inject_faults(plan) as injection:
            first = execute(tally(3), GRAPH, max_rounds=3)
            second = execute(tally(3), GRAPH, max_rounds=3)
        assert len(injection.execution_traces) == 2
        assert (
            len(injection.trace)
            == first.metrics.faults_injected + second.metrics.faults_injected
        )
        # Same plan, same graph, same round numbers -> identical faults.
        assert first.outputs == second.outputs

    def test_last_execution_trace(self):
        with inject_faults(FaultPlan(plan_seed=3, drop_rate=1.0)) as injection:
            assert injection.last_execution_trace is None
            execute(tally(1), GRAPH, max_rounds=1)
            last = injection.last_execution_trace
        assert last is injection.execution_traces[-1]
        assert len(last) == GRAPH.num_nodes * 2


class TestHarness:
    def test_execute_with_faults_bundles_result_and_trace(self):
        plan = FaultPlan(plan_seed=9, drop_rate=1.0)
        faulted = execute_with_faults(tally(2), GRAPH, plan, max_rounds=2)
        assert faulted.plan == plan
        assert faulted.result.all_decided
        assert faulted.faults_injected == len(faulted.fault_trace)
        assert faulted.fault_counts()["drop"] == GRAPH.num_nodes * 2 * 2

    def test_harness_restores_the_outer_context(self):
        assert current() is None
        execute_with_faults(counter(1), GRAPH, FaultPlan(), max_rounds=1)
        assert current() is None

    def test_metrics_without_context_report_zero_faults(self):
        result = execute(counter(2), GRAPH, max_rounds=2)
        assert result.metrics.faults_injected == 0
