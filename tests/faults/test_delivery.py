"""Tests for the faulty delivery decorators (``repro.faults.delivery``).

``FaultyDelivery`` must be a *decorator* in the strict sense: with an
empty plan it reproduces the wrapped discipline's inboxes byte for
byte, and with a nonzero plan every deviation is scheduled, recorded,
and replayable.
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import FaultInjectionError
from repro.faults import (
    LOST,
    CorruptingTape,
    CrashDiscipline,
    FaultPlan,
    FaultyDelivery,
    LostMessage,
)
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.engine import BroadcastDelivery, PortDelivery, execute
from repro.runtime.port_model import PortAwareAlgorithm
from repro.runtime.tape import FixedTape


def ledger_algorithm(rounds_needed: int):
    """Broadcast algorithm whose output is the full per-round inbox log."""
    return FunctionAlgorithm(
        init=lambda label, deg: ((), 0),
        msg=lambda s: s[1],
        step=lambda s, received, b: (s[0] + (received,), s[1] + 1),
        out=lambda s: s[0] if s[1] >= rounds_needed else None,
        bits_per_round=0,
        name="inbox-ledger",
    )


class PortLedger(PortAwareAlgorithm):
    """Port algorithm whose output is the full per-round inbox log."""

    bits_per_round = 0
    name = "port-inbox-ledger"

    def __init__(self, rounds_needed: int) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        return ((), 0)

    def messages(self, state, degree: int):
        return [(state[1], port) for port in range(degree)]

    def transition(self, state, received, bits: str):
        return (state[0] + (tuple(repr(m) for m in received),), state[1] + 1)

    def output(self, state):
        return state[0] if state[1] >= self.rounds_needed else None


class TestLostSentinel:
    def test_singleton(self):
        assert LostMessage() is LOST
        assert repr(LOST) == "<LOST>"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(LOST)) is LOST


class TestWrapping:
    def test_only_known_disciplines_are_wrappable(self):
        class Exotic:
            name = "exotic"

        with pytest.raises(FaultInjectionError, match="Exotic"):
            FaultyDelivery(Exotic(), FaultPlan())

    def test_subclasses_are_wrappable(self):
        class MyPorts(PortDelivery):
            pass

        delivery = FaultyDelivery(MyPorts(), FaultPlan())
        assert delivery.inner.__class__ is MyPorts
        assert delivery.name == f"faulty-{MyPorts().name}"

    def test_accepts_plan_or_schedule(self):
        from repro.faults import FaultSchedule

        plan = FaultPlan(drop_rate=0.5)
        by_plan = FaultyDelivery(BroadcastDelivery(), plan)
        by_schedule = FaultyDelivery(BroadcastDelivery(), FaultSchedule(plan))
        assert by_plan.schedule.plan == by_schedule.schedule.plan


class TestBroadcastFaults:
    def test_empty_plan_reproduces_bare_inboxes(self):
        graph = with_uniform_input(cycle_graph(6))
        bare = execute(ledger_algorithm(4), graph, max_rounds=4)
        wrapped = execute(
            ledger_algorithm(4),
            graph,
            delivery=FaultyDelivery(BroadcastDelivery(), FaultPlan()),
            max_rounds=4,
        )
        assert bare.outputs == wrapped.outputs

    def test_total_drop_empties_every_multiset(self):
        graph = with_uniform_input(cycle_graph(5))
        delivery = FaultyDelivery(BroadcastDelivery(), FaultPlan(drop_rate=1.0))
        result = execute(ledger_algorithm(3), graph, delivery=delivery, max_rounds=3)
        for log in result.outputs.values():
            assert all(inbox == () for inbox in log)
        assert delivery.trace.counts()["drop"] == 3 * 2 * 5  # rounds*deg*n

    def test_total_duplication_doubles_every_multiset(self):
        graph = with_uniform_input(cycle_graph(5))
        delivery = FaultyDelivery(
            BroadcastDelivery(), FaultPlan(duplicate_rate=1.0)
        )
        result = execute(ledger_algorithm(2), graph, delivery=delivery, max_rounds=2)
        for log in result.outputs.values():
            assert all(len(inbox) == 4 for inbox in log)  # degree 2, doubled

    def test_partial_drop_is_deterministic(self):
        graph = with_uniform_input(cycle_graph(8))
        plan = FaultPlan(plan_seed=3, drop_rate=0.3)

        def run():
            delivery = FaultyDelivery(BroadcastDelivery(), plan)
            result = execute(
                ledger_algorithm(5), graph, delivery=delivery, max_rounds=5
            )
            return result.outputs, delivery.trace.counts()

        assert run() == run()
        assert run()[1]["drop"] > 0


class TestPortFaults:
    def test_empty_plan_reproduces_bare_inboxes(self):
        graph = with_uniform_input(path_graph(5))
        bare = execute(PortLedger(3), graph, max_rounds=3)
        wrapped = execute(
            PortLedger(3),
            graph,
            delivery=FaultyDelivery(PortDelivery(), FaultPlan()),
            max_rounds=3,
        )
        assert bare.outputs == wrapped.outputs

    def test_drop_preserves_arity_with_lost_sentinel(self):
        graph = with_uniform_input(cycle_graph(4))
        delivery = FaultyDelivery(PortDelivery(), FaultPlan(drop_rate=1.0))
        result = execute(PortLedger(2), graph, delivery=delivery, max_rounds=2)
        for log in result.outputs.values():
            assert all(inbox == ("<LOST>", "<LOST>") for inbox in log)

    def test_reordering_permutes_but_keeps_payloads(self):
        graph = with_uniform_input(cycle_graph(6))
        plan = FaultPlan(plan_seed=13, reorder_rate=1.0)
        delivery = FaultyDelivery(PortDelivery(), plan)
        faulted = execute(PortLedger(4), graph, delivery=delivery, max_rounds=4)
        bare = execute(PortLedger(4), graph, max_rounds=4)
        assert delivery.trace.counts().get("reorder", 0) > 0
        assert faulted.outputs != bare.outputs
        for node in graph.nodes:
            for faulted_inbox, bare_inbox in zip(
                faulted.outputs[node], bare.outputs[node]
            ):
                assert sorted(faulted_inbox) == sorted(bare_inbox)


class TestCrashStop:
    def test_crashed_node_is_silenced_symmetrically(self):
        graph = with_uniform_input(cycle_graph(4))
        delivery = FaultyDelivery(BroadcastDelivery(), FaultPlan(crashes=((0, 2),)))
        result = execute(ledger_algorithm(3), graph, delivery=delivery, max_rounds=3)
        # Neighbors of node 0 hear both neighbors in round 1, then lose one.
        for neighbor in graph.neighbors(0):
            log = result.outputs[neighbor]
            assert len(log[0]) == 2
            assert len(log[1]) == 1 and len(log[2]) == 1
        # The crashed node's own clock keeps ticking: it still decides,
        # hearing everyone in round 1 and nobody afterwards.
        assert result.outputs[0][0] != () and result.outputs[0][1] == ()
        assert result.all_decided

    def test_crash_event_recorded_once_per_node(self):
        graph = with_uniform_input(cycle_graph(4))
        delivery = FaultyDelivery(BroadcastDelivery(), FaultPlan(crashes=((0, 1),)))
        execute(ledger_algorithm(5), graph, delivery=delivery, max_rounds=5)
        assert delivery.trace.counts()["crash"] == 1
        (event,) = delivery.trace.of_kind("crash")
        assert event.node == 0 and event.round == 1

    def test_crash_discipline_accepts_a_mapping(self):
        graph = with_uniform_input(path_graph(4))
        delivery = CrashDiscipline(PortDelivery(), {1: 2})
        result = execute(PortLedger(3), graph, delivery=delivery, max_rounds=3)
        assert delivery.schedule.plan == FaultPlan(crashes=((1, 2),))
        assert result.all_decided


class TestErrorPropagation:
    def test_output_already_set_keeps_round_context_through_wrapper(self):
        """Irrevocability violations raise with the same node/value/round
        context whether or not the delivery is wrapped — fault injection
        must not launder kernel errors."""
        from repro.exceptions import OutputAlreadySetError

        # Endpoints decide in round 1, then illegally change in round 2;
        # the middle node never decides, so the run cannot end early.
        flipper = FunctionAlgorithm(
            init=lambda label, deg: (deg, 0),
            msg=lambda s: s[1],
            step=lambda s, received, b: (s[0], s[1] + 1),
            out=lambda s: s[1] if s[0] == 1 and s[1] >= 1 else None,
            bits_per_round=0,
            name="flipper",
        )
        graph = with_uniform_input(path_graph(3))
        delivery = FaultyDelivery(BroadcastDelivery(), FaultPlan(drop_rate=1.0))
        with pytest.raises(
            OutputAlreadySetError, match=r"from 1 to 2 in round 2"
        ):
            execute(flipper, graph, delivery=delivery, max_rounds=3)

    def test_inner_delivery_errors_surface_unchanged(self):
        """A port-arity violation inside the wrapped discipline is the
        wrapped discipline's error, verbatim."""
        from repro.exceptions import RuntimeModelError

        class WrongArity(PortAwareAlgorithm):
            bits_per_round = 0
            name = "wrong-arity"

            def init_state(self, input_label, degree):
                return 0

            def messages(self, state, degree):
                return [0] * (degree + 1)

            def transition(self, state, received, bits):
                return state

            def output(self, state):
                return None

        graph = with_uniform_input(path_graph(3))
        delivery = FaultyDelivery(PortDelivery(), FaultPlan())
        with pytest.raises(RuntimeModelError):
            execute(WrongArity(), graph, delivery=delivery, max_rounds=2)


class TestCorruptingTape:
    def test_zero_rate_is_a_pass_through(self):
        tape = CorruptingTape(FixedTape("010101"), 0, FaultPlan())
        assert tape.draw(6) == "010101"

    def test_total_corruption_flips_every_bit(self):
        tape = CorruptingTape(FixedTape("0101"), 0, FaultPlan(corrupt_rate=1.0))
        assert tape.draw(4) == "1010"

    def test_flip_indices_are_absolute_across_draws(self):
        plan = FaultPlan(plan_seed=5, corrupt_rate=0.5)
        one_shot = CorruptingTape(FixedTape("0" * 12), "v", plan)
        chunked = CorruptingTape(FixedTape("0" * 12), "v", plan)
        assert one_shot.draw(12) == chunked.draw(5) + chunked.draw(7)

    def test_corrupt_events_carry_bit_indices(self):
        tape = CorruptingTape(FixedTape("0000"), "v", FaultPlan(corrupt_rate=1.0))
        tape.draw(4)
        events = tape._trace.of_kind("corrupt")
        assert [e.detail for e in events] == [(0,), (1,), (2,), (3,)]
        assert all(e.node == "v" for e in events)

    def test_remaining_delegates_to_the_inner_tape(self):
        tape = CorruptingTape(FixedTape("01"), 0, FaultPlan(corrupt_rate=1.0))
        assert tape.remaining(2)
        assert not tape.remaining(3)
