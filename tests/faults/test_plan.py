"""Tests for fault plans and schedules (``repro.faults.plan``).

A plan is a pure value; a schedule is a stateless oracle over it.  The
contract under test: validation rejects malformed plans, JSON
round-trips are exact, and every decision depends only on the plan and
the event's identity — never on query order or process state.
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import FaultInjectionError
from repro.faults import FaultPlan, FaultSchedule


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "field", ["drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_lie_in_unit_interval(self, field, bad):
        with pytest.raises(FaultInjectionError, match=field):
            FaultPlan(**{field: bad})

    def test_rate_endpoints_are_legal(self):
        FaultPlan(drop_rate=0.0, duplicate_rate=1.0)

    def test_crash_rounds_are_one_based(self):
        with pytest.raises(FaultInjectionError, match="crash round"):
            FaultPlan(crashes=((0, 0),))

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultInjectionError, match="last_round"):
            FaultPlan(first_round=5, last_round=2)
        with pytest.raises(FaultInjectionError, match="first_round"):
            FaultPlan(first_round=0)

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(drop_rate=0.01).is_empty
        assert not FaultPlan(crashes=((1, 3),)).is_empty
        # A window alone injects nothing.
        assert FaultPlan(first_round=2, last_round=9).is_empty

    def test_crash_round_lookup(self):
        plan = FaultPlan(crashes=((3, 4), ("v", 2)))
        assert plan.crash_round(3) == 4
        assert plan.crash_round("v") == 2
        assert plan.crash_round(99) is None


class TestFaultPlanValueSemantics:
    def test_equal_fields_mean_equal_plans(self):
        assert FaultPlan(plan_seed=7, drop_rate=0.1) == FaultPlan(
            plan_seed=7, drop_rate=0.1
        )
        assert hash(FaultPlan(plan_seed=7)) == hash(FaultPlan(plan_seed=7))

    def test_json_round_trip(self):
        plan = FaultPlan(
            plan_seed=41,
            drop_rate=0.1,
            duplicate_rate=0.05,
            reorder_rate=0.25,
            corrupt_rate=0.02,
            crashes=((3, 4), ((0, 1), 2)),  # includes a tuple-valued node
            first_round=2,
            last_round=9,
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_as_dict_is_json_safe(self):
        import json

        plan = FaultPlan(crashes=(((0, 1), 2),))
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.as_dict()))) == plan

    def test_plans_pickle(self):
        plan = FaultPlan(plan_seed=9, drop_rate=0.3, crashes=((1, 2),))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFaultSchedule:
    def test_decisions_are_repeatable_and_order_free(self):
        schedule = FaultSchedule(FaultPlan(plan_seed=5, drop_rate=0.3))
        first = [schedule.drops(r, "u", "v") for r in range(1, 50)]
        second = [schedule.drops(r, "u", "v") for r in reversed(range(1, 50))]
        assert first == list(reversed(second))
        assert any(first) and not all(first)

    def test_two_schedules_of_the_same_plan_agree(self):
        plan = FaultPlan(plan_seed=5, drop_rate=0.3, corrupt_rate=0.2)
        a, b = FaultSchedule(plan), FaultSchedule(plan)
        assert all(
            a.drops(r, 0, 1) == b.drops(r, 0, 1)
            and a.flips(0, r) == b.flips(0, r)
            for r in range(1, 100)
        )

    def test_plan_seed_changes_the_decisions(self):
        base = FaultSchedule(FaultPlan(plan_seed=0, drop_rate=0.5))
        other = FaultSchedule(FaultPlan(plan_seed=1, drop_rate=0.5))
        draws = [
            (base.drops(r, "u", "v"), other.drops(r, "u", "v"))
            for r in range(1, 100)
        ]
        assert any(a != b for a, b in draws)

    def test_zero_rate_never_fires_and_one_always_does(self):
        silent = FaultSchedule(FaultPlan(plan_seed=3))
        loud = FaultSchedule(
            FaultPlan(plan_seed=3, drop_rate=1.0, duplicate_rate=1.0)
        )
        for r in range(1, 30):
            assert not silent.drops(r, 0, 1)
            assert not silent.duplicates(r, 0, 1)
            assert not silent.flips(0, r)
            assert silent.reorder_permutation(r, 0, 4) is None
            assert loud.drops(r, 0, 1)
            assert loud.duplicates(r, 0, 1)

    def test_window_gates_rate_faults_but_not_crashes(self):
        schedule = FaultSchedule(
            FaultPlan(
                plan_seed=1,
                drop_rate=1.0,
                first_round=3,
                last_round=5,
                crashes=((7, 1),),
            )
        )
        assert [schedule.drops(r, 0, 1) for r in range(1, 8)] == [
            False, False, True, True, True, False, False,
        ]
        assert schedule.crashed(7, 1) and schedule.crashed(7, 6)

    def test_crashed_is_monotone_from_the_crash_round(self):
        schedule = FaultSchedule(FaultPlan(crashes=((2, 3),)))
        assert [schedule.crashed(2, r) for r in (1, 2, 3, 4)] == [
            False, False, True, True,
        ]
        assert not schedule.crashed(0, 99)

    def test_reorder_permutation_is_a_real_permutation(self):
        schedule = FaultSchedule(FaultPlan(plan_seed=2, reorder_rate=1.0))
        seen_nontrivial = False
        for r in range(1, 30):
            perm = schedule.reorder_permutation(r, "v", 5)
            if perm is None:
                continue  # identity draws are reported as None
            assert sorted(perm) == list(range(5))
            assert perm != list(range(5))
            seen_nontrivial = True
        assert seen_nontrivial

    def test_reorder_needs_degree_two(self):
        schedule = FaultSchedule(FaultPlan(plan_seed=2, reorder_rate=1.0))
        assert schedule.reorder_permutation(1, "v", 1) is None

    def test_drop_decisions_are_per_directed_edge(self):
        schedule = FaultSchedule(FaultPlan(plan_seed=11, drop_rate=0.5))
        forward = [schedule.drops(r, "u", "v") for r in range(1, 60)]
        backward = [schedule.drops(r, "v", "u") for r in range(1, 60)]
        assert forward != backward
