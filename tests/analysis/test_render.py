"""Tests for trace rendering."""

from __future__ import annotations

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.analysis.render import render_output_timeline, render_trace
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.runtime.simulation import run_randomized
from repro.runtime.trace import ExecutionTrace


def _run():
    g = with_uniform_input(cycle_graph(4))
    return run_randomized(AnonymousMISAlgorithm(), g, seed=2)


class TestRenderTrace:
    def test_contains_rounds_and_nodes(self):
        result = _run()
        text = render_trace(result.trace)
        assert "anonymous-mis" in text
        assert "round" in text
        for v in range(4):
            assert f"{v}" in text

    def test_max_rounds_truncation(self):
        result = _run()
        text = render_trace(result.trace, max_rounds=1)
        assert "more rounds" in text

    def test_empty_trace(self):
        text = render_trace(ExecutionTrace("nothing"))
        assert "no rounds" in text

    def test_long_payloads_abbreviated(self):
        result = _run()
        text = render_trace(result.trace)
        for line in text.splitlines():
            assert len(line) < 120


class TestOutputTimeline:
    def test_every_node_listed(self):
        result = _run()
        text = render_output_timeline(result.trace)
        assert text.count("node") == 4

    def test_rounds_ascending(self):
        result = _run()
        text = render_output_timeline(result.trace)
        rounds = [
            int(line.split("round")[1].split(":")[0])
            for line in text.splitlines()
            if "round" in line
        ]
        assert rounds == sorted(rounds)

    def test_empty(self):
        assert "no outputs" in render_output_timeline(ExecutionTrace("x"))
