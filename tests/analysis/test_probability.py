"""Tests for success-probability measurement."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.probability import measure_success_curve
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input


class TestSuccessCurve:
    def test_monotone_in_length(self):
        g = with_uniform_input(path_graph(3))
        curve = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[1, 2, 4, 8], samples_per_length=120
        )
        probabilities = [p for (_t, p) in curve.points]
        # More bits can only help; sampling noise stays within a margin.
        for earlier, later in zip(probabilities, probabilities[1:]):
            assert later >= earlier - 0.1

    def test_too_short_never_succeeds(self):
        g = with_uniform_input(cycle_graph(4))
        curve = measure_success_curve(
            TwoHopColoringAlgorithm(), g, lengths=[1, 2], samples_per_length=50
        )
        assert curve.probability_at(1) == 0.0
        assert curve.probability_at(2) == 0.0  # commits start at round 3

    def test_long_assignments_almost_surely_succeed(self):
        g = with_uniform_input(path_graph(3))
        curve = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[16], samples_per_length=100
        )
        assert curve.probability_at(16) >= 0.95

    def test_first_feasible_length(self):
        g = with_uniform_input(path_graph(2))
        curve = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[1, 2, 3, 8], samples_per_length=100
        )
        assert curve.first_feasible_length in (2, 3)

    def test_expected_trials(self):
        g = with_uniform_input(path_graph(2))
        curve = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[1, 8], samples_per_length=100
        )
        assert curve.expected_trials(1) == float("inf")
        assert 1.0 <= curve.expected_trials(8) <= 3.0

    def test_unknown_length_raises(self):
        g = with_uniform_input(path_graph(2))
        curve = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[4], samples_per_length=10
        )
        with pytest.raises(KeyError):
            curve.probability_at(5)

    def test_deterministic_for_seed(self):
        g = with_uniform_input(path_graph(3))
        a = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[4], samples_per_length=60, seed=5
        )
        b = measure_success_curve(
            AnonymousMISAlgorithm(), g, lengths=[4], samples_per_length=60, seed=5
        )
        assert a == b
