"""Tests for the analysis harness: stats, symmetry, sweeps."""

from __future__ import annotations

import pytest

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.stats import RunStats, aggregate
from repro.analysis.sweeps import SweepRow, format_table, standard_families
from repro.analysis.symmetry import (
    election_is_deterministically_impossible,
    view_class_profile,
)
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
    with_uniform_input,
)
from repro.runtime.simulation import run_randomized


class TestStats:
    def test_run_stats_of_execution(self):
        g = with_uniform_input(cycle_graph(4))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=0)
        stats = RunStats.of(g, result, bits_per_round=1)
        assert stats.decided
        assert stats.rounds == result.rounds
        assert stats.total_bits == result.rounds * 4
        assert stats.total_messages == result.rounds * 4

    def test_aggregate(self):
        g = with_uniform_input(cycle_graph(4))
        runs = [
            RunStats.of(g, run_randomized(TwoHopColoringAlgorithm(), g, seed=s), 1)
            for s in range(4)
        ]
        agg = aggregate(runs)
        assert agg.runs == 4
        assert agg.min_rounds <= agg.mean_rounds <= agg.max_rounds
        assert "rounds" in str(agg)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_message_size_accounted(self):
        g = with_uniform_input(cycle_graph(4))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=0)
        stats = RunStats.of(g, result, bits_per_round=1)
        # 2-hop coloring relays neighbor lists: messages are nontrivial.
        assert stats.max_message_chars > 10

    def test_round_distribution(self):
        from repro.analysis.stats import round_distribution

        dist = round_distribution([4, 5, 5, 6, 10])
        assert dist["min"] == 4.0
        assert dist["max"] == 10.0
        assert dist["p50"] == 5.0
        assert 4 <= dist["mean"] <= 10
        assert dist["p90"] >= dist["p50"]

    def test_round_distribution_single(self):
        from repro.analysis.stats import round_distribution

        dist = round_distribution([7])
        assert dist["min"] == dist["max"] == dist["p50"] == 7.0

    def test_round_distribution_empty_rejected(self):
        from repro.analysis.stats import round_distribution

        with pytest.raises(ValueError):
            round_distribution([])


class TestSymmetry:
    def test_uniform_cycle_fully_symmetric(self):
        profile = view_class_profile(with_uniform_input(cycle_graph(8)))
        assert profile.is_view_symmetric
        assert profile.collapse_ratio == 1 - 1 / 8
        assert election_is_deterministically_impossible(
            with_uniform_input(cycle_graph(8))
        )

    def test_path_partially_symmetric(self):
        g = with_uniform_input(path_graph(4))
        profile = view_class_profile(g)
        assert profile.num_classes == 2
        assert profile.class_sizes == (2, 2)
        assert election_is_deterministically_impossible(g)

    def test_asymmetric_graph_allows_election(self):
        # A path with distinct labels: all views distinct.
        g = path_graph(3).with_layer("input", {0: "a", 1: "b", 2: "c"})
        assert not election_is_deterministically_impossible(g)

    def test_petersen_symmetric(self):
        assert election_is_deterministically_impossible(
            with_uniform_input(petersen_graph())
        )

    def test_star_impossible_despite_distinct_center(self):
        # Center is unique, but the leaves collapse: still impossible.
        assert election_is_deterministically_impossible(
            with_uniform_input(star_graph(3))
        )


class TestSweeps:
    def test_standard_families_well_formed(self):
        from repro.problems.mis import MISProblem

        problem = MISProblem()
        for name, graph in standard_families(sizes=(4, 6), include_random=True):
            assert problem.is_instance(graph), name

    def test_format_table_alignment(self):
        rows = [
            SweepRow("case-a", {"x": 1, "y": 2.5}),
            SweepRow("case-bb", {"x": 10, "y": 0.123456}),
        ]
        table = format_table("My Table", ["x", "y"], rows)
        lines = table.splitlines()
        assert lines[0] == "My Table"
        assert "case-a" in table and "0.123" in table
        # All data lines have equal prefix alignment for the first column.
        header_line = lines[2]
        assert header_line.startswith("case")
