"""Tests for the k-hop coloring boundary (Section 1.2's remark)."""

from __future__ import annotations

import pytest

from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.khop_boundary import (
    lifted_khop_violation,
    uniform_cycle_cover,
)


class TestCycleCover:
    def test_cover_structure(self):
        covering = uniform_cycle_cover(3, 2)
        assert covering.factor.num_nodes == 3
        assert covering.product.num_nodes == 6
        assert covering.multiplicity == 2


class TestBoundary:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_hop_survives_lifting_but_three_hop_breaks(self, seed):
        """The heart of 'k = 2 is the boundary': lifting a 2-hop coloring
        execution from C3 to C6 stays 2-hop valid but collides at
        distance 3."""
        covering = uniform_cycle_cover(3, 2)
        violation = lifted_khop_violation(covering, seed=seed)
        assert violation.valid_up_to == 2
        assert not violation.violates(2)
        assert violation.violates(3)

    def test_larger_factor_same_story(self):
        covering = uniform_cycle_cover(5, 2)
        violation = lifted_khop_violation(covering, seed=1, max_k=6)
        # Colors repeat with period 5: valid up to 4 hops, breaks at 5.
        assert violation.valid_up_to == 4
        assert violation.violates(5)

    def test_one_hop_coloring_also_lifts_validly(self):
        """Lifted 1-hop colorings stay 1-hop valid (the lemma preserves
        adjacency-local constraints)."""
        covering = uniform_cycle_cover(3, 3)
        violation = lifted_khop_violation(
            covering, algorithm=VertexColoringAlgorithm(), seed=0
        )
        assert violation.valid_up_to >= 1
