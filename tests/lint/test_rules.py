"""Fixture-driven rule tests: every rule is exercised against minimal
positive (violating) and negative (conforming) code samples placed at
paths where the rule is in scope."""

from __future__ import annotations

import pytest

from tests.lint.conftest import rules_of

# ---------------------------------------------------------------------------
# DET001 — nondeterminism sources
# ---------------------------------------------------------------------------

DET001_POSITIVE = [
    ("module-random", "import random\nx = random.random()\n"),
    ("module-randint", "import random\nx = random.randint(1, 6)\n"),
    ("from-import", "from random import choice\nx = choice([1, 2])\n"),
    ("aliased", "import random as rnd\nx = rnd.getrandbits(8)\n"),
    ("unseeded-Random", "import random\nrng = random.Random()\n"),
    ("system-random", "import random\nrng = random.SystemRandom()\n"),
    ("secrets", "import secrets\nx = secrets.token_bytes(8)\n"),
    ("uuid4", "import uuid\nx = uuid.uuid4()\n"),
    ("urandom", "import os\nx = os.urandom(4)\n"),
    ("wall-clock", "import time\nx = time.time()\n"),
    ("perf-counter", "from time import perf_counter\nx = perf_counter()\n"),
    (
        "datetime-now",
        "import datetime\nx = datetime.datetime.now()\n",
    ),
]

DET001_NEGATIVE = [
    ("seeded-Random", "import random\nrng = random.Random(42)\n"),
    ("seeded-kw", "import random\nrng = random.Random(x=1)\n"),
    ("instance-method", "rng = get_rng()\nx = rng.random()\n"),
    ("uuid5", "import uuid\nx = uuid.uuid5(uuid.NAMESPACE_DNS, 'a')\n"),
    ("hashlib", "import hashlib\nx = hashlib.sha256(b'x').hexdigest()\n"),
]


@pytest.mark.parametrize("name,source", DET001_POSITIVE, ids=[n for n, _ in DET001_POSITIVE])
def test_det001_detects(lint_tree, name, source):
    report = lint_tree({"src/repro/core/sample.py": source}, select=["DET001"])
    assert rules_of(report.findings) == ["DET001"], report.render()


@pytest.mark.parametrize("name,source", DET001_NEGATIVE, ids=[n for n, _ in DET001_NEGATIVE])
def test_det001_allows(lint_tree, name, source):
    report = lint_tree({"src/repro/core/sample.py": source}, select=["DET001"])
    assert report.findings == [], report.render()


def test_det001_exempts_tape_layer_and_benchmarks(lint_tree):
    source = "import random\nx = random.getrandbits(1)\n"
    report = lint_tree(
        {
            "src/repro/runtime/tape.py": source,
            "benchmarks/bench_sample.py": "import time\nt = time.perf_counter()\n",
        },
        select=["DET001"],
    )
    assert report.findings == [], report.render()


def test_det001_examples_clock_exempt_but_entropy_banned(lint_tree):
    report = lint_tree(
        {
            "examples/demo.py": (
                "import time\nimport random\n"
                "t = time.perf_counter()\n"  # display timing: exempt
                "x = random.random()\n"  # entropy: still banned
            )
        },
        select=["DET001"],
    )
    assert [(f.rule, f.line) for f in report.findings] == [("DET001", 4)]


# ---------------------------------------------------------------------------
# DET002 — unordered iteration into canonical artifacts
# ---------------------------------------------------------------------------

DET002_POSITIVE = [
    ("tuple-of-set-call", "def f(xs):\n    return tuple(set(xs))\n"),
    ("list-of-values", "def f(d):\n    return list(d.values())\n"),
    ("tuple-of-items", "def f(d):\n    return tuple(d.items())\n"),
    ("enumerate-keys", "def f(d):\n    return dict(enumerate(d.keys()))\n"),
    ("join-set-display", "def f(a, b):\n    return ','.join({a, b})\n"),
    (
        "genexp-over-values",
        "def f(d):\n    return tuple(str(v) for v in d.values())\n",
    ),
    (
        "listcomp-over-set",
        "def f(xs):\n    return [x + 1 for x in set(xs)]\n",
    ),
    (
        "for-over-set-call",
        "def f(xs):\n    out = []\n    for x in set(xs):\n        out.append(x)\n    return out\n",
    ),
]

DET002_NEGATIVE = [
    ("sorted-set", "def f(xs):\n    return tuple(sorted(set(xs)))\n"),
    (
        "sorted-values",
        "def f(d):\n    return tuple(sorted(d.values()))\n",
    ),
    (
        "sorted-genexp-over-set",
        "def f(xs):\n    return sorted(x + 1 for x in set(xs))\n",
    ),
    ("len-of-set", "def f(xs):\n    return len(set(xs))\n"),
    ("empty-set", "def f():\n    return list(set())\n"),
    ("list-of-list", "def f(xs):\n    return list(list(xs))\n"),
    (
        "plain-loop-over-items",
        # Building a dict from .items() is order-insensitive; plain
        # loops over dict views are deliberately not flagged.
        "def f(d):\n    out = {}\n    for k, v in d.items():\n        out[k] = v\n    return out\n",
    ),
    (
        "min-over-values",
        "def f(d):\n    return min(d.values())\n",
    ),
]


@pytest.mark.parametrize("name,source", DET002_POSITIVE, ids=[n for n, _ in DET002_POSITIVE])
def test_det002_detects(lint_tree, name, source):
    report = lint_tree({"src/repro/views/sample.py": source}, select=["DET002"])
    assert rules_of(report.findings) == ["DET002"], report.render()


@pytest.mark.parametrize("name,source", DET002_NEGATIVE, ids=[n for n, _ in DET002_NEGATIVE])
def test_det002_allows(lint_tree, name, source):
    report = lint_tree({"src/repro/views/sample.py": source}, select=["DET002"])
    assert report.findings == [], report.render()


def test_det002_only_in_canonical_layers(lint_tree):
    source = "def f(d):\n    return list(d.values())\n"
    report = lint_tree(
        {"src/repro/experiments/sample.py": source}, select=["DET002"]
    )
    assert report.findings == [], report.render()


def test_det002_one_finding_per_construct(lint_tree):
    # The sink call and its comprehension argument must not double-report.
    source = "def f(d):\n    return tuple(v for v in {1, 2})\n"
    report = lint_tree({"src/repro/factor/sample.py": source}, select=["DET002"])
    assert len(report.findings) == 1, report.render()


# ---------------------------------------------------------------------------
# DET003 — object identity in algorithm-visible code
# ---------------------------------------------------------------------------


def test_det003_detects_id(lint_tree):
    source = "def transition(state, received, bits):\n    return id(state)\n"
    report = lint_tree(
        {"src/repro/algorithms/sample.py": source}, select=["DET003"]
    )
    assert rules_of(report.findings) == ["DET003"]


def test_det003_detects_object_hash(lint_tree):
    source = "def key(node):\n    return object.__hash__(node)\n"
    report = lint_tree(
        {"src/repro/algorithms/sample.py": source}, select=["DET003"]
    )
    assert rules_of(report.findings) == ["DET003"]


def test_det003_out_of_scope_elsewhere(lint_tree):
    # id() is legitimate interning machinery in the view layer.
    source = "def intern_key(children):\n    return tuple(map(id, children))\n"
    report = lint_tree({"src/repro/views/sample.py": source}, select=["DET003"])
    assert report.findings == [], report.render()


def test_det003_allows_shadowed_id(lint_tree):
    source = "def f(records):\n    return [r.id() for r in records]\n"
    report = lint_tree(
        {"src/repro/algorithms/sample.py": source}, select=["DET003"]
    )
    assert report.findings == [], report.render()


# ---------------------------------------------------------------------------
# ENG001 — engine boundary
# ---------------------------------------------------------------------------

ENG001_POSITIVE = [
    (
        "construct-delivery",
        "from repro.runtime.engine import BroadcastDelivery\n"
        "d = BroadcastDelivery()\n",
    ),
    (
        "construct-engine",
        "from repro.runtime import ExecutionEngine\n"
        "e = ExecutionEngine(a, g, t, d)\n",
    ),
    (
        "construct-scheduler",
        "import repro.runtime.scheduler\n"
        "s = repro.runtime.scheduler.SynchronousScheduler(a, g)\n",
    ),
    (
        "drive-transition",
        "def emulate(algorithm, state):\n"
        "    return algorithm.transition(state, (), '')\n",
    ),
    (
        "poke-internals",
        "def peek(engine):\n    return engine._states\n",
    ),
]

ENG001_NEGATIVE = [
    (
        "execute-entry-point",
        "from repro.runtime.engine import execute\n"
        "result = execute(algorithm, graph, seed=7)\n",
    ),
    (
        "super-delegation",
        "class Counting(Base):\n"
        "    def transition(self, state, received, bits):\n"
        "        return super().transition(state, received, bits)\n",
    ),
    (
        "own-private-state",
        "class Tracker:\n"
        "    def __init__(self):\n"
        "        self._states = {}\n"
        "    def note(self, k, v):\n"
        "        self._states[k] = v\n",
    ),
]


@pytest.mark.parametrize("name,source", ENG001_POSITIVE, ids=[n for n, _ in ENG001_POSITIVE])
def test_eng001_detects(lint_tree, name, source):
    report = lint_tree({"src/repro/analysis/sample.py": source}, select=["ENG001"])
    assert "ENG001" in rules_of(report.findings), report.render()


@pytest.mark.parametrize("name,source", ENG001_NEGATIVE, ids=[n for n, _ in ENG001_NEGATIVE])
def test_eng001_allows(lint_tree, name, source):
    report = lint_tree({"src/repro/analysis/sample.py": source}, select=["ENG001"])
    assert report.findings == [], report.render()


def test_eng001_exempts_runtime_and_faults(lint_tree):
    source = (
        "from repro.runtime.engine import BroadcastDelivery\n"
        "d = BroadcastDelivery()\n"
    )
    report = lint_tree(
        {
            "src/repro/runtime/sample.py": source,
            "src/repro/faults/sample.py": source,
        },
        select=["ENG001"],
    )
    assert report.findings == [], report.render()


# ---------------------------------------------------------------------------
# WALL001 — exact arithmetic in canonical encoders
# ---------------------------------------------------------------------------

WALL001_POSITIVE = [
    ("float-literal", "SCALE = 0.5\n"),
    ("float-call", "def f(x):\n    return float(x)\n"),
    ("true-division", "def f(a, b):\n    return a / b\n"),
    ("clock", "import time\ndef f():\n    return time.time()\n"),
]

WALL001_NEGATIVE = [
    ("floor-division", "def f(a, b):\n    return a // b\n"),
    ("int-arith", "def f(a, b):\n    return a * b + 1\n"),
    ("string-encoding", "def f(xs):\n    return ','.join(sorted(xs))\n"),
]


@pytest.mark.parametrize("name,source", WALL001_POSITIVE, ids=[n for n, _ in WALL001_POSITIVE])
def test_wall001_detects(lint_tree, name, source):
    report = lint_tree(
        {"src/repro/graphs/encoding.py": source}, select=["WALL001"]
    )
    assert rules_of(report.findings) == ["WALL001"], report.render()


@pytest.mark.parametrize("name,source", WALL001_NEGATIVE, ids=[n for n, _ in WALL001_NEGATIVE])
def test_wall001_allows(lint_tree, name, source):
    report = lint_tree(
        {"src/repro/graphs/encoding.py": source}, select=["WALL001"]
    )
    assert report.findings == [], report.render()


def test_wall001_out_of_scope_for_analysis_layer(lint_tree):
    # Probabilities and timing summaries legitimately use floats.
    source = "def mean(xs):\n    return sum(xs) / len(xs)\n"
    report = lint_tree(
        {"src/repro/analysis/sample.py": source}, select=["WALL001"]
    )
    assert report.findings == [], report.render()


# ---------------------------------------------------------------------------
# Framework: parse errors
# ---------------------------------------------------------------------------


def test_unparseable_file_is_a_finding(lint_tree):
    report = lint_tree({"src/repro/core/broken.py": "def f(:\n"})
    assert rules_of(report.findings) == ["LINT000"]
    assert report.exit_code == 1
