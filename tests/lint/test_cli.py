"""CLI contract: stable exit codes, JSON report schema, flags."""

from __future__ import annotations

import json

import pytest

from repro.lint.__main__ import main
from repro.lint.analyzer import REPORT_SCHEMA_VERSION
from repro.lint.registry import known_rule_ids

VIOLATING = "import random\nx = random.random()\n"
CLEAN = "x = 1\n"


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", CLEAN)
    code = main([str(tmp_path / "src"), "--root", str(tmp_path)])
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", VIOLATING)
    code = main([str(tmp_path / "src"), "--root", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "src/repro/core/sample.py:2" in out


def test_exit_two_on_usage_errors(tmp_path, capsys):
    assert main(["--root", str(tmp_path / "nowhere")]) == 2
    assert main([str(tmp_path / "missing.py"), "--root", str(tmp_path)]) == 2
    assert main(["--select", "NOPE999", "--list-rules"]) == 2
    _write(tmp_path, "src/x.py", CLEAN)
    assert (
        main([str(tmp_path), "--root", str(tmp_path), "--write-baseline"]) == 2
    )
    bad = _write(tmp_path, "bad_baseline.json", "{broken")
    assert (
        main([str(tmp_path), "--root", str(tmp_path), "--baseline", str(bad)])
        == 2
    )
    capsys.readouterr()  # drain


def test_warn_only_reports_but_passes(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", VIOLATING)
    code = main(
        [str(tmp_path / "src"), "--root", str(tmp_path), "--warn-only"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "DET001" in out and "warn-only" in out


def test_json_report_schema(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", VIOLATING)
    out_file = tmp_path / "report.json"
    code = main(
        [
            str(tmp_path / "src"),
            "--root",
            str(tmp_path),
            "--json",
            str(out_file),
        ]
    )
    assert code == 1
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["schema_version"] == REPORT_SCHEMA_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["exit_code"] == 1
    assert set(payload["counts"]) == {
        "error",
        "warning",
        "baselined",
        "suppressed",
        "files",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
        "fingerprint",
        "baselined",
        "witness",
    }
    assert finding["rule"] == "DET001"
    assert finding["witness"] == []  # syntactic rules carry no chain
    assert payload["call_graph"] is None  # only with --call-graph
    assert finding["path"] == "src/repro/core/sample.py"
    assert {r["id"] for r in payload["rules"]} >= {"DET001", "DET002"}
    assert payload["baseline"] == {"path": None, "expired": []}


def test_json_to_stdout(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", CLEAN)
    code = main([str(tmp_path / "src"), "--root", str(tmp_path), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []


def test_write_baseline_roundtrip_via_cli(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/sample.py", VIOLATING)
    baseline = tmp_path / "baseline.json"
    args = [str(tmp_path / "src"), "--root", str(tmp_path)]
    assert main([*args, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([*args, "--baseline", str(baseline)]) == 0
    # Without the baseline the violation still fails: nothing was fixed.
    assert main(args) == 1
    capsys.readouterr()


def test_select_filters_rules(tmp_path, capsys):
    _write(
        tmp_path,
        "src/repro/views/sample.py",
        "import random\nx = random.random()\ny = list({1: 2}.values())\n",
    )
    code = main(
        [
            str(tmp_path / "src"),
            "--root",
            str(tmp_path),
            "--select",
            "DET002",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "DET002" in out and "DET001" not in out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in known_rule_ids():
        assert rule_id in out


@pytest.mark.parametrize("rule_id", ["DET001", "DET002", "DET003", "ENG001", "WALL001"])
def test_catalogue_covers_issue_rules(rule_id):
    assert rule_id in known_rule_ids()
