"""Suppression comments: same-line, standalone-above, file-wide, and
the unused-suppression warning (LINT001)."""

from __future__ import annotations

from tests.lint.conftest import rules_of

VIOLATION = "import random\nx = random.random()"


def test_same_line_suppression(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "import random\n"
                "x = random.random()  # repro-lint: disable=DET001 -- test fixture\n"
            )
        }
    )
    assert report.findings == [], report.render()
    assert report.suppressed_count == 1


def test_standalone_comment_suppresses_next_line(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "import random\n"
                "# repro-lint: disable=DET001 -- justified for the test\n"
                "x = random.random()\n"
            )
        }
    )
    assert report.findings == [], report.render()


def test_trailing_comment_does_not_cover_next_line(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "import random\n"
                "y = 1  # repro-lint: disable=DET001\n"
                "x = random.random()\n"
            )
        }
    )
    # The violation on line 3 is NOT covered (the comment trails code on
    # line 2), and the suppression itself is unused.
    assert sorted(rules_of(report.findings)) == ["DET001", "LINT001"]


def test_suppression_is_rule_specific(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "import random\n"
                "x = random.random()  # repro-lint: disable=DET002\n"
            )
        },
        select=["DET001"],
    )
    assert rules_of(report.findings) == ["DET001"]


def test_disable_all_on_line(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "import random\n"
                "x = random.random()  # repro-lint: disable=all\n"
            )
        },
        select=["DET001"],
    )
    assert report.findings == [], report.render()


def test_disable_file(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "# repro-lint: disable-file=DET001 -- generated sample\n"
                "import random\n"
                "x = random.random()\n"
                "y = random.randint(1, 2)\n"
            )
        }
    )
    assert report.findings == [], report.render()
    assert report.suppressed_count == 2


def test_multiple_rules_one_comment(lint_tree):
    report = lint_tree(
        {
            "src/repro/views/sample.py": (
                "import random\n"
                "x = list({random.random()}.values())  "
                "# repro-lint: disable=DET001,DET002\n"
            )
        },
        select=["DET001", "DET002"],
    )
    assert report.findings == [], report.render()


def test_unused_suppression_is_warned(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "x = 1  # repro-lint: disable=DET001 -- nothing here\n"
            )
        }
    )
    assert rules_of(report.findings) == ["LINT001"]
    # Warnings never fail the gate.
    assert report.exit_code == 0


def test_unused_suppression_silent_on_filtered_runs(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                "x = 1  # repro-lint: disable=DET002\n"
            )
        },
        select=["DET001"],
    )
    assert report.findings == [], report.render()


def test_suppression_comment_inside_string_is_inert(lint_tree):
    report = lint_tree(
        {
            "src/repro/core/sample.py": (
                'DOC = "# repro-lint: disable=DET001"\n'
                "import random\n"
                "x = random.random()\n"
            )
        },
        select=["DET001"],
    )
    assert rules_of(report.findings) == ["DET001"]
