"""The whole-program call graph: resolution machinery and coverage.

Synthetic trees pin each resolution path (aliased imports, re-exports,
``self``/``super()``/constructor-typed receivers, decorated defs, the
unique-method-name heuristic and its builtin-attr guard); the final
test builds the graph over the *real* ``src/repro`` tree and pins the
coverage contract: ≥95% of non-dunder defs are graph nodes, and every
call the resolver gives up on is recorded, never dropped.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.analyzer import ModuleContext
from repro.lint.astutil import ImportMap
from repro.lint.flow.callgraph import build_call_graph, module_name_of

REPO_ROOT = Path(__file__).resolve().parents[2]


def _module(relpath: str, source: str, base: Path) -> ModuleContext:
    tree = ast.parse(source)
    return ModuleContext(
        path=base / relpath,
        relpath=relpath,
        source=source,
        tree=tree,
        imports=ImportMap(tree),
        lines=source.splitlines(),
    )


def graph_of(files: dict, base: Path = Path("/synthetic")):
    return build_call_graph(
        [_module(relpath, source, base) for relpath, source in files.items()]
    )


def test_module_name_of():
    assert module_name_of("src/repro/views/view_tree.py") == "repro.views.view_tree"
    assert module_name_of("src/repro/views/__init__.py") == "repro.views"
    assert module_name_of("tests/test_x.py") is None
    assert module_name_of("src/repro/not-a-module.py") is None


def test_aliased_import_resolution():
    graph = graph_of(
        {
            "src/repro/core/util.py": "def helper():\n    return 1\n",
            "src/repro/core/driver.py": (
                "import repro.core.util as u\n"
                "def run():\n"
                "    return u.helper()\n"
            ),
        }
    )
    assert ("repro.core.driver.run", "repro.core.util.helper") in graph.edges


def test_package_reexport_resolution():
    graph = graph_of(
        {
            "src/repro/views/__init__.py": (
                "from repro.views.impl import thing\n"
            ),
            "src/repro/views/impl.py": "def thing():\n    return 0\n",
            "src/repro/core/use.py": (
                "from repro.views import thing\n"
                "def run():\n"
                "    return thing()\n"
            ),
        }
    )
    assert ("repro.core.use.run", "repro.views.impl.thing") in graph.edges


def test_self_method_resolution():
    graph = graph_of(
        {
            "src/repro/core/cls.py": (
                "class Worker:\n"
                "    def step(self):\n"
                "        return self.scan()\n"
                "    def scan(self):\n"
                "        return 1\n"
            ),
        }
    )
    assert (
        "repro.core.cls.Worker.step",
        "repro.core.cls.Worker.scan",
    ) in graph.edges


def test_super_delegation():
    graph = graph_of(
        {
            "src/repro/core/base.py": (
                "class Base:\n"
                "    def setup(self):\n"
                "        return 0\n"
            ),
            "src/repro/core/child.py": (
                "from repro.core.base import Base\n"
                "class Child(Base):\n"
                "    def setup(self):\n"
                "        return super().setup() + 1\n"
            ),
        }
    )
    assert (
        "repro.core.child.Child.setup",
        "repro.core.base.Base.setup",
    ) in graph.edges


def test_inherited_method_through_base_chain():
    graph = graph_of(
        {
            "src/repro/core/chain.py": (
                "class A:\n"
                "    def deep(self):\n"
                "        return 0\n"
                "class B(A):\n"
                "    pass\n"
                "class C(B):\n"
                "    def go(self):\n"
                "        return self.deep()\n"
            ),
        }
    )
    assert (
        "repro.core.chain.C.go",
        "repro.core.chain.A.deep",
    ) in graph.edges


def test_constructor_typed_local():
    graph = graph_of(
        {
            "src/repro/core/make.py": (
                "class Engine:\n"
                "    def spin(self):\n"
                "        return 1\n"
                "def run():\n"
                "    e = Engine()\n"
                "    return e.spin()\n"
            ),
        }
    )
    assert ("repro.core.make.run", "repro.core.make.Engine") in graph.edges
    assert (
        "repro.core.make.run",
        "repro.core.make.Engine.spin",
    ) in graph.edges


def test_decorated_defs_are_nodes():
    graph = graph_of(
        {
            "src/repro/core/deco.py": (
                "import functools\n"
                "class Box:\n"
                "    @staticmethod\n"
                "    def build():\n"
                "        return Box()\n"
                "@functools.lru_cache(maxsize=None)\n"
                "def cached(x):\n"
                "    return x\n"
                "def run():\n"
                "    return cached(1)\n"
            ),
        }
    )
    assert "repro.core.deco.Box.build" in graph.functions
    assert graph.functions["repro.core.deco.Box.build"].is_static
    assert "repro.core.deco.cached" in graph.functions
    assert ("repro.core.deco.run", "repro.core.deco.cached") in graph.edges


def test_nested_defs_are_nodes_not_methods():
    graph = graph_of(
        {
            "src/repro/core/nest.py": (
                "class Outer:\n"
                "    def method(self):\n"
                "        def closure():\n"
                "            return 1\n"
                "        return closure()\n"
            ),
        }
    )
    nested = graph.functions["repro.core.nest.Outer.method.closure"]
    assert nested.cls is None  # a closure, not a method of Outer
    assert "closure" not in graph.classes.get("repro.core.nest.Outer").methods


def test_unique_method_name_heuristic():
    graph = graph_of(
        {
            "src/repro/core/heur.py": (
                "class Only:\n"
                "    def frobnicate(self):\n"
                "        return 1\n"
                "def run(obj):\n"
                "    return obj.frobnicate()\n"
            ),
        }
    )
    assert (
        "repro.core.heur.run",
        "repro.core.heur.Only.frobnicate",
    ) in graph.edges


def test_heuristic_skips_builtin_container_attrs():
    # One program class defines `append`, but `pool.append(...)` on an
    # untyped receiver is almost certainly a list — must NOT bind.
    graph = graph_of(
        {
            "src/repro/core/store.py": (
                "class Store:\n"
                "    def append(self, row):\n"
                "        return row\n"
                "def run(pool):\n"
                "    pool.append(1)\n"
            ),
        }
    )
    assert (
        "repro.core.store.run",
        "repro.core.store.Store.append",
    ) not in graph.edges


def test_ambiguous_calls_recorded_with_candidates():
    graph = graph_of(
        {
            "src/repro/core/amb.py": (
                "class A:\n"
                "    def zap(self):\n"
                "        return 1\n"
                "class B:\n"
                "    def zap(self):\n"
                "        return 2\n"
                "def run(obj):\n"
                "    return obj.zap()\n"
            ),
        }
    )
    (entry,) = [a for a in graph.ambiguous if a["caller"] == "repro.core.amb.run"]
    assert set(entry["candidates"]) == {
        "repro.core.amb.A.zap",
        "repro.core.amb.B.zap",
    }


def test_unresolved_calls_recorded_never_dropped():
    graph = graph_of(
        {
            "src/repro/core/dyn.py": (
                "TABLE = {}\n"
                "def run(k, x):\n"
                "    fn = TABLE[k]\n"
                "    return fn(x)\n"
            ),
        }
    )
    names = [u["name"] for u in graph.unresolved]
    assert "fn" in names


def test_call_graph_dump_schema():
    graph = graph_of(
        {
            "src/repro/core/util.py": (
                "def helper():\n"
                "    return 1\n"
                "def run():\n"
                "    return helper()\n"
            ),
        }
    )
    dump = graph.as_dict()
    assert dump["schema_version"] == 1
    assert dump["stats"]["functions"] == 2
    assert ["repro.core.util.run", "repro.core.util.helper"] in dump["edges"]
    qualnames = {n["qualname"] for n in dump["nodes"]}
    assert qualnames == {"repro.core.util.helper", "repro.core.util.run"}


def _real_tree_modules() -> list:
    modules = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(REPO_ROOT).as_posix()
        source = path.read_text(encoding="utf-8")
        modules.append(_module(relpath, source, REPO_ROOT))
    return modules


def test_real_tree_def_coverage():
    """≥95% of non-dunder defs in src/repro are call-graph nodes, and
    no call site disappears: unresolved/ambiguous are recorded."""
    graph = build_call_graph(_real_tree_modules())
    assert graph.nondunder_def_count > 300  # sanity: the tree is large
    nondunder_nodes = sum(
        1
        for fi in graph.functions.values()
        if not (
            fi.node.name.startswith("__") and fi.node.name.endswith("__")
        )
    )
    coverage = nondunder_nodes / graph.nondunder_def_count
    assert coverage >= 0.95, f"call-graph def coverage {coverage:.1%}"
    stats = graph.stats()
    assert stats["unresolved_calls"] == len(graph.unresolved)
    assert stats["ambiguous_calls"] == len(graph.ambiguous)
    # Resolution actually happened: the edge set is substantial.
    assert stats["edges"] > 500
