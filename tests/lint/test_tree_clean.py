"""The analyzer's own acceptance gate, enforced from the tier-1 suite:
the real tree is clean (no new findings over the shipped baseline) and
every suppression in it is used and justified."""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint
from repro.lint.baseline import Baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_tree_is_invariant_clean():
    paths = [REPO_ROOT / p for p in ("src", "benchmarks", "examples")]
    baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
    report = run_lint(paths, REPO_ROOT, baseline=baseline)
    assert report.exit_code == 0, "\n" + report.render()
    # Warnings (unused suppressions) must not rot in the tree either.
    assert report.counts["warning"] == 0, "\n" + report.render()
    # Stale baseline entries must be pruned, keeping it honest.
    assert report.expired_baseline == [], "\n" + report.render()


def test_every_suppression_carries_a_justification():
    """Policy (docs/LINT.md): a disable comment either carries its own
    `-- reason` or sits next to an explanatory comment line."""
    from repro.lint.analyzer import _scan_suppressions

    for path in (REPO_ROOT / "src").rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        for suppression in _scan_suppressions(source):
            line = lines[suppression.line - 1]
            has_inline_reason = "--" in line.split("repro-lint:", 1)[1]
            neighborhood = lines[max(0, suppression.line - 4) : suppression.line - 1]
            has_comment_above = any(
                s.lstrip().startswith("#") for s in neighborhood
            )
            assert has_inline_reason or has_comment_above, (
                f"{path}:{suppression.line}: suppression without justification"
            )
