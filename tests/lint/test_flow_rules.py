"""Regression fixtures for the interprocedural FLOW/ANON/PURE rules.

Each fixture is a minimal synthetic tree reproducing one class of
violation the flow analysis must catch — including the historical
``id()``-keyed BFS bug class the syntactic rules could not see (the
identity never appears on the same line as the sink).  Sanitized twins
pin the other direction: the rules must NOT fire once the flow passes
through ``sorted()``, the tape layer, or stays out of canonical sinks.
"""

from __future__ import annotations

import json

from tests.lint.conftest import rules_of

#: A minimal canonical-encoder module; its qualnames land exactly on
#: the sink table (module path decides, not file contents).
ENCODERS = """\
def canonical_bytes(obj):
    return repr(obj).encode()


def encode_state(value):
    return canonical_bytes(value)
"""

ALGORITHM_BASE = """\
class AnonymousAlgorithm:
    pass
"""


def test_flow001_entropy_laundered_through_helper(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": ENCODERS,
            "src/repro/core/pipeline.py": (
                "import time\n"
                "\n"
                "from repro.artifacts.encoders import encode_state\n"
                "\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
                "\n"
                "\n"
                "def run():\n"
                "    return encode_state(stamp())\n"
            ),
        },
        select=["FLOW"],
    )
    assert rules_of(report.findings) == ["FLOW001"]
    (finding,) = report.findings
    assert finding.path == "src/repro/core/pipeline.py"
    assert "clock" in finding.message
    # The witness chain proves the path: source, helper hop, sink.
    assert any("time.time()" in hop for hop in finding.witness)
    assert any("stamp" in hop for hop in finding.witness)
    assert "encode_state" in finding.witness[-1]


def test_flow001_clock_into_algorithm_state(lint_tree):
    report = lint_tree(
        {
            "src/repro/runtime/algorithm.py": ALGORITHM_BASE,
            "src/repro/core/alg.py": (
                "import time\n"
                "\n"
                "from repro.runtime.algorithm import AnonymousAlgorithm\n"
                "\n"
                "\n"
                "class TimedAlgorithm(AnonymousAlgorithm):\n"
                "    def transition(self, state, received, bits):\n"
                "        return (state, time.monotonic())\n"
            ),
        },
        select=["FLOW001"],
    )
    assert rules_of(report.findings) == ["FLOW001"]
    assert "algorithm state" in report.findings[0].message


def test_flow002_unordered_iteration_reaches_encoder(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": ENCODERS,
            "src/repro/core/collect.py": (
                "from repro.artifacts.encoders import encode_state\n"
                "\n"
                "\n"
                "def run(xs):\n"
                "    order = [x for x in set(xs)]\n"
                "    return encode_state(order)\n"
            ),
        },
        select=["FLOW"],
    )
    assert rules_of(report.findings) == ["FLOW002"]
    assert any("set(...)" in hop for hop in report.findings[0].witness)


def test_flow002_sorted_sanitizes(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": ENCODERS,
            "src/repro/core/collect.py": (
                "from repro.artifacts.encoders import encode_state\n"
                "\n"
                "\n"
                "def run(xs):\n"
                "    order = sorted(set(xs))\n"
                "    return encode_state(order)\n"
            ),
        },
        select=["FLOW"],
    )
    assert report.findings == []


def test_anon001_identity_returned_as_algorithm_state(lint_tree):
    report = lint_tree(
        {
            "src/repro/runtime/algorithm.py": ALGORITHM_BASE,
            "src/repro/core/alg.py": (
                "from repro.runtime.algorithm import AnonymousAlgorithm\n"
                "\n"
                "\n"
                "class LeakyAlgorithm(AnonymousAlgorithm):\n"
                "    def transition(self, state, received, bits):\n"
                "        return (state, id(self))\n"
            ),
        },
        select=["ANON"],
    )
    assert rules_of(report.findings) == ["ANON001"]
    assert "LeakyAlgorithm.transition" in report.findings[0].message


def test_anon001_id_keyed_bfs_regression(lint_tree):
    """The historical bug class: BFS dedup keyed on ``id(node)`` whose
    key list then becomes view-tree content.  Pre-flow lint could not
    see it — ``id()`` and the sink are three statements apart."""
    report = lint_tree(
        {
            "src/repro/views/view_tree.py": (
                "class ViewTree:\n"
                "    @staticmethod\n"
                "    def make(mark, children=()):\n"
                "        return (mark, tuple(children))\n"
            ),
            "src/repro/views/local_views.py": (
                "from repro.views.view_tree import ViewTree\n"
                "\n"
                "\n"
                "def bfs_tree(root, neighbors):\n"
                "    seen = set()\n"
                "    order = []\n"
                "    stack = [root]\n"
                "    while stack:\n"
                "        node = stack.pop()\n"
                "        key = id(node)\n"
                "        if key in seen:\n"
                "            continue\n"
                "        seen.add(key)\n"
                "        order.append(key)\n"
                "        stack.extend(neighbors[node])\n"
                "    return ViewTree.make(order[0], [])\n"
            ),
        },
        select=["ANON"],
    )
    assert rules_of(report.findings) == ["ANON001"]
    (finding,) = report.findings
    assert finding.path == "src/repro/views/local_views.py"
    assert any("id()" in hop for hop in finding.witness)
    assert "ViewTree mark" in finding.witness[-1]


def test_anon001_dedup_by_key_is_clean(lint_tree):
    """Using ``id()`` purely as a dict/set key (the sanctioned interning
    pattern) carries no identity into values — no finding."""
    report = lint_tree(
        {
            "src/repro/views/view_tree.py": (
                "class ViewTree:\n"
                "    @staticmethod\n"
                "    def make(mark, children=()):\n"
                "        return (mark, tuple(children))\n"
            ),
            "src/repro/views/local_views.py": (
                "from repro.views.view_tree import ViewTree\n"
                "\n"
                "\n"
                "def bfs_tree(root, neighbors, marks):\n"
                "    seen = set()\n"
                "    order = []\n"
                "    stack = [root]\n"
                "    while stack:\n"
                "        node = stack.pop()\n"
                "        if id(node) in seen:\n"
                "            continue\n"
                "        seen.add(id(node))\n"
                "        order.append(marks[node])\n"
                "        stack.extend(neighbors[node])\n"
                "    return ViewTree.make(order[0], [])\n"
            ),
        },
        select=["ANON"],
    )
    assert report.findings == []


def test_pure001_encoder_with_io_and_mutation(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": (
                "_CACHE = {}\n"
                "\n"
                "\n"
                "def canonical_bytes(obj):\n"
                "    return repr(obj).encode()\n"
                "\n"
                "\n"
                "def encode_logged(value):\n"
                '    with open("debug.log", "a") as fh:\n'
                "        fh.write(repr(value))\n"
                "    return canonical_bytes(value)\n"
                "\n"
                "\n"
                "def encode_memo(value):\n"
                "    _CACHE[value] = value\n"
                "    return canonical_bytes(value)\n"
            ),
        },
        select=["PURE"],
    )
    by_message = sorted(f.message for f in report.findings)
    assert rules_of(report.findings) == ["PURE001", "PURE001"]
    assert "encode_logged() transitively performs io" in by_message[0]
    assert "encode_memo() transitively performs mutation" in by_message[1]


def test_pure001_clean_encoder_passes(lint_tree):
    report = lint_tree(
        {"src/repro/artifacts/encoders.py": ENCODERS},
        select=["PURE"],
    )
    assert report.findings == []


def test_pure001_effect_is_transitive(lint_tree):
    """The effect is found through a helper in another module."""
    report = lint_tree(
        {
            "src/repro/core/log.py": (
                "def note(msg):\n"
                "    print(msg)\n"
            ),
            "src/repro/artifacts/encoders.py": (
                "from repro.core.log import note\n"
                "\n"
                "\n"
                "def encode_chatty(value):\n"
                '    note("encoding")\n'
                "    return repr(value).encode()\n"
            ),
        },
        select=["PURE"],
    )
    assert rules_of(report.findings) == ["PURE001"]
    assert any("print" in hop for hop in report.findings[0].witness)


def test_flow_findings_respect_suppressions(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": ENCODERS,
            "src/repro/core/pipeline.py": (
                "import time\n"
                "\n"
                "from repro.artifacts.encoders import encode_state\n"
                "\n"
                "\n"
                "def run():\n"
                "    # repro-lint: disable=FLOW001 -- fixture: sanctioned clock\n"
                "    return encode_state(time.time())\n"
            ),
        },
        select=["FLOW"],
    )
    assert report.findings == []
    assert report.suppressed_count == 1


def test_witness_serializes_in_schema_v2(lint_tree):
    report = lint_tree(
        {
            "src/repro/artifacts/encoders.py": ENCODERS,
            "src/repro/core/pipeline.py": (
                "import time\n"
                "\n"
                "from repro.artifacts.encoders import encode_state\n"
                "\n"
                "\n"
                "def run():\n"
                "    return encode_state(time.time())\n"
            ),
        },
        select=["FLOW"],
    )
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["schema_version"] == 2
    (finding,) = payload["findings"]
    assert isinstance(finding["witness"], list)
    assert len(finding["witness"]) >= 2
    assert all(isinstance(hop, str) for hop in finding["witness"])
    # The rendered form shows the chain as numbered hops.
    assert "    1. " in report.findings[0].render()


def test_witness_excluded_from_fingerprint(lint_tree):
    """Two runs whose chains differ in line detail but agree on
    rule/path/message must fingerprint identically (baselines and
    suppressions key on what is wrong, not on the proof route)."""
    files = {
        "src/repro/artifacts/encoders.py": ENCODERS,
        "src/repro/core/pipeline.py": (
            "import time\n"
            "\n"
            "from repro.artifacts.encoders import encode_state\n"
            "\n"
            "\n"
            "def run():\n"
            "    return encode_state(time.time())\n"
        ),
    }
    first = lint_tree(files, select=["FLOW"])
    drifted = dict(files)
    drifted["src/repro/core/pipeline.py"] = (
        "import time\n"
        "\n"
        "from repro.artifacts.encoders import encode_state\n"
        "\n"
        "EXTRA = 1\n"
        "\n"
        "\n"
        "def run():\n"
        "    return encode_state(time.time())\n"
    )
    second = lint_tree(drifted, select=["FLOW"])
    assert first.findings[0].fingerprint == second.findings[0].fingerprint
