"""Baseline round-trips: record findings, fail only on new ones,
expire entries whose finding disappeared, preserve notes on rewrite."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.baseline import Baseline, BaselineError

VIOLATING = "import random\nx = random.random()\n"
CLEAN = "x = 1\n"
SECOND_VIOLATION = (
    "import random\nx = random.random()\ny = random.randint(1, 2)\n"
)


def _write_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


def test_baselined_findings_do_not_fail(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    first = run_lint([tmp_path], tmp_path)
    assert first.exit_code == 1

    baseline_path = tmp_path / "baseline.json"
    baseline = Baseline.from_findings(baseline_path, first.findings)
    baseline.write()

    second = run_lint(
        [tmp_path], tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert second.exit_code == 0
    assert [f.baselined for f in second.findings] == [True]
    assert second.counts["baselined"] == 1
    assert second.counts["error"] == 0


def test_new_finding_fails_despite_baseline(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    first = run_lint([tmp_path], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(baseline_path, first.findings).write()

    _write_tree(tmp_path, {"src/repro/core/sample.py": SECOND_VIOLATION})
    second = run_lint(
        [tmp_path], tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert second.exit_code == 1
    new = [f for f in second.findings if not f.baselined]
    assert len(new) == 1 and new[0].line == 3


def test_baseline_survives_line_drift(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    first = run_lint([tmp_path], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(baseline_path, first.findings).write()

    # Unrelated edits above the finding move it down two lines.
    _write_tree(
        tmp_path,
        {"src/repro/core/sample.py": "A = 1\nB = 2\n" + VIOLATING},
    )
    second = run_lint(
        [tmp_path], tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert second.exit_code == 0
    assert second.counts["baselined"] == 1


def test_fixed_finding_expires_baseline_entry(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    first = run_lint([tmp_path], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(baseline_path, first.findings).write()

    _write_tree(tmp_path, {"src/repro/core/sample.py": CLEAN})
    second = run_lint(
        [tmp_path], tmp_path, baseline=Baseline.load(baseline_path)
    )
    assert second.exit_code == 0
    assert len(second.expired_baseline) == 1
    assert second.expired_baseline[0]["rule"] == "DET001"
    assert "stale" in second.render()


def test_rewrite_preserves_notes_and_drops_expired(tmp_path):
    _write_tree(tmp_path, {"src/repro/core/sample.py": SECOND_VIOLATION})
    first = run_lint([tmp_path], tmp_path)
    assert len(first.findings) == 2
    baseline_path = tmp_path / "baseline.json"
    baseline = Baseline.from_findings(baseline_path, first.findings)
    # Attach a human justification to the entry that will survive.
    surviving = [e for e in baseline.entries if "random.random" in e["message"]]
    assert len(surviving) == 1
    surviving[0]["note"] = "legacy sampler, tracked in #123"
    baseline.write()

    # The second violation gets fixed; rewrite the baseline.
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    rerun = run_lint([tmp_path], tmp_path)
    rewritten = Baseline.from_findings(
        baseline_path, rerun.findings, previous=Baseline.load(baseline_path)
    )
    rewritten.write()

    final = Baseline.load(baseline_path)
    assert len(final.entries) == 1
    assert final.entries[0]["note"] == "legacy sampler, tracked in #123"


def test_select_run_does_not_expire_other_rules_entries(tmp_path):
    """A ``--select`` run that never executes DET001 must not expire a
    DET001 baseline entry: the finding did not disappear, the rule just
    did not run.  (Regression: Baseline.apply used to treat any
    unmatched entry as stale regardless of which rules were active.)"""
    _write_tree(tmp_path, {"src/repro/core/sample.py": VIOLATING})
    first = run_lint([tmp_path], tmp_path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(baseline_path, first.findings).write()

    filtered = run_lint(
        [tmp_path],
        tmp_path,
        select=["WALL"],
        baseline=Baseline.load(baseline_path),
    )
    assert filtered.expired_baseline == []
    assert filtered.exit_code == 0

    # Selecting the entry's own family still matches (and still expires
    # once the finding is truly gone).
    selected = run_lint(
        [tmp_path],
        tmp_path,
        select=["DET"],
        baseline=Baseline.load(baseline_path),
    )
    assert selected.expired_baseline == []
    assert selected.counts["baselined"] == 1

    _write_tree(tmp_path, {"src/repro/core/sample.py": CLEAN})
    fixed = run_lint(
        [tmp_path],
        tmp_path,
        select=["DET"],
        baseline=Baseline.load(baseline_path),
    )
    assert len(fixed.expired_baseline) == 1


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text(json.dumps({"entries": [{"rule": "DET001"}]}), encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_missing_baseline_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == []


def test_shipped_baseline_is_empty():
    """The repo maintains an empty baseline: every finding is either
    fixed or carries an inline justified suppression (docs/LINT.md)."""
    shipped = Path(__file__).resolve().parents[2] / "LINT_BASELINE.json"
    payload = json.loads(shipped.read_text(encoding="utf-8"))
    assert payload["entries"] == []
