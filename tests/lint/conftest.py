"""Helpers for the invariant-analyzer tests.

The fixtures build synthetic source trees under ``tmp_path`` that
mirror the repo layout (``src/repro/...``), because rule scoping is
path-based: a DET002 fixture must live under ``src/repro/views/`` to
be in scope, exactly as in the real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Finding, run_lint
from repro.lint.baseline import Baseline


@pytest.fixture
def lint_tree(tmp_path):
    """Write a dict of relpath -> source and lint it."""

    def run(
        files: dict[str, str],
        *,
        select=(),
        baseline: Baseline = None,
        warn_only: bool = False,
    ):
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return run_lint(
            [tmp_path],
            tmp_path,
            select=select,
            baseline=baseline,
            warn_only=warn_only,
        )

    return run


def rules_of(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]
