"""Tests for GRAN bundles — the hypothesis certificates of Theorem 1."""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.exceptions import ProblemError
from repro.graphs.builders import cycle_graph, petersen_graph, with_uniform_input
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem


def all_bundles():
    decider = WellFormedInputDecider()
    return [
        GranBundle(MISProblem(), AnonymousMISAlgorithm(), decider),
        GranBundle(ColoringProblem(), VertexColoringAlgorithm(), decider),
        GranBundle(KHopColoringProblem(2), TwoHopColoringAlgorithm(), decider),
        GranBundle(MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), decider),
    ]


BUNDLES = all_bundles()
BUNDLE_IDS = [b.problem.name for b in BUNDLES]


class TestMembership:
    @pytest.mark.parametrize("bundle", BUNDLES, ids=BUNDLE_IDS)
    def test_solver_check_passes(self, bundle):
        g = with_uniform_input(cycle_graph(5))
        bundle.check_solver_on(g, seeds=range(3))

    @pytest.mark.parametrize("bundle", BUNDLES, ids=BUNDLE_IDS)
    def test_decider_check_passes_on_instance(self, bundle):
        g = with_uniform_input(petersen_graph())
        bundle.check_decider_on(g, seeds=[0])

    @pytest.mark.parametrize("bundle", BUNDLES, ids=BUNDLE_IDS)
    def test_decider_check_passes_on_non_instance(self, bundle):
        bad = cycle_graph(4).with_layer("input", {v: (9, 9) for v in range(4)})
        bundle.check_decider_on(bad, seeds=[0])

    def test_solver_check_rejects_non_instance(self):
        bundle = BUNDLES[0]
        with pytest.raises(ProblemError, match="not an instance"):
            bundle.check_solver_on(cycle_graph(3), seeds=[0])

    def test_solver_check_catches_bad_solver(self):
        """A solver for the wrong problem must be flagged."""
        bundle = GranBundle(
            MISProblem(), TwoHopColoringAlgorithm(), WellFormedInputDecider()
        )
        with pytest.raises(ProblemError, match="invalid output"):
            bundle.check_solver_on(with_uniform_input(cycle_graph(4)), seeds=[0])
