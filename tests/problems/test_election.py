"""Tests for leader election: the problem, the prime-instance solver, and
the Monte-Carlo contrast."""

from __future__ import annotations

import pytest

from repro.algorithms.monte_carlo_election import (
    MonteCarloElection,
    failure_probability_bound,
)
from repro.graphs.builders import cycle_graph, path_graph, star_graph
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.problems.election import (
    FOLLOWER,
    LEADER,
    LeaderElectionProblem,
    MinimalViewElection,
)
from repro.runtime.simulation import run_deterministic, run_randomized


def with_n_input(graph):
    """Input labels carrying (degree, n) — election's prior knowledge."""
    n = graph.num_nodes
    return graph.with_layer("input", {v: (graph.degree(v), n) for v in graph.nodes})


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestProblem:
    def test_exactly_one_leader(self):
        g = with_n_input(path_graph(3))
        problem = LeaderElectionProblem()
        assert problem.is_valid_output(g, {0: LEADER, 1: FOLLOWER, 2: FOLLOWER})
        assert not problem.is_valid_output(g, {0: LEADER, 1: LEADER, 2: FOLLOWER})
        assert not problem.is_valid_output(g, {v: FOLLOWER for v in g.nodes})
        assert not problem.is_valid_output(g, {0: "boss", 1: FOLLOWER, 2: FOLLOWER})


class TestMinimalViewElection:
    @pytest.mark.parametrize(
        "graph",
        [
            colored(with_n_input(path_graph(4))),
            colored(with_n_input(star_graph(4))),
            colored(with_n_input(cycle_graph(5))),
        ],
        ids=["path4", "star4", "cycle5"],
    )
    def test_elects_exactly_one_on_prime_instances(self, graph):
        result = run_deterministic(MinimalViewElection(), graph, max_rounds=100)
        assert result.all_decided
        leaders = [v for v, out in result.outputs.items() if out == LEADER]
        assert len(leaders) == 1

    def test_deterministic(self):
        graph = colored(with_n_input(cycle_graph(5)))
        a = run_deterministic(MinimalViewElection(), graph, max_rounds=100)
        b = run_deterministic(MinimalViewElection(), graph, max_rounds=100)
        assert a.outputs == b.outputs

    def test_fails_on_non_prime_instances(self):
        """The boundary of GRAN: on a lifted instance whole view classes
        claim leadership together — election is impossible and the
        algorithm (necessarily) produces multiple leaders."""
        base = colored(with_n_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 2)
        # Patch n in the inputs to the lift's size (labels were lifted).
        lift = lift.with_layer(
            "input", {v: (lift.degree(v), lift.num_nodes) for v in lift.nodes}
        )
        result = run_deterministic(MinimalViewElection(), lift, max_rounds=100)
        leaders = [v for v, out in result.outputs.items() if out == LEADER]
        assert len(leaders) == 2  # one whole fiber
        assert not LeaderElectionProblem().is_valid_output(
            lift.with_only_layers(["input"]), result.outputs
        )

    def test_single_node(self):
        graph = colored(with_n_input(path_graph(1)))
        result = run_deterministic(MinimalViewElection(), graph, max_rounds=10)
        assert result.outputs[0] == LEADER


class TestMonteCarloElection:
    def test_usually_elects_one_leader(self):
        g = with_n_input(cycle_graph(6))
        problem = LeaderElectionProblem()
        successes = 0
        for seed in range(20):
            result = run_randomized(MonteCarloElection(id_bits=24), g, seed=seed)
            if problem.is_valid_output(g, result.outputs):
                successes += 1
        assert successes == 20  # 24-bit IDs: collision odds ~ 2^-19

    def test_small_ids_can_fail(self):
        """With 1-bit IDs collisions are frequent: some seed must fail —
        the algorithm is Monte-Carlo, not Las-Vegas."""
        g = with_n_input(cycle_graph(6))
        problem = LeaderElectionProblem()
        failures = sum(
            not problem.is_valid_output(
                g, run_randomized(MonteCarloElection(id_bits=1), g, seed=seed).outputs
            )
            for seed in range(20)
        )
        assert failures > 0

    def test_rounds_bounded_by_n_plus_one(self):
        g = with_n_input(cycle_graph(8))
        result = run_randomized(MonteCarloElection(id_bits=16), g, seed=0)
        assert result.rounds == 9

    def test_failure_bound(self):
        assert failure_probability_bound(4, 16) == 16 / 65536
        assert failure_probability_bound(100, 2) == 1.0

    def test_bad_id_bits(self):
        with pytest.raises(ValueError):
            MonteCarloElection(id_bits=0)
