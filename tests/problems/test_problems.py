"""Tests for problem definitions and output validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ProblemError
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.decision import DecisionProblem, NO, YES, decision_outputs_valid
from repro.problems.matching import MATCHED, UNMATCHED, MaximalMatchingProblem
from repro.problems.mis import MISProblem
from repro.problems.problem import TwoHopColoredVariant


class TestMIS:
    def test_instance_requires_degree_inputs(self):
        assert MISProblem().is_instance(with_uniform_input(cycle_graph(4)))
        assert not MISProblem().is_instance(cycle_graph(4))
        bad = cycle_graph(4).with_layer("input", {v: (9, 0) for v in range(4)})
        assert not MISProblem().is_instance(bad)

    def test_valid_output(self):
        g = with_uniform_input(path_graph(3))
        assert MISProblem().is_valid_output(g, {0: True, 1: False, 2: True})

    def test_not_independent(self):
        g = with_uniform_input(path_graph(3))
        assert not MISProblem().is_valid_output(g, {0: True, 1: True, 2: False})

    def test_not_maximal(self):
        g = with_uniform_input(path_graph(3))
        assert not MISProblem().is_valid_output(g, {0: False, 1: False, 2: True})

    def test_non_boolean_rejected(self):
        g = with_uniform_input(path_graph(2))
        assert not MISProblem().is_valid_output(g, {0: 1, 1: 0})

    def test_partial_output_raises(self):
        g = with_uniform_input(path_graph(2))
        with pytest.raises(ProblemError, match="misses nodes"):
            MISProblem().is_valid_output(g, {0: True})


class TestColoring:
    def test_one_hop_valid(self):
        g = with_uniform_input(path_graph(3))
        assert ColoringProblem().is_valid_output(g, {0: "a", 1: "b", 2: "a"})

    def test_one_hop_invalid(self):
        g = with_uniform_input(path_graph(2))
        assert not ColoringProblem().is_valid_output(g, {0: "a", 1: "a"})

    def test_two_hop_variant_stricter(self):
        g = with_uniform_input(path_graph(3))
        outputs = {0: "a", 1: "b", 2: "a"}
        assert ColoringProblem().is_valid_output(g, outputs)
        assert not KHopColoringProblem(2).is_valid_output(g, outputs)

    def test_bad_k(self):
        with pytest.raises(ProblemError):
            KHopColoringProblem(0)


class TestMatching:
    def _matched_pair_outputs(self):
        return {
            0: (MATCHED, "t0", "t1"),
            1: (MATCHED, "t1", "t0"),
        }

    def test_valid_pair(self):
        g = with_uniform_input(path_graph(2))
        assert MaximalMatchingProblem().is_valid_output(g, self._matched_pair_outputs())

    def test_adjacent_unmatched_invalid(self):
        g = with_uniform_input(path_graph(2))
        outputs = {0: (UNMATCHED,), 1: (UNMATCHED,)}
        assert not MaximalMatchingProblem().is_valid_output(g, outputs)

    def test_non_reciprocal_invalid(self):
        g = with_uniform_input(path_graph(2))
        outputs = {0: (MATCHED, "t0", "x"), 1: (MATCHED, "t1", "t0")}
        assert not MaximalMatchingProblem().is_valid_output(g, outputs)

    def test_unpairable_matched_invalid(self):
        g = with_uniform_input(path_graph(3))
        outputs = {
            0: (MATCHED, "a", "b"),
            1: (MATCHED, "b", "a"),
            2: (MATCHED, "c", "d"),  # claims matched but no partner exists
        }
        assert not MaximalMatchingProblem().is_valid_output(g, outputs)

    def test_star_matching(self):
        g = with_uniform_input(star_graph(3))
        outputs = {
            0: (MATCHED, "c", "l"),
            1: (MATCHED, "l", "c"),
            2: (UNMATCHED,),
            3: (UNMATCHED,),
        }
        assert MaximalMatchingProblem().is_valid_output(g, outputs)

    def test_malformed_outputs_rejected(self):
        g = with_uniform_input(path_graph(2))
        assert not MaximalMatchingProblem().is_valid_output(g, {0: "x", 1: "y"})
        assert not MaximalMatchingProblem().is_valid_output(
            g, {0: (MATCHED,), 1: (UNMATCHED,)}
        )


class TestDecision:
    def test_rule(self):
        assert decision_outputs_valid(True, {0: YES, 1: YES})
        assert not decision_outputs_valid(True, {0: YES, 1: NO})
        assert decision_outputs_valid(False, {0: YES, 1: NO})
        assert not decision_outputs_valid(False, {0: YES, 1: YES})
        assert not decision_outputs_valid(True, {0: "maybe"})

    def test_decision_problem_wraps_predicate(self):
        problem = DecisionProblem(lambda g: g.num_nodes % 2 == 0, name="even")
        even = with_uniform_input(path_graph(2))
        odd = with_uniform_input(path_graph(3))
        assert problem.is_instance(even) and problem.is_instance(odd)
        assert problem.is_valid_output(even, {0: YES, 1: YES})
        assert problem.is_valid_output(odd, {0: YES, 1: NO, 2: YES})


class TestTwoHopColoredVariant:
    def test_instance_needs_valid_coloring(self):
        base = MISProblem()
        variant = TwoHopColoredVariant(base)
        g = with_uniform_input(path_graph(3))
        colored = apply_two_hop_coloring(g, greedy_two_hop_coloring(g))
        assert variant.is_instance(colored)
        assert not variant.is_instance(g)  # no color layer
        bad = g.with_layer("color", {0: 0, 1: 1, 2: 0})
        assert not variant.is_instance(bad)

    def test_outputs_judged_by_base(self):
        variant = TwoHopColoredVariant(MISProblem())
        g = with_uniform_input(path_graph(3))
        colored = apply_two_hop_coloring(g, greedy_two_hop_coloring(g))
        assert variant.is_valid_output(colored, {0: True, 1: False, 2: True})
        assert not variant.is_valid_output(colored, {0: True, 1: True, 2: True})

    def test_strip(self):
        variant = TwoHopColoredVariant(MISProblem())
        g = with_uniform_input(path_graph(2))
        colored = apply_two_hop_coloring(g, greedy_two_hop_coloring(g))
        assert variant.strip(colored).layer_names == ("input",)

    def test_name(self):
        assert TwoHopColoredVariant(MISProblem()).name == "mis^c"
