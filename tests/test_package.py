"""Package-level contracts: exports, exceptions, version."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_names_resolve(self):
        import repro.algorithms
        import repro.analysis
        import repro.core
        import repro.factor
        import repro.graphs
        import repro.problems
        import repro.runtime
        import repro.views

        for module in (
            repro.algorithms,
            repro.analysis,
            repro.core,
            repro.factor,
            repro.graphs,
            repro.problems,
            repro.runtime,
            repro.views,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, exceptions.ReproError) or obj is Exception

    def test_catching_base_catches_specific(self):
        from repro.exceptions import GraphError, ReproError
        from repro.graphs.builders import cycle_graph

        with pytest.raises(ReproError):
            cycle_graph(1)
        with pytest.raises(GraphError):
            cycle_graph(1)

    def test_candidate_error_is_derandomization_error(self):
        from repro.exceptions import CandidateError, DerandomizationError

        assert issubclass(CandidateError, DerandomizationError)

    def test_output_error_is_runtime_model_error(self):
        from repro.exceptions import OutputAlreadySetError, RuntimeModelError

        assert issubclass(OutputAlreadySetError, RuntimeModelError)


class TestDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if "__main__" in info.name:
                continue
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
