"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring


def colored(graph):
    """Attach a greedy 2-hop coloring as the ``color`` layer."""
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


@pytest.fixture
def c6():
    return with_uniform_input(cycle_graph(6))


@pytest.fixture
def c6_colored(c6):
    return colored(c6)


@pytest.fixture
def p4():
    return with_uniform_input(path_graph(4))


@pytest.fixture
def k4():
    return with_uniform_input(complete_graph(4))


@pytest.fixture
def star5():
    return with_uniform_input(star_graph(5))


@pytest.fixture
def petersen():
    return with_uniform_input(petersen_graph())


def small_graph_zoo():
    """A deterministic list of small well-formed instances used by
    parametrized tests across the suite."""
    from repro.graphs.builders import (
        binary_tree_graph,
        complete_bipartite_graph,
        grid_graph,
        hypercube_graph,
        random_connected_graph,
        torus_graph,
    )

    zoo = [
        ("single", path_graph(1)),
        ("edge", path_graph(2)),
        ("path-4", path_graph(4)),
        ("path-5", path_graph(5)),
        ("cycle-3", cycle_graph(3)),
        ("cycle-4", cycle_graph(4)),
        ("cycle-6", cycle_graph(6)),
        ("cycle-7", cycle_graph(7)),
        ("complete-4", complete_graph(4)),
        ("complete-5", complete_graph(5)),
        ("star-4", star_graph(4)),
        ("bipartite-2-3", complete_bipartite_graph(2, 3)),
        ("tree-depth-2", binary_tree_graph(2)),
        ("grid-2x3", grid_graph(2, 3)),
        ("hypercube-3", hypercube_graph(3)),
        ("torus-3x3", torus_graph(3, 3)),
        ("petersen", petersen_graph()),
        ("random-7", random_connected_graph(7, 0.3, seed=11)),
        ("random-9", random_connected_graph(9, 0.25, seed=12)),
    ]
    return [(name, with_uniform_input(graph)) for name, graph in zoo]
