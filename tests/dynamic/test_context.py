"""Tests for ambient churn (``repro.dynamic.context``): the topology
provider wiring, zero-churn transparency, replay determinism, and
composition with the fault layer."""

from __future__ import annotations

import pytest

from repro.dynamic import ChurnPlan, TopologyHook, apply_churn, current
from repro.dynamic.delta import ChurnSchedule
from repro.faults import FaultPlan, inject_faults
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.engine import execute


def tally(stop_at: int):
    """Decides after ``stop_at`` rounds with the per-round inbox sizes."""
    return FunctionAlgorithm(
        init=lambda label, deg: ((), 0),
        msg=lambda s: s[1],
        step=lambda s, received, b: (s[0] + (len(received),), s[1] + 1),
        out=lambda s: s[0] if s[1] >= stop_at else None,
        bits_per_round=0,
        name="tally",
    )


GRAPH = with_uniform_input(cycle_graph(8))
CHURNY = ChurnPlan(plan_seed=5, insert_rate=0.3, delete_rate=0.3)


class TestAmbientContext:
    def test_no_context_by_default(self):
        assert current() is None

    def test_context_is_active_inside_the_block(self):
        with apply_churn(ChurnPlan()) as churn:
            assert current() is churn
        assert current() is None

    def test_contexts_nest_innermost_wins(self):
        with apply_churn(ChurnPlan(plan_seed=1)) as outer:
            with apply_churn(ChurnPlan(plan_seed=2)) as inner:
                assert current() is inner
            assert current() is outer

    def test_context_is_released_on_error(self):
        with pytest.raises(RuntimeError):
            with apply_churn(ChurnPlan()):
                raise RuntimeError("boom")
        assert current() is None

    def test_empty_plan_is_transparent_but_still_hooks(self):
        bare = execute(tally(4), GRAPH, max_rounds=4)
        with apply_churn(ChurnPlan()) as churn:
            hooked = execute(tally(4), GRAPH, max_rounds=4)
        assert bare.outputs == hooked.outputs
        assert churn.execution_logs == [()]  # the hook did ride along
        assert churn.deltas_applied == 0

    def test_churn_changes_delivery_and_replays_identically(self):
        bare = execute(tally(5), GRAPH, max_rounds=5)
        with apply_churn(CHURNY) as churn:
            first = execute(tally(5), GRAPH, max_rounds=5)
            second = execute(tally(5), GRAPH, max_rounds=5)
        assert churn.deltas_applied > 0
        assert len(churn.execution_logs) == 2
        assert churn.execution_logs[0] == churn.execution_logs[1]
        assert churn.last_execution_log == churn.execution_logs[-1]
        assert first.outputs == second.outputs
        assert first.outputs != bare.outputs

    def test_composes_with_fault_injection(self):
        with inject_faults(FaultPlan(plan_seed=1, drop_rate=0.5)) as injection:
            with apply_churn(CHURNY) as churn:
                result = execute(tally(5), GRAPH, max_rounds=5)
        assert churn.deltas_applied > 0
        assert result.metrics.faults_injected > 0
        assert result.metrics.faults_injected == len(injection.trace)
        assert current() is None


class TestTopologyHook:
    def test_hook_swaps_the_engine_graph_between_rounds(self):
        hook = TopologyHook(ChurnSchedule(CHURNY))
        result = execute(tally(5), GRAPH, max_rounds=5, hooks=[hook])
        assert hook.dynamic is not None
        assert len(hook.log) > 0
        assert hook.dynamic.base is GRAPH
        assert hook.dynamic.graph.nodes == GRAPH.nodes

    def test_states_and_outputs_survive_the_swap(self):
        hook = TopologyHook(ChurnSchedule(CHURNY))
        result = execute(tally(5), GRAPH, max_rounds=5, hooks=[hook])
        assert result.all_decided
        # Round 1 predates any churn: every ledger starts with degree 2.
        assert all(log[0] == 2 for log in result.outputs.values())

    def test_empty_schedule_hook_is_inert(self):
        hook = TopologyHook(ChurnSchedule(ChurnPlan()))
        bare = execute(tally(3), GRAPH, max_rounds=3)
        hooked = execute(tally(3), GRAPH, max_rounds=3, hooks=[hook])
        assert hooked.outputs == bare.outputs
        assert hook.log == ()
