"""Tests for the delta value model and churn plans/schedules
(``repro.dynamic.delta``): canonical JSON round-trips, validation, and
the order-free SHA-256 decision discipline."""

from __future__ import annotations

import pytest

from repro.dynamic import (
    ChurnPlan,
    ChurnSchedule,
    Delta,
    add_edge,
    relabel,
    remove_edge,
    reorder_ports,
)
from repro.exceptions import DynamicError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input


class TestDelta:
    def test_constructors_set_exactly_the_op_fields(self):
        assert add_edge(1, 2) == Delta(op="add-edge", u=1, v=2)
        assert remove_edge(1, 2) == Delta(op="remove-edge", u=1, v=2)
        assert relabel(3, "input", (9,)) == Delta(
            op="relabel", node=3, layer="input", value=(9,)
        )
        assert reorder_ports(0, [2, 1]) == Delta(
            op="reorder-ports", node=0, order=(2, 1)
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(DynamicError, match="unknown delta op"):
            Delta(op="swap-node")

    def test_loop_edge_rejected(self):
        with pytest.raises(DynamicError, match="loop"):
            add_edge(4, 4)

    def test_missing_fields_rejected(self):
        with pytest.raises(DynamicError, match="both endpoints"):
            Delta(op="add-edge", u=1)
        with pytest.raises(DynamicError, match="node and a layer"):
            Delta(op="relabel", node=1)
        with pytest.raises(DynamicError, match="node and an order"):
            Delta(op="reorder-ports", node=1)

    @pytest.mark.parametrize(
        "delta",
        [
            add_edge(0, 5),
            remove_edge("a", "b"),
            relabel(2, "input", (3, "X")),
            reorder_ports(1, (0, 2, 3)),
        ],
    )
    def test_json_round_trip(self, delta):
        payload = delta.as_dict()
        assert Delta.from_dict(payload) == delta
        # Canonical: re-serializing the round-trip reproduces the payload.
        assert Delta.from_dict(payload).as_dict() == payload

    def test_as_dict_carries_only_the_op_fields(self):
        assert set(add_edge(0, 1).as_dict()) == {"op", "u", "v"}
        assert set(relabel(0, "input", 1).as_dict()) == {
            "op", "node", "layer", "value"
        }
        assert set(reorder_ports(0, (1,)).as_dict()) == {"op", "node", "order"}

    def test_from_dict_rejects_unknown_op(self):
        with pytest.raises(DynamicError, match="unknown delta op"):
            Delta.from_dict({"op": "merge"})

    def test_deltas_are_hashable_values(self):
        assert len({add_edge(0, 1), add_edge(0, 1), remove_edge(0, 1)}) == 2


class TestChurnPlan:
    def test_defaults_are_empty(self):
        plan = ChurnPlan()
        assert plan.is_empty
        assert ChurnSchedule(plan).batch(1, with_uniform_input(cycle_graph(4))) == ()

    @pytest.mark.parametrize("field", ["insert_rate", "delete_rate", "relabel_rate"])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_lie_in_unit_interval(self, field, rate):
        kwargs = {field: rate}
        if field == "relabel_rate":
            kwargs["relabel_values"] = (1,)
        with pytest.raises(DynamicError, match="must lie in"):
            ChurnPlan(**kwargs)

    def test_relabel_rate_requires_a_palette(self):
        with pytest.raises(DynamicError, match="palette"):
            ChurnPlan(relabel_rate=0.5)

    def test_round_window_validated(self):
        with pytest.raises(DynamicError, match="first_round"):
            ChurnPlan(first_round=0)
        with pytest.raises(DynamicError, match="precedes"):
            ChurnPlan(first_round=5, last_round=2)

    def test_json_round_trip(self):
        plan = ChurnPlan(
            plan_seed=9,
            insert_rate=0.25,
            delete_rate=0.1,
            relabel_rate=0.5,
            relabel_layer="input",
            relabel_values=((1, "A"), (2, "B")),
            first_round=2,
            last_round=7,
        )
        assert ChurnPlan.from_dict(plan.as_dict()) == plan


class TestChurnSchedule:
    GRAPH = with_uniform_input(cycle_graph(10))

    def test_batches_are_deterministic_and_order_free(self):
        plan = ChurnPlan(
            plan_seed=7,
            insert_rate=0.3,
            delete_rate=0.3,
            relabel_rate=0.2,
            relabel_values=(("A",), ("B",)),
        )
        # Two schedules, rounds queried in opposite orders: identical.
        first = [ChurnSchedule(plan).batch(r, self.GRAPH) for r in (1, 2, 3)]
        second = [ChurnSchedule(plan).batch(r, self.GRAPH) for r in (3, 2, 1)]
        assert first == list(reversed(second))
        assert any(first)

    def test_different_seeds_differ(self):
        a = ChurnSchedule(ChurnPlan(plan_seed=1, delete_rate=0.4))
        b = ChurnSchedule(ChurnPlan(plan_seed=2, delete_rate=0.4))
        batches_a = [a.batch(r, self.GRAPH) for r in range(1, 6)]
        batches_b = [b.batch(r, self.GRAPH) for r in range(1, 6)]
        assert batches_a != batches_b

    def test_round_window_is_respected(self):
        plan = ChurnPlan(plan_seed=3, insert_rate=0.5, first_round=2, last_round=3)
        schedule = ChurnSchedule(plan)
        assert schedule.batch(1, self.GRAPH) == ()
        assert schedule.batch(4, self.GRAPH) == ()
        assert schedule.batch(2, self.GRAPH) != ()

    def test_deletions_skip_bridges(self):
        # Every edge of a path is a bridge: a pure-delete plan must
        # produce empty batches rather than disconnect the graph.
        path = with_uniform_input(path_graph(6))
        schedule = ChurnSchedule(ChurnPlan(plan_seed=11, delete_rate=1.0))
        for round_number in range(1, 5):
            assert schedule.batch(round_number, path) == ()

    def test_batch_valid_against_itself(self):
        # Within one batch: no duplicate inserts, no double deletes, no
        # relabels repeating the effective value.
        plan = ChurnPlan(
            plan_seed=13,
            insert_rate=1.0,
            delete_rate=1.0,
            relabel_rate=1.0,
            relabel_values=(("A",), ("B,"),),
        )
        batch = ChurnSchedule(plan).batch(1, self.GRAPH)
        edges = {frozenset(e) for e in self.GRAPH.edges()}
        labels = {v: self.GRAPH.label_of(v, "input") for v in self.GRAPH.nodes}
        for delta in batch:
            if delta.op == "remove-edge":
                assert frozenset((delta.u, delta.v)) in edges
                edges.discard(frozenset((delta.u, delta.v)))
            elif delta.op == "add-edge":
                assert frozenset((delta.u, delta.v)) not in edges
                edges.add(frozenset((delta.u, delta.v)))
            elif delta.op == "relabel":
                assert labels[delta.node] != delta.value
                labels[delta.node] = delta.value
