"""Tests for the zero-churn transparency gate (``repro.dynamic.gate``).

The full gate (entire registry, twice, plus the dynamic family three
times) runs in CI via ``make dynamic-smoke``; here it is exercised on a
representative subset so the tier-1 suite stays fast."""

from __future__ import annotations

from repro.dynamic import gate


class TestGateMechanics:
    def test_first_divergence_reports_the_byte(self):
        message = gate._first_divergence("abcdef", "abcXef")
        assert message.startswith("at byte 3")

    def test_canonical_bytes_is_deterministic(self):
        ids = ["figure1", "lemma4"]
        assert gate._canonical_bytes(ids) == gate._canonical_bytes(ids)


class TestGateEndToEnd:
    def test_gate_passes_on_a_representative_subset(self, monkeypatch, capsys):
        # One pure view/factor experiment, one engine-heavy experiment,
        # and one fixed-nonzero-plan dynamic experiment.
        subset = ["figure1", "ports", "churn-engine"]
        monkeypatch.setattr(gate, "all_experiment_ids", lambda: subset)
        rc = gate.main()
        out = capsys.readouterr().out
        assert rc == 0
        assert "zero-churn runs are byte-identical" in out
        assert "churn-engine" in out
