"""Tests for the mutable churn overlay (``repro.dynamic.graph``):
apply semantics, the deterministic port discipline, dirty-set
reporting, atomic validation, and the append-only delta log."""

from __future__ import annotations

import pytest

from repro.dynamic import (
    DynamicGraph,
    add_edge,
    relabel,
    remove_edge,
    reorder_ports,
)
from repro.exceptions import DynamicError
from repro.graphs.builders import cycle_graph, with_uniform_input

GRAPH = with_uniform_input(cycle_graph(6))


class TestApply:
    def test_add_edge_appends_at_the_next_free_port(self):
        dynamic = DynamicGraph(GRAPH)
        before = GRAPH.ports(0)
        applied = dynamic.apply([add_edge(0, 3)])
        assert applied.graph.ports(0) == (*before, 3)
        assert applied.graph.ports(3) == (*GRAPH.ports(3), 0)
        assert applied.graph.has_edge(0, 3)

    def test_remove_edge_compacts_surviving_ports(self):
        dynamic = DynamicGraph(GRAPH)
        dynamic.apply([add_edge(0, 3)])
        applied = dynamic.apply([remove_edge(0, 1)])
        survivors = tuple(u for u in (*GRAPH.ports(0), 3) if u != 1)
        assert applied.graph.ports(0) == survivors

    def test_relabel_changes_one_layer_value(self):
        dynamic = DynamicGraph(GRAPH)
        applied = dynamic.apply([relabel(2, "input", ("X",))])
        assert applied.graph.label_of(2, "input") == ("X",)
        assert applied.graph.label_of(1, "input") == GRAPH.label_of(1, "input")

    def test_noop_relabel_is_not_dirty(self):
        dynamic = DynamicGraph(GRAPH)
        applied = dynamic.apply([relabel(2, "input", GRAPH.label_of(2, "input"))])
        assert applied.relabeled == ()
        assert applied.dirty == ()

    def test_reorder_ports_permutes_without_dirtying(self):
        dynamic = DynamicGraph(GRAPH)
        new_order = tuple(reversed(GRAPH.ports(4)))
        applied = dynamic.apply([reorder_ports(4, new_order)])
        assert applied.graph.ports(4) == new_order
        assert applied.dirty == ()

    def test_dirty_union_in_node_order(self):
        dynamic = DynamicGraph(GRAPH)
        applied = dynamic.apply([relabel(5, "input", ("X",)), add_edge(0, 2)])
        assert applied.relabeled == (5,)
        assert applied.touched == (0, 2)
        assert applied.dirty == (0, 2, 5)

    def test_log_accumulates_across_batches(self):
        dynamic = DynamicGraph(GRAPH)
        dynamic.apply([add_edge(0, 2)])
        dynamic.apply([remove_edge(0, 2)])
        assert dynamic.log == (add_edge(0, 2), remove_edge(0, 2))
        assert dynamic.base is GRAPH

    def test_replaying_one_log_is_byte_deterministic(self):
        batches = ([add_edge(0, 3), relabel(1, "input", ("Y",))], [remove_edge(1, 2)])
        snapshots = []
        for _ in range(2):
            dynamic = DynamicGraph(GRAPH)
            for batch in batches:
                dynamic.apply(batch)
            snapshots.append(dynamic.graph)
        a, b = snapshots
        assert list(a.edges()) == list(b.edges())
        assert all(a.ports(v) == b.ports(v) for v in a.nodes)
        assert all(a.label(v) == b.label(v) for v in a.nodes)


class TestValidation:
    def test_unknown_node_rejected(self):
        with pytest.raises(DynamicError, match="create or destroy"):
            DynamicGraph(GRAPH).apply([add_edge(0, 99)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(DynamicError, match="already exists"):
            DynamicGraph(GRAPH).apply([add_edge(0, 1)])

    def test_missing_edge_rejected(self):
        with pytest.raises(DynamicError, match="no such edge"):
            DynamicGraph(GRAPH).apply([remove_edge(0, 3)])

    def test_disconnecting_batch_rejected_atomically(self):
        dynamic = DynamicGraph(GRAPH)
        with pytest.raises(DynamicError, match="disconnect"):
            dynamic.apply([remove_edge(0, 1), remove_edge(0, 5)])
        # Atomic: the overlay still serves the old snapshot, log untouched.
        assert dynamic.graph is GRAPH
        assert dynamic.log == ()

    def test_unknown_layer_rejected(self):
        with pytest.raises(DynamicError, match="no layer"):
            DynamicGraph(GRAPH).apply([relabel(0, "color", 1)])

    def test_bad_port_permutation_rejected(self):
        with pytest.raises(DynamicError, match="permutation"):
            DynamicGraph(GRAPH).apply([reorder_ports(0, (1, 3))])


class TestMaintainerAttachment:
    def test_attached_maintainer_tracks_every_batch(self):
        dynamic = DynamicGraph(GRAPH)
        maintainer = dynamic.maintainer(3)
        assert maintainer.updates == 0
        dynamic.apply([add_edge(0, 3)])
        assert maintainer.updates == 1
        assert maintainer.graph is dynamic.graph
        dynamic.apply([remove_edge(0, 3)])
        assert maintainer.updates == 2
        assert maintainer.graph is dynamic.graph
