"""The incremental-maintenance property battery.

The acceptance bar for ``repro.dynamic``: across random churn traces
over cycles, hypercubes and random-regular families x seeds, the
incrementally maintained views must be byte-identical (and, thanks to
interning, object-identical) to a from-scratch rebuild after **every**
batch — including delete-then-reinsert traces that must land back on
the original interned trees."""

from __future__ import annotations

import pytest

from repro.artifacts.encoders import encode_quotient, encode_views
from repro.dynamic import (
    ChurnPlan,
    ChurnSchedule,
    DynamicGraph,
    DynamicViewMaintainer,
    add_edge,
    differential_check,
    relabel,
    remove_edge,
    reorder_ports,
)
from repro.exceptions import DynamicError, FactorError
from repro.factor.quotient import infinite_view_graph
from repro.graphs.builders import (
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    with_uniform_input,
)
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.views.local_views import all_views

FAMILIES = [
    ("cycle-12", with_uniform_input(cycle_graph(12))),
    ("cycle-17", with_uniform_input(cycle_graph(17))),
    ("hypercube-3", with_uniform_input(hypercube_graph(3))),
    ("hypercube-4", with_uniform_input(hypercube_graph(4))),
    ("random-regular-10-3", with_uniform_input(random_regular_graph(10, 3, seed=2))),
    ("random-regular-14-4", with_uniform_input(random_regular_graph(14, 4, seed=9))),
]

DEPTH = 5
TRACE_ROUNDS = 4


class TestChurnTraceBattery:
    @pytest.mark.parametrize("name,graph", FAMILIES, ids=[n for n, _ in FAMILIES])
    @pytest.mark.parametrize("plan_seed", [0, 1, 2])
    def test_incremental_matches_from_scratch_after_every_batch(
        self, name, graph, plan_seed
    ):
        plan = ChurnPlan(
            plan_seed=plan_seed,
            insert_rate=0.15,
            delete_rate=0.15,
            relabel_rate=0.1,
            relabel_values=(("A",), ("B",), ("C",)),
        )
        dynamic = DynamicGraph(graph)
        maintainer = dynamic.maintainer(DEPTH)
        schedule = ChurnSchedule(plan)
        churned = 0
        for round_number in range(1, TRACE_ROUNDS + 1):
            batch = schedule.batch(round_number, dynamic.graph)
            if batch:
                dynamic.apply(batch)
                churned += len(batch)
            differential_check(maintainer)  # raises on any divergence
        assert churned > 0, "trace exercised no churn"
        # The maintained map is also byte-identical to the public
        # all_views entry point on the final snapshot.
        assert encode_views(maintainer.views()) == encode_views(
            all_views(dynamic.graph, DEPTH)
        )
        # And the quotient pipeline agrees: on the churned snapshot it
        # must behave identically whether the intern pool was warmed
        # incrementally (the live graph) or not at all (a round-tripped
        # copy sharing no cached state) — same bytes, or the same
        # refusal (churn generally breaks 2-hop coloredness, in which
        # case the quotient is undefined on both).
        severed = graph_from_dict(graph_to_dict(dynamic.graph))
        try:
            live = encode_quotient(infinite_view_graph(dynamic.graph, with_views=True))
        except FactorError:
            with pytest.raises(FactorError):
                infinite_view_graph(severed, with_views=True)
        else:
            assert live == encode_quotient(
                infinite_view_graph(severed, with_views=True)
            )

    @pytest.mark.parametrize("name,graph", FAMILIES[:3], ids=[n for n, _ in FAMILIES[:3]])
    def test_delete_then_reinsert_returns_to_original_interned_trees(
        self, name, graph
    ):
        original = {
            depth: dict(DynamicViewMaintainer(graph, DEPTH).views(depth))
            for depth in range(1, DEPTH + 1)
        }
        dynamic = DynamicGraph(graph)
        maintainer = dynamic.maintainer(DEPTH)
        u, v = next(iter(graph.edges()))
        extra = next(
            (a, b)
            for i, a in enumerate(graph.nodes)
            for b in graph.nodes[i + 1 :]
            if not graph.has_edge(a, b)
        )
        dynamic.apply([add_edge(*extra)])
        dynamic.apply([remove_edge(u, v), relabel(u, "input", ("tmp",))])
        differential_check(maintainer)
        # Undo everything, in a different batch order than it was done.
        dynamic.apply([relabel(u, "input", graph.label_of(u, "input")), add_edge(u, v)])
        dynamic.apply([remove_edge(*extra)])
        differential_check(maintainer)
        for depth in range(1, DEPTH + 1):
            now = maintainer.views(depth)
            assert all(now[w] is original[depth][w] for w in graph.nodes)

    def test_port_reorder_has_an_empty_blast_radius(self):
        graph = with_uniform_input(hypercube_graph(3))
        dynamic = DynamicGraph(graph)
        maintainer = dynamic.maintainer(DEPTH)
        node = graph.nodes[0]
        dynamic.apply([reorder_ports(node, tuple(reversed(graph.ports(node))))])
        assert maintainer.last_stats.recomputed == 0
        assert maintainer.last_stats.changed == 0
        differential_check(maintainer)


class TestUpdateAccounting:
    GRAPH = with_uniform_input(cycle_graph(16))

    def test_slots_conserved_and_reuse_observed(self):
        dynamic = DynamicGraph(self.GRAPH)
        maintainer = dynamic.maintainer(DEPTH)
        dynamic.apply([relabel(0, "input", ("X",))])
        stats = maintainer.last_stats
        n = self.GRAPH.num_nodes
        assert stats.recomputed + stats.reused == DEPTH * n
        # A single relabel on C16 at depth 5 touches a bounded ball.
        assert stats.reused > 0
        assert 0.0 < stats.reuse_fraction < 1.0
        assert maintainer.stats()["updates"] == 1

    def test_changed_front_is_bounded_by_the_blast_radius(self):
        dynamic = DynamicGraph(self.GRAPH)
        maintainer = dynamic.maintainer(DEPTH)
        dynamic.apply([relabel(0, "input", ("X",))])
        # Changes at depth d live within distance d-1 of the relabeled
        # node: at most sum_{k<DEPTH} |ball(0, k)| slots on a cycle.
        ball_sizes = sum(min(2 * k + 1, 16) for k in range(DEPTH))
        assert maintainer.last_stats.changed <= ball_sizes

    def test_depth_validation(self):
        with pytest.raises(DynamicError, match="at least 1"):
            DynamicViewMaintainer(self.GRAPH, 0)
        maintainer = DynamicViewMaintainer(self.GRAPH, 2)
        with pytest.raises(DynamicError, match="maintained depths"):
            maintainer.views(3)

    def test_node_set_must_be_invariant(self):
        maintainer = DynamicViewMaintainer(self.GRAPH, 2)
        other = with_uniform_input(cycle_graph(5))
        with pytest.raises(DynamicError, match="invariant node set"):
            maintainer.update(other)

    def test_divergence_is_detected(self):
        # Corrupt the maintained state behind the maintainer's back: the
        # oracle must name the divergence instead of passing silently.
        maintainer = DynamicViewMaintainer(self.GRAPH, 2)
        # A depth-1 tree in a depth-2 slot is a genuinely different
        # interned object (on the uniform cycle, swapping two same-depth
        # slots would be invisible — every node's view is the same tree).
        maintainer._levels[1][3] = maintainer._levels[0][3]
        with pytest.raises(DynamicError, match="not the interned"):
            differential_check(maintainer)
