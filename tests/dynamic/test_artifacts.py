"""Tests for the ``dynamic-views`` artifact kind: the delta log as key
material, producer/encoder round-trips, and replay-based invalidation
semantics."""

from __future__ import annotations

from repro.artifacts.encoders import decode_dynamic_views, encoder_for
from repro.artifacts.keys import artifact_key
from repro.artifacts.producers import compute_artifact, compute_payload
from repro.artifacts.specs import dynamic_views_spec, views_spec
from repro.artifacts.store import ArtifactStore, record_artifact_keys
from repro.dynamic import DynamicGraph, add_edge, relabel, replay_views
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.views.local_views import all_views

GRAPH = with_uniform_input(cycle_graph(8))
DELTAS = (add_edge(0, 4), relabel(1, "input", ("X",)))
DEPTH = 3


class TestKeying:
    def test_the_delta_log_is_key_material(self):
        empty = artifact_key(dynamic_views_spec(GRAPH, (), DEPTH))
        one = artifact_key(dynamic_views_spec(GRAPH, DELTAS[:1], DEPTH))
        two = artifact_key(dynamic_views_spec(GRAPH, DELTAS, DEPTH))
        assert len({empty, one, two}) == 3

    def test_key_is_a_pure_function_of_base_log_and_depth(self):
        a = artifact_key(dynamic_views_spec(GRAPH, DELTAS, DEPTH))
        b = artifact_key(dynamic_views_spec(GRAPH, list(DELTAS), DEPTH))
        assert a == b

    def test_distinct_from_the_plain_views_kind(self):
        assert artifact_key(dynamic_views_spec(GRAPH, (), DEPTH)) != artifact_key(
            views_spec(GRAPH, DEPTH)
        )


class TestProducerAndEncoder:
    def test_replay_views_matches_a_direct_rebuild(self):
        dynamic = DynamicGraph(GRAPH)
        dynamic.apply(DELTAS)
        direct = all_views(dynamic.graph, DEPTH)
        replayed = replay_views(GRAPH, DELTAS, DEPTH)
        assert all(replayed[v] is direct[v] for v in GRAPH.nodes)

    def test_payload_round_trips_and_reinterns(self):
        spec = dynamic_views_spec(GRAPH, DELTAS, DEPTH)
        payload = compute_payload(spec)
        decoded = decode_dynamic_views(payload)
        live = compute_artifact(spec)
        assert all(decoded[v] is live[v] for v in GRAPH.nodes)
        assert encoder_for("dynamic-views").encode(decoded) == payload

    def test_zero_delta_payload_matches_the_base_views(self):
        spec = dynamic_views_spec(GRAPH, (), DEPTH)
        decoded = decode_dynamic_views(compute_payload(spec))
        base = all_views(GRAPH, DEPTH)
        assert all(decoded[v] is base[v] for v in GRAPH.nodes)

    def test_store_serves_and_caches_the_kind(self):
        spec = dynamic_views_spec(GRAPH, DELTAS, DEPTH)
        store = ArtifactStore()
        first = store.fetch(spec)
        assert store.lookup(artifact_key(spec)) == first
        assert store.fetch(spec) == first

    def test_replay_views_notes_the_artifact_for_recorders(self):
        with record_artifact_keys() as keys:
            replay_views(GRAPH, DELTAS, DEPTH)
        assert artifact_key(dynamic_views_spec(GRAPH, DELTAS, DEPTH)) in keys
