"""``python -m repro.artifacts`` — exit codes and stable output lines."""

from __future__ import annotations

import pytest

from repro.artifacts.__main__ import main
from repro.artifacts.keys import artifact_key
from repro.artifacts.specs import refinement_spec, views_spec
from repro.artifacts.store import ArtifactStore
from repro.experiments.fingerprint import code_fingerprint
from repro.experiments.store import rewrite_store, scan_store
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.views.view_tree import clear_caches


@pytest.fixture(autouse=True)
def _fresh_memory_tier():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def populated_store(tmp_path):
    path = tmp_path / "store.jsonl"
    g = with_uniform_input(cycle_graph(6))
    with ArtifactStore(path) as store:
        store.fetch(refinement_spec(g))
        store.fetch(views_spec(g, 3))
        # One record from a rotated-out fingerprint, as after a deploy.
        stale_spec = refinement_spec(with_uniform_input(cycle_graph(7)))
        store.persist(
            artifact_key(stale_spec, fingerprint="f" * 64),
            stale_spec,
            b'{"stale": true}',
            fingerprint="f" * 64,
        )
    return path


def test_status_counts_current_and_stale(populated_store, capsys):
    assert main(["status", "--store", str(populated_store)]) == 0
    out = capsys.readouterr().out
    assert "records=3 current=2 stale=1" in out
    assert "kind refinement: 2 record(s)" in out
    assert "kind views: 1 record(s)" in out
    assert "memory refinement:" in out  # producers' buckets registered


def test_gc_drops_stale_fingerprints(populated_store, capsys):
    assert main(["gc", "--store", str(populated_store)]) == 0
    assert "kept=2 dropped=1" in capsys.readouterr().out
    records = scan_store(populated_store)
    assert len(records) == 2
    assert all(
        record["fingerprint"] == code_fingerprint() for record in records.values()
    )


def test_gc_dry_run_leaves_the_store_alone(populated_store, capsys):
    assert main(["gc", "--store", str(populated_store), "--dry-run"]) == 0
    assert "dropped=1 " in capsys.readouterr().out
    assert len(scan_store(populated_store)) == 3


def test_gc_keep_fingerprint_selects_the_generation(populated_store, capsys):
    assert (
        main(
            [
                "gc",
                "--store",
                str(populated_store),
                "--keep-fingerprint",
                "f" * 64,
            ]
        )
        == 0
    )
    records = scan_store(populated_store)
    assert len(records) == 1
    assert next(iter(records.values()))["fingerprint"] == "f" * 64


def test_verify_clean_store_exits_zero(populated_store, capsys):
    # The stale record's payload is not a decodable artifact, so verify
    # only the current generation: gc first, then verify.
    main(["gc", "--store", str(populated_store)])
    assert main(["verify", "--store", str(populated_store)]) == 0
    assert "mismatches=0" in capsys.readouterr().out


def test_verify_detects_corrupted_payload(populated_store, capsys):
    main(["gc", "--store", str(populated_store)])
    records = scan_store(populated_store)
    key = sorted(records)[0]
    records[key]["payload"] = records[key]["payload"].replace(":", ": ", 1)
    rewrite_store(populated_store, records)
    assert main(["verify", "--store", str(populated_store)]) == 1
    out = capsys.readouterr().out
    assert "MISMATCH" in out and "mismatches=1" in out


def test_verify_detects_tampered_payload_with_fixed_digest(
    populated_store, capsys
):
    # Even when the digest is recomputed to match, decode -> re-encode
    # catches payloads that are not canonical bytes.
    from repro.artifacts.keys import payload_digest

    main(["gc", "--store", str(populated_store)])
    records = scan_store(populated_store)
    key = sorted(records)[0]
    tampered = records[key]["payload"].replace(":", ": ", 1)
    records[key]["payload"] = tampered
    records[key]["digest"] = payload_digest(tampered.encode("utf-8"))
    rewrite_store(populated_store, records)
    assert main(["verify", "--store", str(populated_store)]) == 1


def test_verify_sample_checks_a_subset(populated_store, capsys):
    main(["gc", "--store", str(populated_store)])
    assert (
        main(["verify", "--store", str(populated_store), "--sample", "1"]) == 0
    )
    assert "checked=1 of=2" in capsys.readouterr().out


def test_status_on_missing_store_is_empty_not_an_error(tmp_path, capsys):
    assert main(["status", "--store", str(tmp_path / "nope.jsonl")]) == 0
    assert "records=0 current=0 stale=0" in capsys.readouterr().out
