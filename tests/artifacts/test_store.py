"""The artifact store: keys, memory buckets, persistence, recording."""

from __future__ import annotations

import json

import pytest

from repro.artifacts.keys import artifact_key, canonical_spec, payload_digest
from repro.artifacts.producers import compute_payload
from repro.artifacts.specs import refinement_spec, views_spec
from repro.artifacts.store import (
    ArtifactStore,
    MemoryBucket,
    clear_memory_tier,
    memory_bucket,
    memory_stats,
    record_artifact_keys,
)
from repro.exceptions import ArtifactError
from repro.experiments.fingerprint import code_fingerprint
from repro.experiments.store import rewrite_store, scan_store
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.views.local_views import all_views
from repro.views.refinement import color_refinement
from repro.views.view_tree import clear_caches


@pytest.fixture(autouse=True)
def _fresh_memory_tier():
    clear_caches()
    yield
    clear_caches()


def _graph(n=6):
    return with_uniform_input(cycle_graph(n))


class TestKeys:
    def test_spec_must_carry_a_kind(self):
        with pytest.raises(ArtifactError):
            artifact_key({"graph": {}})

    def test_canonical_spec_is_order_independent(self):
        a = {"kind": "refinement", "graph": {"nodes": [1, 2]}}
        b = {"graph": {"nodes": [1, 2]}, "kind": "refinement"}
        assert canonical_spec(a) == canonical_spec(b)
        assert artifact_key(a) == artifact_key(b)

    def test_key_embeds_the_code_fingerprint(self):
        spec = refinement_spec(_graph())
        current = artifact_key(spec)
        assert current == artifact_key(spec, fingerprint=code_fingerprint())
        assert current != artifact_key(spec, fingerprint="f" * 64)

    def test_distinct_specs_get_distinct_keys(self):
        g = _graph()
        keys = {
            artifact_key(refinement_spec(g)),
            artifact_key(views_spec(g, 2)),
            artifact_key(views_spec(g, 3)),
            artifact_key(refinement_spec(_graph(7))),
        }
        assert len(keys) == 4

    def test_payload_digest_is_content_addressed(self):
        assert payload_digest(b"abc") == payload_digest(b"abc")
        assert payload_digest(b"abc") != payload_digest(b"abd")


class TestMemoryBucket:
    def test_lru_eviction_order(self):
        bucket = MemoryBucket("test-lru", capacity=2)
        bucket.put("a", 1)
        bucket.put("b", 2)
        assert bucket.get("a") == 1  # refreshes "a": "b" is now oldest
        bucket.put("c", 3)
        assert "b" not in bucket
        assert bucket.get("a") == 1 and bucket.get("c") == 3
        assert bucket.evictions == 1

    def test_counters(self):
        bucket = MemoryBucket("test-counters", capacity=4)
        assert bucket.get("missing") is None
        bucket.put("k", "v")
        assert bucket.get("k") == "v"
        assert bucket.stats() == {
            "size": 1,
            "capacity": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ArtifactError):
            MemoryBucket("test-bad", capacity=0)

    def test_registry_shares_buckets_and_clear_keeps_counters(self):
        bucket = memory_bucket("test-registry", capacity=3)
        assert memory_bucket("test-registry") is bucket
        bucket.put("k", "v")
        bucket.get("k")
        clear_memory_tier()
        assert len(bucket) == 0
        assert bucket.hits == 1  # counters describe the process
        assert "test-registry" in memory_stats()


class TestArtifactStore:
    def test_memory_only_fetch_computes_once(self):
        store = ArtifactStore()
        spec = refinement_spec(_graph())
        first = store.fetch(spec)
        assert store.lookup(artifact_key(spec)) == first
        assert store.fetch(spec) == first
        assert store.stores == 1

    def test_fetch_matches_direct_computation(self):
        spec = views_spec(_graph(), 3)
        assert ArtifactStore().fetch(spec) == compute_payload(spec)

    def test_persistent_round_trip_survives_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = refinement_spec(_graph())
        key = artifact_key(spec)
        with ArtifactStore(path) as store:
            payload = store.fetch(spec)
        clear_caches()
        with ArtifactStore(path) as reopened:
            assert reopened.lookup(key) == payload
            assert reopened.persistent_hits == 1
            # Promotion: the second lookup is a memory hit.
            assert reopened.lookup(key) == payload
            assert reopened.persistent_hits == 1

    def test_persist_is_append_once(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = refinement_spec(_graph())
        with ArtifactStore(path) as store:
            store.fetch(spec)
            store.persist(artifact_key(spec), spec, b'{"other": 1}')
        # The persistent tier kept the first payload.
        record = scan_store(path)[artifact_key(spec)]
        assert record["payload"] != '{"other": 1}'

    def test_digest_mismatch_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = refinement_spec(_graph())
        key = artifact_key(spec)
        with ArtifactStore(path) as store:
            store.fetch(spec)
        records = scan_store(path)
        records[key]["payload"] = records[key]["payload"][:-2] + "]}"
        rewrite_store(path, records)
        clear_caches()
        with ArtifactStore(path) as corrupted:
            with pytest.raises(ArtifactError, match="digest mismatch"):
                corrupted.lookup(key)

    def test_gc_drops_stale_fingerprints(self, tmp_path):
        path = tmp_path / "store.jsonl"
        spec = refinement_spec(_graph())
        stale_key = artifact_key(spec, fingerprint="f" * 64)
        with ArtifactStore(path) as store:
            store.fetch(spec)
            store.persist(stale_key, spec, b'{"stale": true}', fingerprint="f" * 64)
        records = scan_store(path)
        assert len(records) == 2
        current = code_fingerprint()
        kept = {
            key: record
            for key, record in records.items()
            if record["fingerprint"] == current
        }
        rewrite_store(path, kept)
        assert set(scan_store(path)) == {artifact_key(spec)}

    def test_stale_fingerprint_is_a_miss_not_a_wrong_answer(self, tmp_path):
        # A key minted under another fingerprint never collides with the
        # current one, so old payloads are unreachable — the store serves
        # them only to a process whose code hashes identically.
        path = tmp_path / "store.jsonl"
        spec = refinement_spec(_graph())
        with ArtifactStore(path) as store:
            store.persist(
                artifact_key(spec, fingerprint="f" * 64),
                spec,
                b'{"stale": true}',
                fingerprint="f" * 64,
            )
            assert store.lookup(artifact_key(spec)) is None

    def test_stats_shape(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ArtifactStore(path) as store:
            store.fetch(refinement_spec(_graph()))
            stats = store.stats()
        assert stats["persistent"]["enabled"]
        assert stats["persistent"]["records"] == 1
        assert stats["persistent"]["by_kind"] == {"refinement": 1}
        assert stats["stores"] == 1
        assert "payload" in stats["memory"]


class TestRecording:
    def test_producers_note_their_artifact_keys(self):
        g = _graph()
        with record_artifact_keys() as keys:
            color_refinement(g)
            all_views(g, 3)
        assert keys == {
            artifact_key(refinement_spec(g)),
            artifact_key(views_spec(g, 3)),
        }

    def test_cached_fetches_still_record(self):
        g = _graph()
        color_refinement(g)  # warm the bucket outside any recorder
        with record_artifact_keys() as keys:
            color_refinement(g)
        assert keys == {artifact_key(refinement_spec(g))}

    def test_no_recording_outside_the_context(self):
        with record_artifact_keys() as keys:
            pass
        color_refinement(_graph())
        assert keys == set()

    def test_fabric_records_carry_artifact_keys(self, tmp_path):
        from repro.experiments.fabric import experiment_tasks, run_tasks

        store_path = tmp_path / "fabric.jsonl"
        run_tasks(experiment_tasks(["figure1"]), store_path, jobs=1)
        records = list(scan_store(store_path).values())
        assert records, "fabric wrote no records"
        for record in records:
            assert record["artifacts"] == sorted(record["artifacts"])
            for key in record["artifacts"]:
                assert len(key) == 64 and set(key) <= set("0123456789abcdef")
        assert any(record["artifacts"] for record in records)
        # Round trip through JSON: the field is plain data.
        assert json.loads(json.dumps(records[0]))["artifacts"] == records[0][
            "artifacts"
        ]
