"""The asyncio artifact service: dedup, batching, ordering, errors."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.artifacts.keys import artifact_key
from repro.artifacts.service import ArtifactService, serve_all
from repro.artifacts.specs import refinement_spec, views_spec
from repro.artifacts.store import ArtifactStore
from repro.exceptions import ArtifactError
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.views.view_tree import clear_caches


@pytest.fixture(autouse=True)
def _fresh_memory_tier():
    clear_caches()
    yield
    clear_caches()


class CountingCompute:
    """Injectable compute: canonical payloads, thread-safe call ledger."""

    def __init__(self, delay: float = 0.0, poison: "dict | None" = None):
        self.calls: "list[dict]" = []
        self._lock = threading.Lock()
        self._delay = delay
        self._poison = poison

    def __call__(self, spec: "dict") -> bytes:
        with self._lock:
            self.calls.append(spec)
        if self._delay:
            time.sleep(self._delay)
        if self._poison is not None and spec == self._poison:
            raise ArtifactError("poisoned spec")
        return json.dumps(spec, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )


def _specs(count: int, start: int = 4) -> "list[dict]":
    return [
        refinement_spec(with_uniform_input(cycle_graph(start + i)))
        for i in range(count)
    ]


def test_n_concurrent_identical_requests_compute_exactly_once():
    spec = _specs(1)[0]
    compute = CountingCompute(delay=0.01)
    service = ArtifactService(compute=compute)

    async def run():
        return await asyncio.gather(*(service.get(spec) for _ in range(16)))

    payloads = asyncio.run(run())
    assert len(compute.calls) == 1
    assert len(set(payloads)) == 1
    assert service.counters["requests"] == 16
    assert service.counters["computes"] == 1
    assert service.counters["dedup_hits"] == 15


def test_batched_mixed_requests_return_in_request_order():
    distinct = _specs(7)
    mix = distinct + [distinct[2], distinct[0]] + list(reversed(distinct))
    compute = CountingCompute()
    service = ArtifactService(compute=compute, max_batch=3)

    async def run():
        return await service.get_many(mix)

    payloads = asyncio.run(run())
    assert payloads == [compute(spec) for spec in mix]
    # Each distinct spec computed once; duplicates were dedup or hits.
    assert service.counters["computes"] == len(distinct)
    assert service.counters["batches"] >= 3  # max_batch=3 over 7 misses


def test_requests_after_the_first_batch_hit_the_store():
    spec = _specs(1)[0]
    compute = CountingCompute()
    service = ArtifactService(compute=compute)

    async def run():
        first = await service.get(spec)
        second = await service.get(spec)
        return first, second

    first, second = asyncio.run(run())
    assert first == second
    assert service.counters == {
        "requests": 2,
        "hits": 1,
        "dedup_hits": 0,
        "computes": 1,
        "batches": 1,
        "errors": 0,
    }


def test_errors_fail_only_their_own_future():
    specs = _specs(3)
    compute = CountingCompute(poison=specs[1])
    service = ArtifactService(compute=compute)

    async def run():
        results = await asyncio.gather(
            *(service.get(spec) for spec in specs), return_exceptions=True
        )
        return results

    good_a, failure, good_b = asyncio.run(run())
    assert isinstance(failure, ArtifactError)
    assert "poisoned spec" in str(failure)
    assert isinstance(good_a, bytes)
    assert isinstance(good_b, bytes)
    assert service.counters["errors"] == 1
    # The poisoned key is not cached: a retry recomputes it.
    assert service.store.lookup(artifact_key(specs[1])) is None


def test_computed_payloads_persist_through_the_store(tmp_path):
    path = tmp_path / "store.jsonl"
    specs = _specs(3)
    payloads, _stats = serve_all(specs, ArtifactStore(path))

    clear_caches()
    recompute = CountingCompute()
    warm_service = ArtifactService(ArtifactStore(path), compute=recompute)

    async def run():
        return await warm_service.get_many(specs)

    warm = asyncio.run(run())
    assert warm == payloads
    assert recompute.calls == []
    assert warm_service.counters["hits"] == len(specs)


def test_serve_all_returns_request_order_and_stats():
    specs = _specs(4)
    mix = [specs[3], specs[0], specs[3], specs[1]]
    payloads, stats = serve_all(mix)
    direct = {artifact_key(spec): spec for spec in mix}
    for spec, payload in zip(mix, payloads):
        assert isinstance(payload, bytes)
    assert payloads[0] == payloads[2]
    assert stats["service"]["requests"] == 4
    assert stats["service"]["computes"] == 3


def test_prepared_request_key_memo_is_object_keyed():
    spec = _specs(1)[0]
    service = ArtifactService(compute=CountingCompute())
    key = service._key_of(spec)
    assert service._key_of(spec) == key == artifact_key(spec)
    # An equal-but-distinct dict still derives the same content key.
    assert service._key_of(dict(spec)) == key


def test_invalid_configuration_rejected():
    with pytest.raises(ArtifactError):
        ArtifactService(jobs=0)
    with pytest.raises(ArtifactError):
        ArtifactService(max_batch=0)


def test_real_compute_end_to_end():
    # No injected compute: the service runs the actual producers and the
    # payloads match the synchronous read-through path byte for byte.
    g = with_uniform_input(cycle_graph(6))
    specs = [refinement_spec(g), views_spec(g, 3)]
    payloads, stats = serve_all(specs)
    clear_caches()
    from repro.artifacts.producers import compute_payload

    assert payloads == [compute_payload(spec) for spec in specs]
    assert stats["service"]["computes"] == 2
