"""Encoder round-trip properties across the CSR differential families.

Every canonical encoder must satisfy two laws on every graph the CSR
property suite exercises (cycles, hypercubes, random regular, random
connected, colored cycles, port-scrambled cycles):

* **value round trip** — ``decode(encode(x))`` reproduces ``x`` (same
  classes, same views, same quotient structure);
* **byte idempotence** — ``encode(decode(payload)) == payload``, the
  property ``python -m repro.artifacts verify`` checks on live stores.
"""

from __future__ import annotations

import pytest

from repro.artifacts.encoders import (
    decode_quotient,
    decode_refinement,
    decode_view_tree,
    decode_views,
    encode_quotient,
    encode_refinement,
    encode_view_tree,
    encode_views,
    encoder_for,
)
from repro.artifacts.producers import compute_payload
from repro.artifacts.specs import derandomized_run_spec
from repro.exceptions import ArtifactError, ReproError
from repro.factor.quotient import infinite_view_graph
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.views.local_views import all_views, view
from repro.views.refinement import color_refinement
from repro.views.view_tree import clear_caches

from tests.views.test_csr_kernels_property import SEEDS, colored, family

_VIEW_DEPTH_CAP = 5


@pytest.mark.parametrize("seed", SEEDS)
def test_refinement_round_trip(seed):
    for g in family(seed):
        result = color_refinement(g)
        payload = encode_refinement(result)
        decoded = decode_refinement(payload)
        assert dict(decoded.classes) == dict(result.classes)
        assert decoded.rounds_to_stable == result.rounds_to_stable
        assert decoded.history == result.history
        assert decoded.stable == result.stable
        assert encode_refinement(decoded) == payload


@pytest.mark.parametrize("seed", SEEDS)
def test_views_round_trip(seed):
    for g in family(seed):
        depth = min(g.num_nodes, _VIEW_DEPTH_CAP)
        views = all_views(g, depth)
        payload = encode_views(views)
        decoded = decode_views(payload)
        # Interning makes equal views identical objects.
        assert decoded == dict(views)
        assert encode_views(decoded) == payload


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_view_tree_round_trip(seed):
    for g in family(seed):
        node = g.nodes[0]
        tree = view(g, node, min(g.num_nodes, _VIEW_DEPTH_CAP))
        payload = encode_view_tree(tree)
        assert decode_view_tree(payload) is tree  # re-interned
        assert encode_view_tree(decode_view_tree(payload)) == payload


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_quotient_round_trip(seed):
    for g in family(seed):
        try:
            result = infinite_view_graph(g)
        except ReproError:
            continue  # not factorizable; no quotient artifact exists
        payload = encode_quotient(result)
        decoded = decode_quotient(payload)
        assert set(decoded.graph.edges()) == set(result.graph.edges())
        assert decoded.map.as_dict() == result.map.as_dict()
        assert decoded.map.multiplicity == result.map.multiplicity
        assert encode_quotient(decoded) == payload


def test_round_trip_survives_an_interning_epoch():
    # Payload bytes are a pure function of content, not of the intern
    # tables that happened to exist when they were produced.
    g = colored(with_uniform_input(cycle_graph(9)))
    before = encode_views(all_views(g, 4))
    clear_caches()
    decoded = decode_views(before)
    assert encode_views(decoded) == before


def test_derandomized_run_round_trip():
    spec = derandomized_run_spec(
        "2-hop-coloring", with_uniform_input(cycle_graph(5)), seed=3
    )
    payload = compute_payload(spec)
    encoder = encoder_for("derandomized-run")
    decoded = encoder.decode(payload)
    assert decoded["kind"] == "derandomized-run"
    assert decoded["outputs"]  # the projected pipeline carries outputs
    assert decoded["coloring"] and decoded["quotient_size"] >= 1
    assert encoder.encode(decoded) == payload


def test_unknown_kind_rejected():
    with pytest.raises(ArtifactError):
        encoder_for("no-such-kind")


def test_wrong_kind_payload_rejected():
    g = with_uniform_input(cycle_graph(5))
    payload = encode_refinement(color_refinement(g))
    with pytest.raises(ArtifactError):
        decode_views(payload)


def test_malformed_payload_rejected():
    with pytest.raises(ArtifactError):
        decode_refinement(b"not json")
    with pytest.raises(ArtifactError):
        decode_refinement(b'{"kind": "refinement", "format": 999}')
