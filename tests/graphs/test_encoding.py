"""Tests for canonical graph encodings."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import cycle_graph, path_graph
from repro.graphs.encoding import canonical_encoding, encode_ordered_graph


def _labeled_path(labels):
    g = path_graph(len(labels))
    return g.with_layer("input", dict(enumerate(labels)))


class TestOrderedEncoding:
    def test_encoding_mentions_counts(self):
        g = _labeled_path(["a", "b", "c"])
        s = encode_ordered_graph(g, [0, 1, 2])
        assert s.startswith("n=3;")
        assert "E=0-1,1-2" in s

    def test_encoding_depends_on_order(self):
        g = _labeled_path(["a", "a", "a"])
        s1 = encode_ordered_graph(g, [0, 1, 2])
        s2 = encode_ordered_graph(g, [1, 0, 2])
        assert s1 != s2  # edge ordinals differ

    def test_order_must_be_permutation(self):
        g = _labeled_path(["a", "b"])
        with pytest.raises(GraphError, match="permutation"):
            encode_ordered_graph(g, [0, 0])


class TestCanonicalEncoding:
    def test_isomorphic_graphs_equal_encoding(self):
        g1 = _labeled_path(["a", "b", "c"])
        g2 = g1.relabel_nodes({0: "x", 1: "y", 2: "z"})
        assert canonical_encoding(g1) == canonical_encoding(g2)

    def test_reversed_path_equal_encoding(self):
        g1 = _labeled_path(["a", "b", "a"])
        g2 = _labeled_path(["a", "b", "a"]).relabel_nodes({0: 2, 1: 1, 2: 0})
        assert canonical_encoding(g1) == canonical_encoding(g2)

    def test_different_labels_differ(self):
        g1 = _labeled_path(["a", "b"])
        g2 = _labeled_path(["a", "c"])
        assert canonical_encoding(g1) != canonical_encoding(g2)

    def test_different_structure_differs(self):
        p3 = cycle_graph(3).with_layer("input", {v: "a" for v in range(3)})
        l3 = _labeled_path(["a", "a", "a"])
        assert canonical_encoding(p3) != canonical_encoding(l3)

    def test_size_guard(self):
        big = cycle_graph(12).with_layer("input", {v: 0 for v in range(12)})
        with pytest.raises(GraphError, match="limited to 9"):
            canonical_encoding(big)

    def test_canonical_is_minimum_over_orders(self):
        import itertools

        g = _labeled_path(["a", "a", "b"])
        explicit_min = min(
            encode_ordered_graph(g, list(order))
            for order in itertools.permutations(g.nodes)
        )
        assert canonical_encoding(g) == explicit_min
