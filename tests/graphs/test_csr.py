"""Unit tests for the CSR array mirror (`repro.graphs.csr`).

The CSR core is an internal representation: these tests pin its
structural contracts (row layout, port order, label ranks), its
lifecycle (one build per graph instance, surviving cache clears,
dropped on pickling), and its BFS kernels against a dict-walking
reference.
"""

from __future__ import annotations

import pickle

from repro.graphs.builders import (
    cycle_graph,
    hypercube_graph,
    path_graph,
    random_connected_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.csr import CSRGraph, csr_of
from repro.graphs.labeled_graph import LabeledGraph
from repro.views.view_tree import clear_caches


def reference_distances(graph, source):
    """Plain dict BFS over the public neighbor API."""
    dist = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            for w in graph.neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    next_frontier.append(w)
        frontier = next_frontier
    return dist


class TestStructure:
    def test_rows_match_neighbors(self):
        g = with_uniform_input(random_connected_graph(24, 0.2, seed=3))
        csr = csr_of(g)
        for i, v in enumerate(csr.nodes):
            row = [csr.nodes[j] for j in csr.neighbors_idx(i)]
            assert tuple(row) == g.neighbors(v)
            assert csr.degree_idx(i) == g.degree(v)

    def test_offsets_are_row_pointers(self):
        g = star_graph(5)
        csr = csr_of(g)
        assert len(csr.offsets) == csr.num_nodes + 1
        assert csr.offsets[0] == 0
        assert csr.offsets[-1] == len(csr.targets) == 2 * g.num_edges
        for i in range(csr.num_nodes):
            assert list(csr.targets[csr.offsets[i] : csr.offsets[i + 1]]) == list(
                csr.adjacency[i]
            )

    def test_ports_follow_graph_port_order(self):
        # A non-default port numbering must survive the index translation.
        ports = {0: (2, 1), 1: (0, 2), 2: (1, 0)}
        g = LabeledGraph([(0, 1), (1, 2), (0, 2)], ports=ports)
        csr = csr_of(g)
        for v, ordering in ports.items():
            i = csr.index[v]
            assert [csr.nodes[j] for j in csr.ports_idx(i)] == list(ordering)

    def test_label_ranks_group_equal_labels(self):
        g = cycle_graph(6).with_layer("input", {v: v % 2 for v in range(6)})
        csr = csr_of(g)
        assert csr.num_labels == 2
        for i, v in enumerate(csr.nodes):
            assert csr.label_values[csr.label_ranks[i]] == g.label(v)
        layer = csr.layer_ranks["input"]
        assert [csr.layer_values["input"][r] for r in layer] == [
            v % 2 for v in range(6)
        ]

    def test_single_node_graph(self):
        g = LabeledGraph([], nodes=["only"])
        csr = csr_of(g)
        assert csr.num_nodes == 1
        assert list(csr.offsets) == [0, 0]
        assert csr.neighbors_idx(0) == []
        assert csr.distance_idx(0, 0) == 0
        assert csr.within_idx(0, 3) == [0]


class TestLifecycle:
    def test_memoized_per_instance(self):
        g = with_uniform_input(cycle_graph(8))
        assert csr_of(g) is csr_of(g)

    def test_survives_view_cache_clears(self):
        g = with_uniform_input(cycle_graph(8))
        csr = csr_of(g)
        clear_caches()
        assert csr_of(g) is csr

    def test_equal_instances_build_separate_mirrors(self):
        a = with_uniform_input(cycle_graph(8))
        b = with_uniform_input(cycle_graph(8))
        assert a == b
        assert csr_of(a) is not csr_of(b)

    def test_pickle_drops_the_mirror(self):
        g = with_uniform_input(cycle_graph(8))
        csr_of(g)
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g
        assert clone._csr is None
        assert isinstance(csr_of(clone), CSRGraph)


class TestBFSKernels:
    def test_distance_matches_reference(self):
        for g in (
            with_uniform_input(cycle_graph(11)),
            hypercube_graph(4),
            random_connected_graph(30, 0.12, seed=9),
            path_graph(7),
        ):
            csr = csr_of(g)
            for v in g.nodes:
                dist = reference_distances(g, v)
                i = csr.index[v]
                for u in g.nodes:
                    assert csr.distance_idx(i, csr.index[u]) == dist[u]

    def test_within_matches_reference_and_is_sorted(self):
        g = random_connected_graph(25, 0.15, seed=4)
        csr = csr_of(g)
        for v in g.nodes:
            dist = reference_distances(g, v)
            i = csr.index[v]
            for hops in range(5):
                expected = sorted(csr.index[u] for u, d in dist.items() if d <= hops)
                assert csr.within_idx(i, hops) == expected

    def test_unreachable_is_minus_one(self):
        g = LabeledGraph([(0, 1), (2, 3)], check_connected=False)
        csr = csr_of(g)
        assert csr.distance_idx(0, csr.index[2]) == -1
        assert csr.within_idx(0, 10) == [0, 1]

    def test_epoch_buffer_reuse_keeps_queries_independent(self):
        # Interleaved queries share one visited buffer; the epoch stamps
        # must keep them from seeing each other's marks.
        g = with_uniform_input(cycle_graph(10))
        csr = csr_of(g)
        first = csr.within_idx(0, 2)
        for source in range(csr.num_nodes):
            csr.distance_idx(source, (source + 5) % 10)
        assert csr.within_idx(0, 2) == first
        epochs_before = csr._epoch
        csr.distance_idx(0, 5)
        assert csr._epoch == epochs_before + 1
