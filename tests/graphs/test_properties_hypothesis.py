"""Property-based tests for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graphs.builders import random_connected_graph, with_uniform_input
from repro.graphs.coloring import (
    greedy_k_hop_coloring,
    is_k_hop_coloring,
)
from repro.graphs.encoding import canonical_encoding
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import lift_graph
from repro.factor.factorizing_map import FactorizingMap
from repro.graphs.properties import diameter, is_connected


graph_params = st.tuples(
    st.integers(min_value=1, max_value=12),  # nodes
    st.floats(min_value=0.0, max_value=0.6),  # extra edge probability
    st.integers(min_value=0, max_value=10_000),  # seed
)


@given(graph_params)
@settings(max_examples=60, deadline=None)
def test_random_graphs_are_simple_and_connected(params):
    n, p, seed = params
    g = random_connected_graph(n, p, seed=seed)
    assert g.num_nodes == n
    assert is_connected(g)
    for u, v in g.edges():
        assert u != v


@given(graph_params, st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_greedy_coloring_always_proper(params, k):
    n, p, seed = params
    g = random_connected_graph(n, p, seed=seed)
    coloring = greedy_k_hop_coloring(g, k)
    assert is_k_hop_coloring(g, coloring, k)


@given(graph_params)
@settings(max_examples=30, deadline=None)
def test_diameter_bounded_by_node_count(params):
    n, p, seed = params
    g = random_connected_graph(n, p, seed=seed)
    assert diameter(g) <= n - 1 if n > 1 else diameter(g) == 0


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=1000),
    st.permutations(list(range(6))),
)
@settings(max_examples=30, deadline=None)
def test_canonical_encoding_invariant_under_relabeling(n, seed, perm):
    g = with_uniform_input(random_connected_graph(n, 0.4, seed=seed))
    mapping = {v: f"node-{perm[v]}" for v in g.nodes}
    renamed = g.relabel_nodes(mapping)
    assert canonical_encoding(g) == canonical_encoding(renamed)
    assert are_isomorphic(g, renamed)


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_lift_projection_is_always_a_factorizing_map(n, fiber, seed):
    base = with_uniform_input(random_connected_graph(n, 0.5, seed=seed))
    if fiber > 1 and base.num_edges == base.num_nodes - 1:
        return  # trees have no connected nontrivial lifts
    lift, projection = lift_graph(base, fiber, seed=seed)
    fm = FactorizingMap(lift, base, projection)
    assert fm.multiplicity == fiber
