"""Tests for circulant, wheel and caterpillar builders."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import (
    caterpillar_graph,
    circulant_graph,
    cycle_graph,
    wheel_graph,
)
from repro.graphs.isomorphism import are_isomorphic, is_vertex_transitive
from repro.graphs.properties import degree_profile, is_connected, is_regular


def _uniform(graph):
    return graph.with_layer("input", {v: 0 for v in graph.nodes})


class TestCirculant:
    def test_offset_one_is_cycle(self):
        assert are_isomorphic(
            _uniform(circulant_graph(7, [1])), _uniform(cycle_graph(7))
        )

    def test_squared_cycle(self):
        g = circulant_graph(8, [1, 2])
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert is_connected(g)

    def test_vertex_transitive(self):
        assert is_vertex_transitive(_uniform(circulant_graph(6, [1, 2])))

    def test_offsets_normalized(self):
        a = circulant_graph(8, [1, 7])  # 7 ≡ -1: same edges as [1]
        b = circulant_graph(8, [1])
        assert a == b

    def test_disconnected_circulant_rejected(self):
        # C6(3) is three disjoint edges; the connectivity check must fire.
        with pytest.raises(GraphError, match="not connected"):
            circulant_graph(6, [3])

    def test_zero_offsets_rejected(self):
        with pytest.raises(GraphError, match="nonzero"):
            circulant_graph(5, [0, 5])

    def test_too_small(self):
        with pytest.raises(GraphError):
            circulant_graph(2, [1])


class TestWheel:
    def test_structure(self):
        g = wheel_graph(5)
        assert g.num_nodes == 6
        assert g.degree(0) == 5
        assert all(g.degree(v) == 3 for v in range(1, 6))

    def test_not_regular_except_w3(self):
        assert is_regular(wheel_graph(3))  # W3 = K4
        assert not is_regular(wheel_graph(5))

    def test_too_small(self):
        with pytest.raises(GraphError):
            wheel_graph(2)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar_graph(3, 2)
        assert g.num_nodes == 9
        assert degree_profile(g).count(1) == 6  # the legs

    def test_bare_spine_is_path(self):
        from repro.graphs.builders import path_graph

        assert are_isomorphic(
            _uniform(caterpillar_graph(4, 0)), _uniform(path_graph(4))
        )

    def test_single_spine_node(self):
        g = caterpillar_graph(1, 3)
        assert g.degree(0) == 3

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            caterpillar_graph(0, 1)
        with pytest.raises(GraphError):
            caterpillar_graph(2, -1)
