"""Tests for labeled isomorphism, automorphisms, vertex-transitivity."""

from __future__ import annotations

from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.isomorphism import (
    are_isomorphic,
    automorphisms,
    find_isomorphism,
    is_vertex_transitive,
)


def _uniform(graph, value="x"):
    return graph.with_layer("input", {v: value for v in graph.nodes})


class TestIsomorphism:
    def test_identical_graphs(self):
        assert are_isomorphic(_uniform(cycle_graph(5)), _uniform(cycle_graph(5)))

    def test_relabeled_graphs(self):
        g = _uniform(path_graph(4))
        h = g.relabel_nodes({0: "d", 1: "c", 2: "b", 3: "a"})
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        for u, v in g.edges():
            assert h.has_edge(mapping[u], mapping[v])

    def test_size_mismatch(self):
        assert not are_isomorphic(_uniform(cycle_graph(4)), _uniform(cycle_graph(5)))

    def test_labels_respected(self):
        g = path_graph(2).with_layer("input", {0: "a", 1: "b"})
        h = path_graph(2).with_layer("input", {0: "b", 1: "a"})
        mapping = find_isomorphism(g, h)
        assert mapping == {0: 1, 1: 0}

    def test_label_blocked_isomorphism(self):
        g = path_graph(2).with_layer("input", {0: "a", 1: "a"})
        h = path_graph(2).with_layer("input", {0: "a", 1: "b"})
        assert not are_isomorphic(g, h)

    def test_structure_blocked(self):
        star = _uniform(star_graph(3))
        path = _uniform(path_graph(4))
        assert not are_isomorphic(star, path)

    def test_layer_names_must_match(self):
        g = path_graph(2).with_layer("input", {0: "a", 1: "a"})
        h = path_graph(2).with_layer("other", {0: "a", 1: "a"})
        assert not are_isomorphic(g, h)


class TestAutomorphisms:
    def test_cycle_automorphism_count(self):
        # Dihedral group: 2n automorphisms for an unlabeled n-cycle.
        assert len(automorphisms(_uniform(cycle_graph(5)))) == 10

    def test_path_automorphism_count(self):
        assert len(automorphisms(_uniform(path_graph(4)))) == 2

    def test_labels_break_symmetry(self):
        g = cycle_graph(4).with_layer("input", {0: "a", 1: "b", 2: "a", 3: "b"})
        assert len(automorphisms(g)) == 4  # rotations by 2 and reflections
        g2 = cycle_graph(4).with_layer("input", {0: "a", 1: "b", 2: "c", 3: "d"})
        assert len(automorphisms(g2)) == 1


class TestVertexTransitivity:
    def test_cycle_transitive(self):
        assert is_vertex_transitive(_uniform(cycle_graph(6)))

    def test_complete_transitive(self):
        assert is_vertex_transitive(_uniform(complete_graph(4)))

    def test_petersen_transitive(self):
        assert is_vertex_transitive(_uniform(petersen_graph()))

    def test_path_not_transitive(self):
        assert not is_vertex_transitive(_uniform(path_graph(4)))

    def test_star_not_transitive(self):
        assert not is_vertex_transitive(_uniform(star_graph(3)))
