"""Tests for permutation-voltage lifts (product construction)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.factor.factorizing_map import FactorizingMap
from repro.graphs.builders import cycle_graph, path_graph, petersen_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift, lift_graph
from repro.graphs.properties import is_regular


def _colored_cycle(n: int):
    g = with_uniform_input(cycle_graph(n))
    return apply_two_hop_coloring(g, greedy_two_hop_coloring(g))


class TestLiftStructure:
    def test_lift_size(self):
        base = _colored_cycle(3)
        lift, projection = lift_graph(base, 4, seed=1)
        assert lift.num_nodes == 12
        assert lift.num_edges == 12

    def test_projection_is_factorizing_map(self):
        base = _colored_cycle(3)
        lift, projection = lift_graph(base, 3, seed=2)
        fm = FactorizingMap(lift, base, projection)  # verifies on construction
        assert fm.multiplicity == 3

    def test_labels_lifted(self):
        base = _colored_cycle(3)
        lift, projection = lift_graph(base, 2, seed=0)
        for v in lift.nodes:
            assert lift.label(v) == base.label(projection[v])

    def test_fiber_size_one_is_isomorphic_copy(self):
        base = _colored_cycle(5)
        lift, projection = lift_graph(base, 1)
        assert are_isomorphic(lift, base)

    def test_degree_preserved(self):
        base = with_uniform_input(petersen_graph())
        lift, _ = lift_graph(base, 2, seed=3)
        assert is_regular(lift)
        assert lift.degree(lift.nodes[0]) == 3


class TestCyclicLift:
    def test_cyclic_lift_of_c3_is_big_cycle(self):
        """The paper's Figure 2 tower: cyclic lifts of C3 are C6 and C12."""
        base = _colored_cycle(3)
        for fiber, expected in [(2, 6), (4, 12)]:
            lift, _ = cyclic_lift(base, fiber)
            assert lift.num_nodes == expected
            assert all(lift.degree(v) == 2 for v in lift.nodes)
            # A connected 2-regular graph is a single cycle.

    def test_explicit_voltages_validated(self):
        base = _colored_cycle(3)
        voltages = {edge: (0, 0) for edge in base.edges()}
        with pytest.raises(GraphError, match="permutation"):
            lift_graph(base, 2, voltages=voltages)

    def test_missing_voltage_rejected(self):
        base = _colored_cycle(3)
        with pytest.raises(GraphError, match="missing voltage"):
            lift_graph(base, 2, voltages={})

    def test_tree_base_rejected_for_nontrivial_fiber(self):
        base = with_uniform_input(path_graph(2))
        with pytest.raises(GraphError, match="tree has no connected lift"):
            lift_graph(base, 2)

    def test_disconnected_identity_lift_rejected(self):
        base = _colored_cycle(4)
        identity = {edge: (0, 1) for edge in base.edges()}
        with pytest.raises(GraphError, match="not connected"):
            lift_graph(base, 2, voltages=identity)

    def test_fiber_size_zero_rejected(self):
        with pytest.raises(GraphError, match="at least 1"):
            lift_graph(_colored_cycle(3), 0)
