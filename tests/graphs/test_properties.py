"""Tests for structural graph properties."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import (
    degree_profile,
    diameter,
    eccentricity,
    is_connected,
    is_regular,
    max_degree,
)


class TestConnectivity:
    def test_connected(self):
        assert is_connected(cycle_graph(5))

    def test_disconnected_fragment(self):
        g = LabeledGraph([(0, 1), (2, 3)], check_connected=False)
        assert not is_connected(g)

    def test_single_node_connected(self):
        assert is_connected(path_graph(1))


class TestDistances:
    def test_cycle_diameter(self):
        assert diameter(cycle_graph(6)) == 3
        assert diameter(cycle_graph(7)) == 3

    def test_path_diameter(self):
        assert diameter(path_graph(5)) == 4

    def test_complete_diameter(self):
        assert diameter(complete_graph(6)) == 1

    def test_star_eccentricities(self):
        g = star_graph(4)
        assert eccentricity(g, 0) == 1
        assert eccentricity(g, 1) == 2

    def test_eccentricity_on_fragment_raises(self):
        g = LabeledGraph([(0, 1), (2, 3)], check_connected=False)
        with pytest.raises(GraphError, match="disconnected"):
            eccentricity(g, 0)


class TestDegrees:
    def test_degree_profile_sorted(self):
        assert degree_profile(star_graph(3)) == (1, 1, 1, 3)

    def test_regularity(self):
        assert is_regular(cycle_graph(4))
        assert is_regular(hypercube_graph(3))
        assert not is_regular(path_graph(3))

    def test_max_degree(self):
        assert max_degree(star_graph(7)) == 7
