"""Unit tests for the LabeledGraph core structure."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, LabelingError
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.builders import cycle_graph, path_graph


class TestConstruction:
    def test_basic_triangle(self):
        g = LabeledGraph([(0, 1), (1, 2), (0, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.nodes == (0, 1, 2)

    def test_loop_rejected(self):
        with pytest.raises(GraphError, match="loop"):
            LabeledGraph([(0, 0)])

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphError, match="parallel"):
            LabeledGraph([(0, 1), (1, 0)])

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError, match="not connected"):
            LabeledGraph([(0, 1), (2, 3)])

    def test_disconnected_allowed_when_unchecked(self):
        g = LabeledGraph([(0, 1), (2, 3)], check_connected=False)
        assert g.num_nodes == 4

    def test_empty_rejected(self):
        with pytest.raises(GraphError, match="at least one node"):
            LabeledGraph([])

    def test_single_node(self):
        g = LabeledGraph([], nodes=[0])
        assert g.num_nodes == 1
        assert g.degree(0) == 0

    def test_isolated_extra_node_rejected_when_checked(self):
        with pytest.raises(GraphError, match="not connected"):
            LabeledGraph([(0, 1)], nodes=[0, 1, 2])


class TestStructure:
    def test_neighbors_sorted(self):
        g = LabeledGraph([(2, 0), (2, 1), (2, 3)])
        assert g.neighbors(2) == (0, 1, 3)

    def test_degree(self):
        g = cycle_graph(5)
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_unknown_node_raises(self):
        g = cycle_graph(3)
        with pytest.raises(GraphError, match="unknown node"):
            g.neighbors(99)

    def test_edges_iteration_sorted_and_unique(self):
        g = cycle_graph(4)
        assert list(g.edges()) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_has_edge_symmetric(self):
        g = path_graph(3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_distance(self):
        g = cycle_graph(6)
        assert g.distance(0, 3) == 3
        assert g.distance(0, 5) == 1
        assert g.distance(2, 2) == 0

    def test_nodes_within(self):
        g = cycle_graph(6)
        assert g.nodes_within(0, 0) == (0,)
        assert g.nodes_within(0, 1) == (0, 1, 5)
        assert g.nodes_within(0, 2) == (0, 1, 2, 4, 5)
        assert g.nodes_within(0, 3) == (0, 1, 2, 3, 4, 5)

    def test_nodes_within_negative_raises(self):
        with pytest.raises(GraphError, match="nonnegative"):
            cycle_graph(3).nodes_within(0, -1)

    def test_closed_neighborhood(self):
        g = path_graph(3)
        assert g.closed_neighborhood(1) == (0, 1, 2)


class TestPorts:
    def test_default_ports_sorted(self):
        g = LabeledGraph([(1, 0), (1, 2)])
        assert g.ports(1) == (0, 2)
        assert g.port_to_neighbor(1, 0) == 0
        assert g.neighbor_to_port(1, 2) == 1

    def test_explicit_ports(self):
        g = LabeledGraph([(1, 0), (1, 2)], ports={0: [1], 1: [2, 0], 2: [1]})
        assert g.ports(1) == (2, 0)
        assert g.port_to_neighbor(1, 0) == 2

    def test_bad_port_numbering_rejected(self):
        with pytest.raises(GraphError, match="permutation"):
            LabeledGraph([(1, 0), (1, 2)], ports={0: [1], 1: [0, 0], 2: [1]})

    def test_port_out_of_range(self):
        g = path_graph(2)
        with pytest.raises(GraphError, match="ports 0"):
            g.port_to_neighbor(0, 5)

    def test_non_neighbor_port_lookup(self):
        g = path_graph(3)
        with pytest.raises(GraphError, match="not a neighbor"):
            g.neighbor_to_port(0, 2)


class TestLayers:
    def test_with_layer_and_label(self):
        g = path_graph(2).with_layer("input", {0: "a", 1: "b"})
        assert g.label(0) == ("a",)
        assert g.label_of(1, "input") == "b"
        assert g.layer_names == ("input",)

    def test_composed_label_order(self):
        g = (
            path_graph(2)
            .with_layer("input", {0: 1, 1: 2})
            .with_layer("color", {0: "x", 1: "y"})
        )
        assert g.label(0) == (1, "x")

    def test_missing_node_in_layer_rejected(self):
        with pytest.raises(LabelingError, match="does not label"):
            path_graph(3).with_layer("input", {0: 1, 1: 2})

    def test_extra_node_in_layer_rejected(self):
        with pytest.raises(LabelingError, match="unknown nodes"):
            path_graph(2).with_layer("input", {0: 1, 1: 2, 7: 3})

    def test_without_layer(self):
        g = path_graph(2).with_layer("input", {0: 1, 1: 2})
        assert g.without_layer("input").layer_names == ()
        with pytest.raises(LabelingError, match="no layer"):
            g.without_layer("nope")

    def test_with_only_layers_reorders(self):
        g = (
            path_graph(2)
            .with_layer("a", {0: 1, 1: 1})
            .with_layer("b", {0: 2, 1: 2})
        )
        reordered = g.with_only_layers(["b", "a"])
        assert reordered.label(0) == (2, 1)

    def test_map_layer(self):
        g = path_graph(2).with_layer("input", {0: 1, 1: 2})
        doubled = g.map_layer("input", lambda v, x: x * 2)
        assert doubled.label_of(0, "input") == 2
        assert g.label_of(0, "input") == 1  # original untouched

    def test_immutability_of_layer_accessor(self):
        g = path_graph(2).with_layer("input", {0: 1, 1: 2})
        g.layer("input")[0] = 99
        assert g.label_of(0, "input") == 1


class TestEqualityAndRelabel:
    def test_equality_same_structure(self):
        a = cycle_graph(4).with_layer("input", {v: 0 for v in range(4)})
        b = cycle_graph(4).with_layer("input", {v: 0 for v in range(4)})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_labels(self):
        a = path_graph(2).with_layer("input", {0: 0, 1: 0})
        b = path_graph(2).with_layer("input", {0: 0, 1: 1})
        assert a != b

    def test_relabel_nodes(self):
        g = path_graph(3).with_layer("input", {0: "a", 1: "b", 2: "c"})
        renamed = g.relabel_nodes({0: "x", 1: "y", 2: "z"})
        assert renamed.has_edge("x", "y")
        assert renamed.label_of("z", "input") == "c"

    def test_relabel_must_be_bijective(self):
        g = path_graph(2)
        with pytest.raises(GraphError, match="injective"):
            g.relabel_nodes({0: "x", 1: "x"})

    def test_relabel_must_cover_nodes(self):
        g = path_graph(2)
        with pytest.raises(GraphError, match="cover"):
            g.relabel_nodes({0: "x"})
