"""Unit tests for the graph family builders."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import (
    binary_tree_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
    with_uniform_input,
)
from repro.graphs.properties import degree_profile, diameter, is_connected, is_regular


class TestDeterministicFamilies:
    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_nodes == 5 and g.num_edges == 5
        assert is_regular(g)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert degree_profile(g) == (1, 1, 2, 2)

    def test_path_single(self):
        assert path_graph(1).num_nodes == 1

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4
        assert all(g.degree(v) == 1 for v in range(1, 5))

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.num_edges == 6
        assert degree_profile(g) == (2, 2, 2, 3, 3)

    def test_binary_tree(self):
        g = binary_tree_graph(2)
        assert g.num_nodes == 7
        assert g.degree(0) == 2
        assert degree_profile(g).count(1) == 4  # leaves

    def test_binary_tree_depth_zero(self):
        assert binary_tree_graph(0).num_nodes == 1

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.num_nodes == 8 and g.num_edges == 12
        assert is_regular(g)
        assert diameter(g) == 3

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.num_nodes == 6 and g.num_edges == 7

    def test_torus(self):
        g = torus_graph(3, 4)
        assert g.num_nodes == 12
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_torus_too_small(self):
        with pytest.raises(GraphError, match="at least 3"):
            torus_graph(2, 5)

    def test_petersen(self):
        g = petersen_graph()
        assert g.num_nodes == 10 and g.num_edges == 15
        assert is_regular(g)
        assert diameter(g) == 2


class TestRandomFamilies:
    def test_random_connected_deterministic_for_seed(self):
        a = random_connected_graph(10, 0.3, seed=5)
        b = random_connected_graph(10, 0.3, seed=5)
        assert a == b

    def test_random_connected_varies_with_seed(self):
        a = random_connected_graph(10, 0.3, seed=5)
        b = random_connected_graph(10, 0.3, seed=6)
        assert a != b

    def test_random_connected_is_connected(self):
        for seed in range(5):
            assert is_connected(random_connected_graph(12, 0.1, seed=seed))

    def test_random_connected_probability_bounds(self):
        with pytest.raises(GraphError):
            random_connected_graph(5, 1.5)

    def test_random_regular(self):
        g = random_regular_graph(8, 3, seed=1)
        assert all(g.degree(v) == 3 for v in g.nodes)
        assert is_connected(g)

    def test_random_regular_parity_rejected(self):
        with pytest.raises(GraphError, match="even"):
            random_regular_graph(5, 3)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)


class TestUniformInput:
    def test_with_uniform_input_includes_degree(self):
        g = with_uniform_input(cycle_graph(4), value=7)
        for v in g.nodes:
            assert g.label_of(v, "input") == (2, 7)

    def test_input_degree_matches_structure(self):
        g = with_uniform_input(star_graph(3))
        assert g.label_of(0, "input")[0] == 3
        assert g.label_of(1, "input")[0] == 1
