"""Tests for graph JSON serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graphs.builders import (
    cycle_graph,
    petersen_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestRoundTrip:
    def test_plain_graph(self):
        g = with_uniform_input(cycle_graph(5))
        assert graph_from_json(graph_to_json(g)) == g

    def test_colored_graph(self):
        g = colored(with_uniform_input(petersen_graph()))
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_custom_ports_preserved(self):
        g = cycle_graph(4).with_ports(
            {0: [3, 1], 1: [2, 0], 2: [3, 1], 3: [0, 2]}
        )
        restored = graph_from_json(graph_to_json(g))
        assert restored.ports(1) == (2, 0)

    def test_tuple_labels_stay_tuples(self):
        g = cycle_graph(3).with_layer("input", {v: (2, "x", (1, 2)) for v in range(3)})
        restored = graph_from_json(graph_to_json(g))
        assert restored.label_of(0, "input") == (2, "x", (1, 2))

    def test_string_node_ids(self):
        from repro.graphs.labeled_graph import LabeledGraph

        g = LabeledGraph([("a", "b"), ("b", "c")])
        assert graph_from_json(graph_to_json(g)) == g

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_round_trip(self, n, seed):
        g = colored(with_uniform_input(random_connected_graph(n, 0.3, seed=seed)))
        assert graph_from_json(graph_to_json(g)) == g


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError, match="unsupported graph format"):
            graph_from_dict({"format": 99})

    def test_unserializable_label_rejected(self):
        g = cycle_graph(3).with_layer("input", {v: object() for v in range(3)})
        with pytest.raises(GraphError, match="not serializable"):
            graph_to_dict(g)
