"""Edge cases across the graph substrate: exotic node ids and labels."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.views.local_views import all_views, view_partition
from repro.views.refinement import refinement_partition
from repro.factor.quotient import infinite_view_graph
from repro.graphs.coloring import apply_two_hop_coloring


class TestExoticNodeIds:
    def test_string_nodes(self):
        g = LabeledGraph([("alpha", "beta"), ("beta", "gamma")])
        assert g.nodes == ("alpha", "beta", "gamma")
        assert g.distance("alpha", "gamma") == 2

    def test_tuple_nodes(self):
        g = LabeledGraph([((0, 0), (0, 1)), ((0, 1), (1, 0))])
        assert g.degree((0, 1)) == 2

    def test_mixed_type_nodes_deterministic(self):
        a = LabeledGraph([(1, "x"), ("x", (2, 3))])
        b = LabeledGraph([((2, 3), "x"), ("x", 1)])
        assert a.nodes == b.nodes

    def test_numeric_order_not_lexicographic(self):
        g = LabeledGraph([(i, i + 1) for i in range(11)])
        assert g.nodes == tuple(range(12))  # 10 < 11 numerically, not "10" < "2"


class TestExoticLabels:
    def test_nested_container_labels(self):
        labels = {
            0: {"role": "relay", "tags": ["a", "b"]},
            1: {"role": "edge", "tags": []},
        }
        g = LabeledGraph([(0, 1)]).with_layer("input", labels)
        assert g.label(0) == (labels[0],)
        # Views over unhashable labels still work (freezing is internal).
        views = all_views(g, 3)
        assert views[0] is not views[1]

    def test_none_labels(self):
        g = LabeledGraph([(0, 1), (1, 2)]).with_layer(
            "input", {0: None, 1: "mid", 2: None}
        )
        partition = view_partition(g, 3)
        assert sorted(map(sorted, partition)) == [[0, 2], [1]]

    def test_refinement_with_container_labels(self):
        g = LabeledGraph([(0, 1), (1, 2), (2, 3)]).with_layer(
            "input", {0: [1], 1: [2], 2: [2], 3: [1]}
        )
        partition = refinement_partition(g)
        assert sorted(map(sorted, partition)) == [[0, 3], [1, 2]]


class TestQuotientEdgeCases:
    def test_quotient_with_string_nodes(self):
        g = LabeledGraph(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
        )
        colored = apply_two_hop_coloring(
            g.with_layer("input", {v: (2, 0) for v in g.nodes}),
            {"a": 0, "b": 1, "c": 2, "d": 3},
        )
        result = infinite_view_graph(colored)
        assert result.is_trivial

    def test_two_hop_colored_square_with_period_two_colors_rejected(self):
        g = LabeledGraph([(0, 1), (1, 2), (2, 3), (3, 0)]).with_layer(
            "color", {0: "x", 1: "y", 2: "x", 3: "y"}
        )
        from repro.exceptions import FactorError

        with pytest.raises(FactorError):
            infinite_view_graph(g)
