"""Tests for k-hop coloring validation and greedy construction."""

from __future__ import annotations

import pytest

from repro.exceptions import LabelingError
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.coloring import (
    apply_two_hop_coloring,
    greedy_k_hop_coloring,
    greedy_two_hop_coloring,
    is_k_hop_coloring,
    is_two_hop_coloring,
    k_hop_conflicts,
    num_colors,
)


class TestValidation:
    def test_proper_two_hop_on_cycle(self):
        g = cycle_graph(6)
        coloring = {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}
        assert is_two_hop_coloring(g, coloring)

    def test_adjacent_conflict(self):
        g = path_graph(3)
        coloring = {0: 0, 1: 0, 2: 1}
        assert not is_k_hop_coloring(g, coloring, 1)
        assert k_hop_conflicts(g, coloring, 1) == [(0, 1)]

    def test_two_hop_conflict_not_one_hop(self):
        g = path_graph(3)
        coloring = {0: 0, 1: 1, 2: 0}  # ends share a color at distance 2
        assert is_k_hop_coloring(g, coloring, 1)
        assert not is_two_hop_coloring(g, coloring)
        assert (0, 2) in k_hop_conflicts(g, coloring, 2)

    def test_missing_node_rejected(self):
        with pytest.raises(LabelingError, match="does not cover"):
            is_two_hop_coloring(path_graph(3), {0: 0, 1: 1})

    def test_bad_k_rejected(self):
        with pytest.raises(LabelingError, match="at least 1"):
            k_hop_conflicts(path_graph(2), {0: 0, 1: 1}, 0)

    def test_single_node_always_valid(self):
        g = path_graph(1)
        assert is_two_hop_coloring(g, {0: 42})


class TestGreedy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(7), path_graph(6), complete_graph(5), star_graph(5), petersen_graph()],
        ids=["cycle7", "path6", "k5", "star5", "petersen"],
    )
    def test_greedy_is_valid(self, graph, k):
        coloring = greedy_k_hop_coloring(graph, k)
        assert is_k_hop_coloring(graph, coloring, k)

    def test_greedy_two_hop_on_complete_uses_n_colors(self):
        g = complete_graph(4)
        coloring = greedy_two_hop_coloring(g)
        assert num_colors(coloring) == 4

    def test_greedy_color_count_bounded(self):
        g = petersen_graph()  # Delta = 3
        coloring = greedy_two_hop_coloring(g)
        assert num_colors(coloring) <= 3 * 3 + 1

    def test_apply_rejects_invalid(self):
        g = path_graph(3)
        with pytest.raises(LabelingError, match="not a 2-hop coloring"):
            apply_two_hop_coloring(g, {0: 0, 1: 1, 2: 0})

    def test_apply_attaches_layer(self):
        g = path_graph(3)
        colored = apply_two_hop_coloring(g, {0: 0, 1: 1, 2: 2})
        assert colored.has_layer("color")
        assert colored.label_of(1, "color") == 1
