"""Differential tests: CSR array kernels vs the pre-CSR reference code.

The CSR port of refinement, BFS, and quotient construction claims
*byte-identical* results — same class numbering, same round counts, same
quotient graphs and maps.  These tests embed the original dict-walking
implementations (as they stood before the CSR core landed) and compare
them against the shipped kernels across randomized graph families —
cycles, hypercubes, random regular, random connected, custom port
numberings — plus the edge-case battery (round caps, single node,
discrete partitions).
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.builders import (
    cycle_graph,
    hypercube_graph,
    random_connected_graph,
    random_regular_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, _freeze
from repro.graphs.lifts import lift_graph
from repro.factor.quotient import infinite_view_graph
from repro.views.local_views import view_partition
from repro.views.refinement import color_refinement, refinement_partition
from repro.views.view_tree import clear_caches


# ----------------------------------------------------------------------
# Reference implementations (pre-CSR, verbatim semantics)
# ----------------------------------------------------------------------


def reference_refinement(graph, max_rounds=None):
    """The original dict-walking color refinement (no memoization)."""
    nodes = graph.nodes
    num_nodes = graph.num_nodes
    index = {v: i for i, v in enumerate(nodes)}
    adjacency = [tuple(index[u] for u in graph.neighbors(v)) for v in nodes]
    initial = [repr(_freeze(graph.label(v))) for v in nodes]
    seed_palette = {key: i for i, key in enumerate(sorted(set(initial)))}
    color = [seed_palette[key] for key in initial]
    history = [len(seed_palette)]
    rounds = 0
    stable = len(seed_palette) == num_nodes
    limit = num_nodes if max_rounds is None else max_rounds
    while not stable and rounds < limit:
        signature = [
            (color[i], tuple(sorted([color[j] for j in adjacency[i]])))
            for i in range(num_nodes)
        ]
        palette = {sig: k for k, sig in enumerate(sorted(set(signature)))}
        if len(palette) == history[-1]:
            stable = True
            break
        color = [palette[sig] for sig in signature]
        rounds += 1
        history.append(len(palette))
        if len(palette) == num_nodes:
            stable = True
    return {v: color[index[v]] for v in nodes}, rounds, tuple(history), stable


def reference_quotient_structure(graph):
    """Quotient node/edge structure derived from the reference classes."""
    classes, _, _, stable = reference_refinement(graph)
    assert stable
    num_classes = len(set(classes.values()))
    edges = set()
    for u in graph.nodes:
        for w in graph.neighbors(u):
            c, d = classes[u], classes[w]
            edges.add((c, d) if c < d else (d, c))
    return classes, num_classes, edges


def reference_distances(graph, source):
    dist = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            for w in graph.neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    next_frontier.append(w)
        frontier = next_frontier
    return dist


# ----------------------------------------------------------------------
# Graph families under test
# ----------------------------------------------------------------------


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def port_scrambled_cycle(n, seed):
    """A uniform cycle with randomized (non-default) port numberings."""
    base = cycle_graph(n)
    rng = random.Random(seed)
    ports = {}
    for v in base.nodes:
        ordering = list(base.neighbors(v))
        rng.shuffle(ordering)
        ports[v] = tuple(ordering)
    return with_uniform_input(
        LabeledGraph(base.edges(), ports=ports)
    )


def family(seed):
    rng = random.Random(seed)
    return [
        with_uniform_input(cycle_graph(rng.randrange(4, 20))),
        hypercube_graph(rng.randrange(2, 5)),
        with_uniform_input(
            random_regular_graph(2 * rng.randrange(3, 9), 3, seed=seed)
        ),
        random_connected_graph(rng.randrange(8, 40), 0.15, seed=seed),
        colored(with_uniform_input(cycle_graph(rng.randrange(5, 16)))),
        port_scrambled_cycle(rng.randrange(4, 16), seed),
    ]


SEEDS = [1, 7, 23, 101]


# ----------------------------------------------------------------------
# Differential properties
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_refinement_matches_reference(seed):
    for g in family(seed):
        clear_caches()
        classes, rounds, history, stable = reference_refinement(g)
        result = color_refinement(g)
        assert dict(result.classes) == classes
        assert result.rounds_to_stable == rounds
        assert result.history == history
        assert result.stable == stable


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_rounds", [0, 1, 2, 100])
def test_capped_refinement_matches_reference(seed, max_rounds):
    for g in family(seed):
        classes, rounds, history, stable = reference_refinement(g, max_rounds)
        result = color_refinement(g, max_rounds=max_rounds)
        assert dict(result.classes) == classes
        assert result.rounds_to_stable == rounds
        assert result.history == history
        assert result.stable == stable


@pytest.mark.parametrize("seed", SEEDS)
def test_partitions_match_reference_grouping(seed):
    for g in family(seed):
        classes, _, _, _ = reference_refinement(g)
        groups = {}
        for v in g.nodes:
            groups.setdefault(classes[v], []).append(v)
        expected = [tuple(groups[c]) for c in sorted(groups)]
        assert refinement_partition(g) == expected
        # The view partition groups nodes identically (possibly in a
        # different group order — it sorts by view, not class index).
        depth = g.num_nodes
        assert sorted(view_partition(g, depth)) == sorted(expected)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_quotient_matches_reference_structure(seed):
    for g in family(seed):
        try:
            result = infinite_view_graph(g)
        except Exception:
            continue  # not 2-hop colored enough to factorize; fine
        classes, num_classes, edges = reference_quotient_structure(g)
        assert result.graph.num_nodes == num_classes
        assert set(result.graph.edges()) == edges
        assert result.map.as_dict() == classes


def test_quotient_on_lift_recovers_base_structure():
    # cycle16: the greedy 2-hop palette pattern breaks at the wraparound,
    # so every base node has a distinct view and the lift's quotient
    # recovers the full base (16 classes, uniform fibers).
    base = colored(with_uniform_input(cycle_graph(16)))
    lift, _ = lift_graph(base, 8, seed=5)
    result = infinite_view_graph(lift)
    classes, num_classes, edges = reference_quotient_structure(lift)
    assert result.graph.num_nodes == num_classes == base.num_nodes
    assert set(result.graph.edges()) == edges
    assert result.map.as_dict() == classes
    assert result.map.multiplicity == 8


@pytest.mark.parametrize("seed", SEEDS)
def test_bfs_matches_reference(seed):
    for g in family(seed):
        for v in list(g.nodes)[:6]:
            dist = reference_distances(g, v)
            for u in list(g.nodes)[:6]:
                assert g.distance(v, u) == dist[u]
            for hops in (0, 1, 2, g.num_nodes):
                expected = tuple(
                    sorted((u for u, d in dist.items() if d <= hops))
                )
                assert g.nodes_within(v, hops) == expected


# ----------------------------------------------------------------------
# Edge-case battery
# ----------------------------------------------------------------------


def test_max_rounds_zero_returns_seed_partition():
    g = colored(with_uniform_input(cycle_graph(9)))
    result = color_refinement(g, max_rounds=0)
    reference, rounds, history, stable = reference_refinement(g, 0)
    assert dict(result.classes) == reference
    assert result.rounds_to_stable == rounds == 0
    assert result.history == history
    assert result.stable == stable


def test_single_node_graph():
    g = LabeledGraph([], nodes=["solo"])
    result = color_refinement(g)
    assert dict(result.classes) == {"solo": 0}
    assert result.stable
    assert result.rounds_to_stable == 0
    assert result.history == (1,)


def test_discrete_seed_partition_is_immediately_stable():
    g = cycle_graph(5).with_layer("input", {v: v for v in range(5)})
    result = color_refinement(g)
    reference, rounds, history, stable = reference_refinement(g)
    assert dict(result.classes) == reference
    assert result.rounds_to_stable == rounds == 0
    assert result.history == history == (5,)
    assert result.stable and stable
