"""Tests for color refinement and its equivalence to explicit views."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
    with_uniform_input,
)
from repro.views.local_views import view_partition
from repro.views.refinement import (
    color_refinement,
    refinement_partition,
    stabilization_depth,
)


def _uniform(graph):
    return graph.with_layer("input", {v: 0 for v in graph.nodes})


class TestRefinement:
    def test_uniform_cycle_collapses(self):
        result = color_refinement(_uniform(cycle_graph(6)))
        assert result.num_classes == 1
        assert result.rounds_to_stable == 0

    def test_path_classes(self):
        result = color_refinement(_uniform(path_graph(4)))
        assert result.num_classes == 2

    def test_star_classes(self):
        result = color_refinement(_uniform(star_graph(4)))
        assert result.num_classes == 2

    def test_labels_seed_refinement(self):
        g = path_graph(2).with_layer("input", {0: "a", 1: "b"})
        assert color_refinement(g).num_classes == 2

    def test_history_monotone(self):
        g = _uniform(path_graph(7))
        result = color_refinement(g)
        assert list(result.history) == sorted(result.history)

    def test_classes_canonical_across_relabeling(self):
        g = _uniform(path_graph(5))
        renamed = g.relabel_nodes({0: "e", 1: "d", 2: "c", 3: "b", 4: "a"})
        classes_g = color_refinement(g).classes
        classes_r = color_refinement(renamed).classes
        mapping = {0: "e", 1: "d", 2: "c", 3: "b", 4: "a"}
        for v in g.nodes:
            assert classes_g[v] == classes_r[mapping[v]]

    def test_max_rounds_caps_refinement(self):
        g = _uniform(path_graph(8))
        partial = color_refinement(g, max_rounds=1)
        full = color_refinement(g)
        assert partial.num_classes <= full.num_classes


class TestViewEquivalence:
    """Refinement partition == explicit view partition (the cross-check)."""

    @pytest.mark.parametrize(
        "graph",
        [
            _uniform(cycle_graph(6)),
            _uniform(path_graph(6)),
            _uniform(star_graph(4)),
            _uniform(petersen_graph()),
            cycle_graph(6).with_layer(
                "input", {0: "a", 1: "b", 2: "c", 3: "a", 4: "b", 5: "c"}
            ),
        ],
        ids=["cycle6", "path6", "star4", "petersen", "labeled-c6"],
    )
    def test_partitions_agree(self, graph):
        by_views = sorted(map(sorted, view_partition(graph, graph.num_nodes)))
        by_refinement = sorted(map(sorted, refinement_partition(graph)))
        assert by_views == by_refinement

    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_partitions_agree_random(self, n, seed):
        g = with_uniform_input(random_connected_graph(n, 0.3, seed=seed))
        by_views = sorted(map(sorted, view_partition(g, g.num_nodes)))
        by_refinement = sorted(map(sorted, refinement_partition(g)))
        assert by_views == by_refinement


class TestNorrisBound:
    """Theorem 3 (Norris): depth n views determine L_infinity."""

    @pytest.mark.parametrize(
        "graph",
        [
            _uniform(cycle_graph(8)),
            _uniform(path_graph(9)),
            _uniform(petersen_graph()),
        ],
        ids=["cycle8", "path9", "petersen"],
    )
    def test_stabilization_within_n(self, graph):
        assert stabilization_depth(graph) <= graph.num_nodes

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=50, deadline=None)
    def test_stabilization_within_n_random(self, n, seed):
        g = with_uniform_input(random_connected_graph(n, 0.25, seed=seed))
        assert 1 <= stabilization_depth(g) <= n

    def test_stable_partition_really_stable(self):
        """One extra round after the stable depth must not split further."""
        g = _uniform(path_graph(8))
        depth = stabilization_depth(g)
        assert sorted(map(sorted, view_partition(g, depth))) == sorted(
            map(sorted, view_partition(g, depth + 2))
        )


class TestResultCaching:
    """The memoization contract: structural keying, shared read-only results."""

    def test_cache_hit_returns_same_object(self):
        g = _uniform(cycle_graph(8))
        assert color_refinement(g) is color_refinement(g)

    def test_structurally_equal_graphs_share_the_result(self):
        a = _uniform(cycle_graph(8))
        b = _uniform(cycle_graph(8))
        assert a is not b and a == b
        assert color_refinement(a) is color_refinement(b)

    def test_distinct_structures_do_not_collide(self):
        a = _uniform(cycle_graph(8))
        b = _uniform(path_graph(8))
        assert color_refinement(a).num_classes != color_refinement(b).num_classes

    def test_classes_mapping_is_read_only(self):
        result = color_refinement(_uniform(star_graph(4)))
        with pytest.raises(TypeError):
            result.classes[0] = 99  # type: ignore[index]
        with pytest.raises((TypeError, AttributeError)):
            result.classes.clear()  # type: ignore[attr-defined]

    def test_capped_runs_are_not_cached(self):
        g = _uniform(path_graph(8))
        capped = color_refinement(g, max_rounds=1)
        assert color_refinement(g, max_rounds=1) is not capped
