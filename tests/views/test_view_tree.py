"""Tests for the hash-consed ViewTree structure."""

from __future__ import annotations

import pytest

from repro.views.view_tree import ViewTree


class TestConstruction:
    def test_leaf(self):
        t = ViewTree.leaf("a")
        assert t.mark == "a"
        assert t.depth == 1
        assert t.size == 1
        assert t.children == ()

    def test_interning_makes_equal_trees_identical(self):
        a = ViewTree.make("x", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        b = ViewTree.make("x", [ViewTree.leaf("b"), ViewTree.leaf("a")])
        assert a is b  # children canonically sorted, same object

    def test_different_marks_different_objects(self):
        assert ViewTree.leaf("a") is not ViewTree.leaf("b")

    def test_direct_constructor_forbidden(self):
        with pytest.raises(TypeError, match="interned"):
            ViewTree("a", (), None)

    def test_depth_and_size(self):
        inner = ViewTree.make("i", [ViewTree.leaf("l1"), ViewTree.leaf("l2")])
        root = ViewTree.make("r", [inner, ViewTree.leaf("l3")])
        assert root.depth == 3
        assert root.size == 5


class TestOrder:
    def test_compare_equal(self):
        assert ViewTree.compare(ViewTree.leaf("a"), ViewTree.leaf("a")) == 0

    def test_depth_dominates(self):
        shallow = ViewTree.leaf("z")
        deep = ViewTree.make("a", [ViewTree.leaf("a")])
        assert ViewTree.compare(shallow, deep) < 0

    def test_mark_breaks_depth_tie(self):
        assert ViewTree.leaf("a") < ViewTree.leaf("b")

    def test_children_break_mark_tie(self):
        a = ViewTree.make("x", [ViewTree.leaf("a")])
        b = ViewTree.make("x", [ViewTree.leaf("b")])
        assert a < b

    def test_total_order_antisymmetric(self):
        trees = [
            ViewTree.leaf("a"),
            ViewTree.leaf("b"),
            ViewTree.make("a", [ViewTree.leaf("a")]),
            ViewTree.make("a", [ViewTree.leaf("a"), ViewTree.leaf("b")]),
        ]
        for t1 in trees:
            for t2 in trees:
                c12 = ViewTree.compare(t1, t2)
                c21 = ViewTree.compare(t2, t1)
                assert c12 == -c21
                assert (c12 == 0) == (t1 is t2)

    def test_sorting_with_sort_key(self):
        trees = [ViewTree.leaf(m) for m in ["c", "a", "b"]]
        ordered = sorted(trees, key=lambda t: t.sort_key())
        assert [t.mark for t in ordered] == ["a", "b", "c"]


class TestOperations:
    def _chain(self, marks):
        tree = ViewTree.leaf(marks[-1])
        for mark in reversed(marks[:-1]):
            tree = ViewTree.make(mark, [tree])
        return tree

    def test_truncate(self):
        chain = self._chain(["a", "b", "c", "d"])
        assert chain.depth == 4
        cut = chain.truncate(2)
        assert cut.depth == 2
        assert cut.mark == "a"
        assert cut.children[0].mark == "b"

    def test_truncate_no_op_when_shallow(self):
        leaf = ViewTree.leaf("a")
        assert leaf.truncate(5) is leaf

    def test_truncate_bad_depth(self):
        with pytest.raises(ValueError):
            ViewTree.leaf("a").truncate(0)

    def test_truncate_memoized_consistency(self):
        chain = self._chain(["a", "b", "c", "d"])
        assert chain.truncate(2) is chain.truncate(2)

    def test_subtrees_distinct(self):
        shared = ViewTree.leaf("s")
        root = ViewTree.make("r", [shared, ViewTree.make("m", [shared])])
        subtree_list = list(root.subtrees())
        assert len(subtree_list) == 3  # root, "m"-node, shared leaf once

    def test_level_marks(self):
        root = ViewTree.make("r", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        assert root.level_marks(1) == ("r",)
        assert root.level_marks(2) == ("a", "b")
        assert root.level_marks(3) == ()

    def test_render_contains_marks(self):
        root = ViewTree.make("r", [ViewTree.leaf("a")])
        text = root.render()
        assert "'r'" in text and "'a'" in text
