"""Tests for local view construction, including the paper's Figure 1."""

from __future__ import annotations

import pytest

from repro.exceptions import ViewError
from repro.graphs.builders import cycle_graph, path_graph, star_graph
from repro.views.local_views import all_views, view, view_partition


def figure1_graph():
    """The labeled C6 of Figure 1: alternating labels around the cycle.

    The figure colors nodes u0..u5 with three colors so that antipodal
    nodes match: (u0, u3), (u1, u4), (u2, u5) share labels.
    """
    g = cycle_graph(6)
    labels = {0: "white", 1: "gray", 2: "black", 3: "white", 4: "gray", 5: "black"}
    return g.with_layer("input", labels)


class TestBasics:
    def test_depth_one_is_leaf(self):
        g = figure1_graph()
        t = view(g, 0, 1)
        assert t.depth == 1
        assert t.mark == ("white",)

    def test_depth_two_children_are_neighbor_marks(self):
        g = figure1_graph()
        t = view(g, 0, 2)
        assert t.depth == 2
        child_marks = sorted(c.mark for c in t.children)
        assert child_marks == [("black",), ("gray",)]

    def test_view_size_grows_exponentially_on_cycle(self):
        g = figure1_graph()
        t = view(g, 0, 5)
        # Each vertex has 2 children: sizes 1, 3, 7, 15, 31.
        assert t.size == 31

    def test_bad_depth(self):
        with pytest.raises(ViewError):
            view(figure1_graph(), 0, 0)

    def test_unknown_node(self):
        with pytest.raises(ViewError):
            view(figure1_graph(), 99, 2)

    def test_all_views_consistent_with_view(self):
        g = figure1_graph()
        views = all_views(g, 3)
        for v in g.nodes:
            assert views[v] is view(g, v, 3)

    def test_star_center_vs_leaf(self):
        g = star_graph(3).with_layer("input", {v: "x" for v in range(4)})
        center = view(g, 0, 3)
        leaf = view(g, 1, 3)
        assert center is not leaf
        assert len(center.children) == 3
        assert len(leaf.children) == 1


class TestFigure1:
    def test_antipodal_nodes_share_views_at_all_depths(self):
        """Figure 1's observation: nodes with the same label have equal
        depth-infinity local views in this C6 (it covers a labeled C3)."""
        g = figure1_graph()
        for depth in (1, 2, 3, 6, 8):
            views = all_views(g, depth)
            assert views[0] is views[3]
            assert views[1] is views[4]
            assert views[2] is views[5]
            assert views[0] is not views[1]

    def test_figure1_depth3_structure(self):
        """The depth-3 view of u0: root white, children {gray, black},
        each with children {white, white-side}, exactly as drawn."""
        g = figure1_graph()
        t = view(g, 0, 3)
        assert t.mark == ("white",)
        assert len(t.children) == 2
        marks = sorted(c.mark for c in t.children)
        assert marks == [("black",), ("gray",)]
        for child in t.children:
            grandchildren = sorted(c.mark for c in child.children)
            # u0's neighbors are u1 (gray) and u5 (black); u1's neighbors
            # are u0 (white) and u2 (black); u5's are u0 (white), u4 (gray).
            if child.mark == ("gray",):
                assert grandchildren == [("black",), ("white",)]
            else:
                assert grandchildren == [("gray",), ("white",)]

    def test_partition_matches_label_classes(self):
        g = figure1_graph()
        partition = view_partition(g, 6)
        assert sorted(map(sorted, partition)) == [[0, 3], [1, 4], [2, 5]]


class TestPartition:
    def test_uniform_cycle_single_class(self):
        g = cycle_graph(5).with_layer("input", {v: 0 for v in range(5)})
        assert view_partition(g, 5) == [(0, 1, 2, 3, 4)]

    def test_path_symmetry(self):
        g = path_graph(4).with_layer("input", {v: 0 for v in range(4)})
        partition = view_partition(g, 4)
        assert sorted(map(sorted, partition)) == [[0, 3], [1, 2]]

    def test_deeper_views_refine_partition(self):
        g = path_graph(5).with_layer("input", {v: 0 for v in range(5)})
        shallow = view_partition(g, 1)
        deep = view_partition(g, 5)
        assert len(shallow) <= len(deep)
        assert sorted(map(sorted, deep)) == [[0, 4], [1, 3], [2]]


class TestBuilderCaching:
    """Builder registry keys structurally: equal graphs share a builder."""

    def test_structurally_equal_graphs_share_builder(self):
        from repro.views.local_views import view_builder

        a = figure1_graph()
        b = figure1_graph()
        assert a is not b and a == b
        assert view_builder(a) is view_builder(b)

    def test_views_of_equal_graphs_are_shared_trees(self):
        a = figure1_graph()
        b = figure1_graph()
        for v, tree in all_views(a, 4).items():
            assert all_views(b, 4)[v] is tree
