"""Property tests: refinement == explicit views, under the rank engine.

The integer-ranked view engine and tuple-based refinement must preserve
the paper's core equivalence (Section 1.1 + Theorem 3): the partition by
stable refinement classes equals the partition by depth-``n`` views, and
stabilization happens within ``n`` rounds.  These properties pin the
refactor across random connected graphs, cycles, and 2-hop colored
variants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builders import (
    cycle_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.views.local_views import view_partition
from repro.views.refinement import (
    color_refinement,
    refinement_partition,
    stabilization_depth,
)


def _colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def _normalized(partition):
    return sorted(tuple(sorted(group)) for group in partition)


def _assert_equivalence(graph):
    n = graph.num_nodes
    assert _normalized(refinement_partition(graph)) == _normalized(
        view_partition(graph, n)
    )
    assert 1 <= stabilization_depth(graph) <= n


class TestRandomConnected:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_equivalence(self, n, seed):
        _assert_equivalence(with_uniform_input(random_connected_graph(n, 0.3, seed=seed)))

    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_equivalence_two_hop_colored(self, n, seed):
        g = _colored(with_uniform_input(random_connected_graph(n, 0.4, seed=seed)))
        _assert_equivalence(g)
        # A valid 2-hop coloring forces stability within one round of the
        # initial split (neighborhood marks are already distinct).
        assert color_refinement(g).stable


class TestCycles:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 8, 12, 17])
    def test_uniform_cycle(self, n):
        _assert_equivalence(with_uniform_input(cycle_graph(n)))

    @pytest.mark.parametrize("n", [3, 5, 6, 9, 12])
    def test_colored_cycle(self, n):
        _assert_equivalence(_colored(with_uniform_input(cycle_graph(n))))

    def test_uniform_cycle_is_one_class_immediately(self):
        result = color_refinement(with_uniform_input(cycle_graph(9)))
        assert result.num_classes == 1
        assert result.rounds_to_stable == 0
        assert result.stable


class TestMaxRoundsSemantics:
    """A capped run must report stability honestly (the off-by-one fix)."""

    def _line(self, n):
        # Paths refine slowly from the endpoints inward: a long path needs
        # many rounds, so small caps genuinely truncate.
        from repro.graphs.builders import path_graph

        return with_uniform_input(path_graph(n))

    def test_capped_run_is_not_reported_stable(self):
        g = self._line(12)
        full = color_refinement(g)
        assert full.stable
        capped = color_refinement(g, max_rounds=1)
        assert capped.rounds_to_stable == 1
        assert not capped.stable
        assert capped.num_classes < full.num_classes

    def test_cap_equal_to_need_is_detected_when_discrete(self):
        # path(2) with distinct labels: discrete immediately, stable with
        # zero rounds even under a cap of zero.
        from repro.graphs.builders import path_graph

        g = path_graph(2).with_layer("input", {0: "a", 1: "b"})
        capped = color_refinement(g, max_rounds=0)
        assert capped.stable
        assert capped.rounds_to_stable == 0

    def test_generous_cap_reports_stable(self):
        g = self._line(7)
        capped = color_refinement(g, max_rounds=g.num_nodes)
        assert capped.stable
        assert capped.classes == color_refinement(g).classes

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_capped_prefix_matches_uncapped_rounds(self, n, cap):
        g = self._line(n)
        capped = color_refinement(g, max_rounds=cap)
        full = color_refinement(g)
        if capped.stable:
            assert capped.classes == full.classes
        else:
            assert capped.rounds_to_stable == cap
            # history is a prefix of the full run's history
            assert full.history[: len(capped.history)] == capped.history
