"""Regression tests for the integer-ranked view tree engine.

The refactor replaced pairwise structural comparison with canonical
ranks assigned at intern time.  These tests pin the two properties the
rest of the codebase relies on: interning is order-insensitive in the
child sequence, and ranks are monotone with the documented structural
order (depth, then serialized mark, then children lexicographic).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.views.view_tree import ViewTree, clear_caches, intern_stats


def reference_compare(a: ViewTree, b: ViewTree) -> int:
    """The documented structural order, computed the slow pairwise way."""
    if a is b:
        return 0
    if a.depth != b.depth:
        return -1 if a.depth < b.depth else 1
    key_a, key_b = repr(a.mark), repr(b.mark)
    if key_a != key_b:
        return -1 if key_a < key_b else 1
    for child_a, child_b in zip(a.children, b.children):
        result = reference_compare(child_a, child_b)
        if result != 0:
            return result
    if len(a.children) != len(b.children):
        return -1 if len(a.children) < len(b.children) else 1
    return 0


def _tree_pool(seed: int, rounds: int = 200) -> list:
    """A pool of interned trees built in adversarial (unsorted) order so
    mark renumbering and mid-bucket inserts both get exercised."""
    rng = random.Random(seed)
    marks = ["m", "b", "zz", "a", "x", "ab"]
    pool = [ViewTree.leaf(m) for m in marks[:3]]
    for _ in range(rounds):
        arity = rng.randint(0, 3)
        children = rng.sample(pool, min(arity, len(pool)))
        pool.append(ViewTree.make(rng.choice(marks), children))
    return pool


class TestPermutationInterning:
    def test_permuted_children_same_object(self):
        leaves = [ViewTree.leaf(m) for m in ["c", "a", "b"]]
        trees = {
            id(ViewTree.make("root", list(perm)))
            for perm in itertools.permutations(leaves)
        }
        assert len(trees) == 1

    def test_permuted_nested_children_same_object(self):
        inner_1 = ViewTree.make("i", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        inner_2 = ViewTree.make("j", [ViewTree.leaf("b")])
        inner_3 = ViewTree.leaf("k")
        trees = {
            id(ViewTree.make("r", list(perm)))
            for perm in itertools.permutations([inner_1, inner_2, inner_3])
        }
        assert len(trees) == 1

    def test_duplicate_children_preserved(self):
        shared = ViewTree.leaf("s")
        tree = ViewTree.make("r", [shared, shared])
        assert tree.children == (shared, shared)
        assert tree is ViewTree.make("r", [shared, shared])


class TestRankMonotonicity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_compare_matches_reference(self, seed):
        pool = _tree_pool(seed)
        for a, b in itertools.combinations(pool, 2):
            want = reference_compare(a, b)
            got = ViewTree.compare(a, b)
            assert (got > 0) == (want > 0) and (got == 0) == (want == 0)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_sort_key_sorts_like_reference(self, seed):
        pool = list({id(t): t for t in _tree_pool(seed)}.values())
        by_rank = sorted(pool, key=lambda t: t.sort_key())
        # Reference order via insertion sort with the pairwise comparator.
        import functools

        by_reference = sorted(pool, key=functools.cmp_to_key(reference_compare))
        assert [id(t) for t in by_rank] == [id(t) for t in by_reference]

    def test_rank_ordering_depth_dominates(self):
        deep = ViewTree.make("a", [ViewTree.leaf("a")])
        shallow = ViewTree.leaf("zzz")  # later mark, smaller depth
        assert shallow.sort_key() < deep.sort_key()
        assert ViewTree.compare(shallow, deep) < 0

    def test_rank_survives_mark_renumbering(self):
        # Interning a mark that sorts before existing ones forces the
        # mark-rank table to renumber; previously assigned trees must
        # keep their relative order.
        late = ViewTree.leaf("zz")
        early = ViewTree.leaf("mm")
        assert early < late
        ViewTree.leaf("aa")  # renumbers: "aa" < "mm" < "zz"
        assert early < late
        assert ViewTree.leaf("aa") < early

    def test_mid_bucket_insert_keeps_order(self):
        a, b, c = ViewTree.leaf("a"), ViewTree.leaf("b"), ViewTree.leaf("c")
        first = ViewTree.make("x", [a])
        third = ViewTree.make("x", [c])
        assert first < third
        second = ViewTree.make("x", [b])  # lands between the two
        assert first < second < third


class TestClearCaches:
    def test_clear_empties_all_tables(self):
        ViewTree.make("x", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        stats = intern_stats()
        assert stats["trees"] >= 3 and stats["marks"] >= 3
        clear_caches()
        stats = intern_stats()
        assert stats["trees"] == 0
        assert stats["marks"] == 0
        assert stats["buckets"] == 0
        assert stats["truncations"] == 0

    def test_interning_restarts_cleanly_after_clear(self):
        clear_caches()
        tree = ViewTree.make("x", [ViewTree.leaf("b"), ViewTree.leaf("a")])
        again = ViewTree.make("x", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        assert tree is again
        assert ViewTree.leaf("a") < ViewTree.leaf("b") < tree
