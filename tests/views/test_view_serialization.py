"""Tests for ViewTree serialization and sweep CSV export."""

from __future__ import annotations

from repro.analysis.sweeps import SweepRow, table_to_csv
from repro.graphs.builders import cycle_graph, star_graph
from repro.views.local_views import view
from repro.views.view_tree import ViewTree, view_from_dict, view_to_dict


class TestViewSerialization:
    def test_round_trip_is_identity(self):
        g = cycle_graph(5).with_layer("input", {v: f"c{v % 3}" for v in range(5)})
        tree = view(g, 0, 4)
        assert view_from_dict(view_to_dict(tree)) is tree  # interning

    def test_round_trip_star(self):
        g = star_graph(3).with_layer("input", {v: (v, "x") for v in range(4)})
        tree = view(g, 0, 3)
        rebuilt = view_from_dict(view_to_dict(tree))
        assert rebuilt is tree

    def test_dict_shape(self):
        tree = ViewTree.make("r", [ViewTree.leaf("a"), ViewTree.leaf("b")])
        data = view_to_dict(tree)
        assert data["mark"] == "r"
        assert len(data["children"]) == 2

    def test_json_serializable(self):
        import json

        g = cycle_graph(3).with_layer("input", {v: (v,) for v in range(3)})
        tree = view(g, 0, 3)
        text = json.dumps(view_to_dict(tree))
        assert view_from_dict(json.loads(text)) is tree


class TestCsvExport:
    def test_csv_layout(self):
        rows = [
            SweepRow("a", {"x": 1, "y": 2.5}),
            SweepRow("b", {"x": 3}),
        ]
        csv_text = table_to_csv(["x", "y"], rows)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "case,x,y"
        assert lines[1] == "a,1,2.500"
        assert lines[2] == "b,3,"
