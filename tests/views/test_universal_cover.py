"""Tests for universal cover balls and the pruning relationship."""

from __future__ import annotations

import pytest

from repro.exceptions import ViewError
from repro.graphs.builders import (
    cycle_graph,
    complete_graph,
    path_graph,
    star_graph,
)
from repro.views.local_views import view
from repro.views.universal_cover import universal_cover_ball, view_to_cover_ball


def _uniform(graph):
    return graph.with_layer("input", {v: "x" for v in graph.nodes})


class TestCoverBall:
    def test_radius_zero_is_leaf(self):
        g = _uniform(cycle_graph(4))
        ball = universal_cover_ball(g, 0, 0)
        assert ball.depth == 1

    def test_cycle_ball_is_path(self):
        """The universal cover of a cycle is the bi-infinite path: each
        non-root vertex in the ball has exactly one child."""
        g = _uniform(cycle_graph(5))
        ball = universal_cover_ball(g, 0, 4)
        assert len(ball.children) == 2
        current = ball.children[0]
        while current.children:
            assert len(current.children) == 1
            current = current.children[0]

    def test_ball_size_on_regular_graph(self):
        # K4: root has 3 children, then branching factor 2: 1+3+6+12.
        g = _uniform(complete_graph(4))
        ball = universal_cover_ball(g, 0, 3)
        assert ball.size == 1 + 3 + 6 + 12

    def test_unknown_base(self):
        with pytest.raises(ViewError):
            universal_cover_ball(_uniform(cycle_graph(3)), 9, 2)

    def test_negative_radius(self):
        with pytest.raises(ViewError):
            universal_cover_ball(_uniform(cycle_graph(3)), 0, -1)


class TestPruningRelationship:
    """The paper's claim: U(G) is obtained from L_inf(v) by pruning each
    vertex's child corresponding to its parent."""

    @pytest.mark.parametrize(
        "graph,node",
        [
            (_uniform(cycle_graph(5)), 0),
            (_uniform(cycle_graph(6)), 2),
            (_uniform(path_graph(4)), 1),
            (_uniform(star_graph(3)), 0),
            (_uniform(star_graph(3)), 1),
            (_uniform(complete_graph(4)), 0),
        ],
        ids=["c5", "c6", "p4", "star-center", "star-leaf", "k4"],
    )
    @pytest.mark.parametrize("depth", [2, 3, 4])
    def test_pruned_view_equals_cover_ball(self, graph, node, depth):
        pruned = view_to_cover_ball(view(graph, node, depth))
        ball = universal_cover_ball(graph, node, depth - 1)
        assert pruned is ball

    def test_pruning_labeled_graph(self):
        g = cycle_graph(6).with_layer(
            "input", {0: "a", 1: "b", 2: "c", 3: "a", 4: "b", 5: "c"}
        )
        pruned = view_to_cover_ball(view(g, 0, 4))
        ball = universal_cover_ball(g, 0, 3)
        assert pruned is ball
