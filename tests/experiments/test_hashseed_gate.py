"""The hashseed gate's manifest: shape, determinism, CLI modes.

The cross-interpreter comparison itself runs as ``make hashseed-smoke``
(two child processes under different ``PYTHONHASHSEED`` values); these
tests pin the in-process half — the manifest covers every canonical
surface, is stable across repeated calls, and the ``--emit`` mode
prints exactly the JSON the driver diffs.
"""

from __future__ import annotations

import json
import string

from repro.experiments.hashseed_gate import emit_manifest, main

HEX = set(string.hexdigits.lower())


def test_manifest_covers_all_canonical_surfaces():
    manifest = emit_manifest()
    surfaces = {label.split("/", 1)[1] for label in manifest}
    assert {"views", "refinement", "quotient", "replayed-views"} <= surfaces
    assert {"key/views", "key/refinement", "key/quotient", "key/task"} <= {
        s for s in surfaces if s.startswith("key/")
    } | {"key"}
    # Every digest is sha256 hex or an artifact key (also a digest).
    for label, value in manifest.items():
        assert set(value) <= HEX, f"{label}: non-hex digest {value!r}"


def test_manifest_is_stable_in_process():
    assert emit_manifest() == emit_manifest()


def test_emit_mode_prints_sorted_json(capsys):
    assert main(["--emit"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == emit_manifest()
    assert list(payload) == sorted(payload)


def test_unknown_args_rejected(capsys):
    assert main(["--bogus"]) == 2
    assert "usage" in capsys.readouterr().err
