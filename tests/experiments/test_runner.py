"""Tests for the parallel experiment engine (``repro.experiments.runner``).

The engine's contract is that every observable output — experiment rows,
checks, derived seeds, report order — is bit-identical no matter how many
worker processes run the tasks, and that any pool-level failure degrades
to a serial run instead of failing.  Worker callables used here are
module-level so they pickle by qualified name.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweeps import FamilySpec, standard_family_specs
from repro.exceptions import ReproError
from repro.experiments.__main__ import main
from repro.experiments.runner import (
    canonical_results,
    derive_seed,
    map_families,
    results_payload,
    run_experiments,
    write_results_json,
)

# Cheap experiments only: the identity contract is about scheduling, not
# about how long each task runs.  "ports" is included because it runs the
# unified execution engine, so the per-experiment metrics block is non-empty.
SUBSET = ["figure1", "figure2", "lemma4", "ports"]
BASE_SEED = 11


def _family_probe(name: str, graph, seed: int):
    """Picklable sweep task: a value that depends on graph and seed."""
    return (name, graph.num_nodes, graph.num_edges, seed % 997)


def _broken_factory(jobs: int):
    """An executor factory that cannot create a pool at all."""
    raise OSError("process pools are forbidden here")


class _MidRunBrokenPool:
    """A pool that comes up fine but breaks on first use."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, payloads, chunksize=1):
        raise RuntimeError("worker died mid-run")


def _mid_run_broken_factory(jobs: int):
    return _MidRunBrokenPool()


@pytest.fixture(scope="module")
def serial_report():
    return run_experiments(SUBSET, jobs=1, base_seed=BASE_SEED)


@pytest.fixture(scope="module")
def parallel_report():
    return run_experiments(SUBSET, jobs=4, base_seed=BASE_SEED)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("figure1", base_seed=3) == derive_seed(
            "figure1", base_seed=3
        )
        assert derive_seed("a", "cycle-4", 4, 9) == derive_seed("a", "cycle-4", 4, 9)

    def test_every_identity_component_matters(self):
        reference = derive_seed("a", "fam", 4, 0)
        assert derive_seed("b", "fam", 4, 0) != reference
        assert derive_seed("a", "mah", 4, 0) != reference
        assert derive_seed("a", "fam", 5, 0) != reference
        assert derive_seed("a", "fam", 4, 1) != reference

    def test_fits_in_63_bits(self):
        for eid in ("figure1", "theorem1", "x" * 200):
            seed = derive_seed(eid)
            assert 0 <= seed < 2**63

    def test_no_separator_collision(self):
        # "ab" + "c" must not collide with "a" + "bc".
        assert derive_seed("ab", "c") != derive_seed("a", "bc")


class TestBitIdentity:
    def test_serial_vs_parallel_rows_and_checks(self, serial_report, parallel_report):
        serial = canonical_results(results_payload(serial_report))
        parallel = canonical_results(results_payload(parallel_report))
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_seeds_identical_across_job_counts(self, serial_report, parallel_report):
        serial_seeds = [run.seed for run in serial_report.runs]
        parallel_seeds = [run.seed for run in parallel_report.runs]
        assert serial_seeds == parallel_seeds
        expected = [derive_seed(eid, base_seed=BASE_SEED) for eid in SUBSET]
        assert serial_seeds == expected

    def test_report_preserves_requested_order(self, parallel_report):
        # Dispatch is longest-first, but the report must follow the request.
        assert [run.result.experiment_id for run in parallel_report.runs] == SUBSET

    def test_modes_and_checks(self, serial_report, parallel_report):
        assert serial_report.mode == "serial"
        assert parallel_report.mode == "parallel"
        assert serial_report.all_passed and parallel_report.all_passed

    def test_base_seed_changes_derived_seeds(self):
        report = run_experiments(["figure1"], jobs=1, base_seed=BASE_SEED + 1)
        assert report.runs[0].seed != derive_seed("figure1", base_seed=BASE_SEED)

    def test_unknown_experiment_rejected_before_any_work(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiments(["figure1", "no-such-experiment"], jobs=4)


class TestDegradation:
    def test_pool_creation_failure_falls_back_to_serial(self, serial_report):
        report = run_experiments(
            SUBSET, jobs=4, base_seed=BASE_SEED, executor_factory=_broken_factory
        )
        assert report.fallback_reason is not None
        assert "OSError" in report.fallback_reason
        assert report.mode == "serial"
        assert all(run.mode == "serial" for run in report.runs)
        assert canonical_results(results_payload(report)) == canonical_results(
            results_payload(serial_report)
        )

    def test_pool_breaking_mid_run_falls_back_to_serial(self):
        report = run_experiments(
            ["figure1", "figure2"],
            jobs=2,
            executor_factory=_mid_run_broken_factory,
        )
        assert report.fallback_reason is not None
        assert "RuntimeError" in report.fallback_reason
        assert report.all_passed
        assert len(report.runs) == 2

    def test_single_task_never_pays_for_a_pool(self):
        # jobs > 1 with one task must not even try the (broken) pool.
        report = run_experiments(["figure1"], jobs=4, executor_factory=_broken_factory)
        assert report.fallback_reason is None
        assert report.runs[0].mode == "serial"


class TestMapFamilies:
    def test_serial_vs_parallel_values(self):
        specs = standard_family_specs(sizes=(4, 6))
        serial = map_families(_family_probe, specs, jobs=1, base_seed=5)
        parallel = map_families(_family_probe, specs, jobs=3, base_seed=5)
        assert [o.value for o in serial] == [o.value for o in parallel]
        assert [o.seed for o in serial] == [o.seed for o in parallel]
        assert [o.family for o in serial] == [spec.name for spec in specs]

    def test_seed_derivation_uses_task_and_family_identity(self):
        specs = standard_family_specs(sizes=(4,))
        outcomes = map_families(_family_probe, specs, jobs=1, base_seed=5)
        for spec, outcome in zip(specs, outcomes):
            expected = derive_seed(_family_probe.__qualname__, spec.name, spec.size, 5)
            assert outcome.seed == expected
        assert len({o.seed for o in outcomes}) == len(outcomes)

    def test_degrades_serially_when_pool_raises(self):
        specs = standard_family_specs(sizes=(4,))
        outcomes = map_families(
            _family_probe, specs, jobs=4, executor_factory=_broken_factory
        )
        assert [o.mode for o in outcomes] == ["serial"] * len(specs)
        reference = map_families(_family_probe, specs, jobs=1)
        assert [o.value for o in outcomes] == [o.value for o in reference]

    def test_unknown_builder_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown family builder"):
            FamilySpec("bogus", "not-a-builder", (), 4).build()


class TestJsonArtifact:
    def test_payload_shape_mirrors_bench_views(self, parallel_report):
        payload = results_payload(parallel_report)
        assert payload["schema"] == 3
        assert payload["suite"] == "experiments"
        assert set(payload["machine"]) == {"platform", "python", "implementation"}
        engine = payload["engine"]
        assert engine["requested_jobs"] == 4
        assert engine["mode"] == "parallel"
        assert engine["base_seed"] == BASE_SEED
        assert engine["fallback_reason"] is None
        entry = payload["results"][0]
        assert entry["experiment_id"] == SUBSET[0]
        assert set(entry) == {
            "experiment_id",
            "title",
            "passed",
            "checks",
            "columns",
            "rows",
            "seed",
            "metrics",
            "timing",
        }
        assert set(entry["timing"]) == {"wall_s", "worker_pid", "mode"}
        assert set(entry["metrics"]) == {
            "executions",
            "rounds",
            "messages_sent",
            "bits_drawn",
            "nodes_decided",
            "faults_injected",
            "wall_s",
        }
        # View-layer experiments never touch the engine (executions == 0);
        # at least one experiment in the subset must run it.
        assert all(
            v >= 0 for v in entry["metrics"].values()
        )
        assert any(
            e["metrics"]["executions"] > 0 for e in payload["results"]
        )

    def test_payload_is_json_serializable(self, parallel_report):
        text = json.dumps(results_payload(parallel_report))
        assert json.loads(text)["suite"] == "experiments"

    def test_canonical_results_strips_timing_and_metrics(self, serial_report):
        payload = results_payload(serial_report)
        canonical = canonical_results(payload)
        assert len(canonical) == len(SUBSET)
        for entry in canonical:
            assert "timing" not in entry
            assert "metrics" not in entry
            assert "rows" in entry and "checks" in entry and "seed" in entry

    def test_metrics_deterministic_across_job_counts(
        self, serial_report, parallel_report
    ):
        # Everything but engine wall time is a deterministic count.
        def stable(report):
            return [
                {k: v for k, v in run.engine_metrics.items() if k != "wall_s"}
                for run in report.runs
            ]

        assert stable(serial_report) == stable(parallel_report)

    def test_write_results_json(self, tmp_path, serial_report):
        target = write_results_json(tmp_path / "out.json", serial_report)
        assert target.exists()
        payload = json.loads(target.read_text())
        assert payload["schema"] == 3
        assert [e["experiment_id"] for e in payload["results"]] == SUBSET


class TestCli:
    def test_jobs_and_json_flags(self, tmp_path, capsys):
        target = tmp_path / "RESULTS_experiments.json"
        rc = main(["figure1", "lemma4", "--jobs", "2", "--json", str(target)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all 2 experiments passed" in out
        payload = json.loads(target.read_text())
        assert payload["engine"]["requested_jobs"] == 2
        assert [e["experiment_id"] for e in payload["results"]] == [
            "figure1",
            "lemma4",
        ]

    def test_filter_selects_matching_ids(self, capsys):
        rc = main(["--filter", "figure2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all 1 experiments passed" in out

    def test_filter_without_match_is_an_error(self, capsys):
        rc = main(["--filter", "zzz-no-such"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "no experiment ids match" in err

    def test_list_respects_filter(self, capsys):
        rc = main(["--list", "--filter", "lemma"])
        lines = capsys.readouterr().out.splitlines()
        assert rc == 0
        assert lines[0].split() == ["id", "family", "cost"]
        assert [line.split()[0] for line in lines[1:-1]] == [
            "lemma2",
            "lemma3",
            "lemma4",
        ]
        assert all(line.split()[1] == "lemmas" for line in lines[1:-1])
        assert lines[-1] == "3 experiments"

    def test_list_prints_family_and_cost_columns(self, capsys):
        rc = main(["--list", "--filter", "resilience-drop"])
        lines = capsys.readouterr().out.splitlines()
        assert rc == 0
        assert lines[1].split() == ["resilience-drop", "resilience", "4.0"]
