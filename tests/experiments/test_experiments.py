"""Tests for the experiments package and its CLI."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.experiments import all_experiment_ids, get_experiment
from repro.experiments.base import (
    ExperimentCheckFailed,
    ExperimentResult,
)
from repro.analysis.sweeps import SweepRow


EXPECTED_IDS = {
    "figure1",
    "figure2",
    "figure3",
    "theorem1",
    "theorem2",
    "norris",
    "lemma2",
    "lemma3",
    "lemma4",
    "lifting",
    "khop",
    "impossibility",
    "election",
    "fibrations",
    "ports",
    "two-hop-cost",
    "mis-cost",
    "search-ablation",
    "success-curve",
    "decoupling",
    "candidate-growth",
    "resilience-drop",
    "resilience-crash",
    "resilience-corrupt",
    "resilience-reorder",
    "churn-views",
    "churn-validity",
    "churn-engine",
}

FAST_IDS = sorted(
    EXPECTED_IDS
    - {
        "theorem1",
        "theorem2",
        "election",
        "two-hop-cost",
        "mis-cost",
        "figure3",
        "success-curve",
        "decoupling",
        "candidate-growth",
        # The resilience family is covered by test_resilience.py.
        "resilience-drop",
        "resilience-crash",
        "resilience-corrupt",
        "resilience-reorder",
        # The dynamic family is covered by tests/dynamic/.
        "churn-views",
        "churn-validity",
        "churn-engine",
    }
)


class TestRegistry:
    def test_all_expected_ids_registered(self):
        assert set(all_experiment_ids()) == EXPECTED_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            get_experiment("nope")

    def test_specs_carry_cost_metadata(self):
        from repro.experiments import all_specs, get_spec

        specs = all_specs()
        assert {spec.experiment_id for spec in specs} == EXPECTED_IDS
        assert all(spec.cost > 0 for spec in specs)
        # The full-pipeline sweep is the heaviest experiment; its cost
        # weight is what makes the runner dispatch it first.
        assert get_spec("theorem1").cost == max(spec.cost for spec in specs)

    def test_get_experiment_returns_the_spec_function(self):
        from repro.experiments import get_spec

        assert get_experiment("figure1") is get_spec("figure1").fn


class TestResults:
    @pytest.mark.parametrize("experiment_id", FAST_IDS)
    def test_fast_experiments_pass(self, experiment_id):
        result = get_experiment(experiment_id)()
        assert result.passed, result.checks
        assert result.rows
        assert result.experiment_id == experiment_id
        rendered = result.render()
        assert result.title in rendered
        assert "checks:" in rendered

    def test_figure3_passes(self):
        result = get_experiment("figure3")()
        assert result.passed

    @pytest.mark.parametrize(
        "experiment_id",
        sorted(
            e
            for e in EXPECTED_IDS - set(FAST_IDS) - {"figure3", "theorem1"}
            if not e.startswith(("resilience-", "churn-"))
        ),
    )
    def test_slow_experiments_pass(self, experiment_id):
        result = get_experiment(experiment_id)()
        assert result.passed, result.checks

    def test_theorem1_passes(self):
        """The heaviest experiment: the full pipeline sweep."""
        result = get_experiment("theorem1")()
        assert result.passed
        assert len(result.rows) >= 40  # 4 problems x >= 10 families

    def test_require_passed_raises_on_failure(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=["a"],
            rows=[SweepRow("r", {"a": 1})],
            checks={"broken": False},
        )
        assert not result.passed
        with pytest.raises(ExperimentCheckFailed, match="broken"):
            result.require_passed()

    def test_duplicate_registration_rejected(self):
        from repro.experiments.base import experiment

        with pytest.raises(ReproError, match="duplicate"):
            experiment("figure1")(lambda: None)


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out

    def test_run_selected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure2", "lemma4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Lemma 4" in out
        assert "2 experiments passed" in out

    def test_no_args_prints_help(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 2

    def test_csv_export(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["figure2", "--csv", str(tmp_path / "tables")]) == 0
        csv_file = tmp_path / "tables" / "figure2.csv"
        assert csv_file.exists()
        content = csv_file.read_text()
        assert content.startswith("case,")
        assert "C12 -> C6 (f)" in content
