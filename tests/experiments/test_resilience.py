"""Tests for the ``resilience`` experiment family and its analysis
helpers (``repro.experiments.resilience``, ``repro.analysis.resilience``).

The family's contract matches every other registry entry — fixed plans
and seeds inside the functions, bit-identical results across runs and
job counts — plus the fault-specific invariants: zero-rate rows match
bare executions, and safety checks are judged on survivors only.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.resilience import (
    ResilienceOutcome,
    first_break,
    independence_preserved,
    probe,
    two_hop_distinct_among,
)
from repro.experiments import all_experiment_ids, all_families, get_spec
from repro.experiments.runner import (
    canonical_results,
    results_payload,
    run_experiments,
)
from repro.faults import FaultPlan
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.runtime.algorithm import FunctionAlgorithm

RESILIENCE_IDS = [
    "resilience-corrupt",
    "resilience-crash",
    "resilience-drop",
    "resilience-reorder",
]


def counter(stop_at: int):
    return FunctionAlgorithm(
        init=lambda label, deg: 0,
        msg=lambda s: s,
        step=lambda s, received, b: s + 1,
        out=lambda s: s if s >= stop_at else None,
        bits_per_round=0,
        name="counter",
    )


class TestRegistration:
    def test_family_ids_are_registered(self):
        assert set(RESILIENCE_IDS) <= set(all_experiment_ids())

    def test_family_defaults_to_the_module_basename(self):
        for eid in RESILIENCE_IDS:
            assert get_spec(eid).family == "resilience"
        assert "resilience" in all_families()

    def test_cost_weights_order_the_sweeps(self):
        # The drop sweep (4 families x 5 rates x 3 seeds) is the
        # heaviest of the family and must be dispatched first.
        costs = {eid: get_spec(eid).cost for eid in RESILIENCE_IDS}
        assert costs["resilience-drop"] == max(costs.values())

    def test_experiment_functions_pickle_by_qualified_name(self):
        for eid in RESILIENCE_IDS:
            fn = get_spec(eid).fn
            assert pickle.loads(pickle.dumps(fn)) is fn


class TestProbe:
    GRAPH = with_uniform_input(cycle_graph(4))

    def test_ok_outcome(self):
        outcome = probe(
            counter(2),
            self.GRAPH,
            FaultPlan(),
            validator=lambda g, outputs: True,
            max_rounds=5,
        )
        assert outcome.status == "ok" and outcome.ok
        assert outcome.rounds == 2
        assert outcome.faults_injected == 0
        assert set(outcome.outputs) == set(self.GRAPH.nodes)

    def test_invalid_outcome(self):
        outcome = probe(
            counter(2),
            self.GRAPH,
            FaultPlan(),
            validator=lambda g, outputs: False,
            max_rounds=5,
        )
        assert outcome.status == "invalid" and not outcome.ok

    def test_undecided_outcome(self):
        outcome = probe(
            counter(99),
            self.GRAPH,
            FaultPlan(),
            validator=lambda g, outputs: True,
            max_rounds=3,
        )
        assert outcome.status == "undecided"

    def test_error_outcome_is_classified_not_raised(self):
        exploding = FunctionAlgorithm(
            init=lambda label, deg: 0,
            msg=lambda s: s,
            step=lambda s, received, b: 1 / 0,
            out=lambda s: None,
            bits_per_round=0,
            name="exploding",
        )
        outcome = probe(
            exploding,
            self.GRAPH,
            FaultPlan(),
            validator=lambda g, outputs: True,
            max_rounds=3,
        )
        assert outcome.status == "error"
        assert "ZeroDivisionError" in outcome.error
        assert outcome.outputs is None

    def test_probe_counts_injected_faults(self):
        outcome = probe(
            counter(2),
            self.GRAPH,
            FaultPlan(plan_seed=1, drop_rate=1.0),
            validator=lambda g, outputs: True,
            max_rounds=5,
        )
        assert outcome.faults_injected == 4 * 2 * 2  # n * degree * rounds
        assert dict(outcome.fault_counts)["drop"] == outcome.faults_injected


class TestFirstBreak:
    def _outcome(self, status):
        return ResilienceOutcome(
            status=status, rounds=1, faults_injected=0, fault_counts=()
        )

    def test_reports_the_smallest_breaking_intensity(self):
        outcomes = [self._outcome(s) for s in ("ok", "ok", "undecided", "ok")]
        assert first_break([0.0, 0.1, 0.2, 0.3], outcomes) == 0.2

    def test_none_when_the_sweep_survives(self):
        outcomes = [self._outcome("ok")] * 3
        assert first_break([0.0, 0.1, 0.2], outcomes) is None

    def test_length_mismatch_is_an_error(self):
        with pytest.raises(ValueError, match="2 intensities vs 1"):
            first_break([0.0, 0.1], [self._outcome("ok")])


class TestSurvivorValidity:
    def test_independence_ignores_edges_into_excluded_nodes(self):
        graph = with_uniform_input(path_graph(3))
        # Adjacent members 0-1 violate independence; excluding 0 hides it.
        outputs = {0: 1, 1: 1, 2: 0}
        assert not independence_preserved(graph, outputs)
        assert independence_preserved(graph, outputs, exclude=[0])

    def test_independence_treats_missing_outputs_as_non_members(self):
        graph = with_uniform_input(path_graph(3))
        assert independence_preserved(graph, {0: 1})

    def test_two_hop_distinct_among_survivors(self):
        graph = with_uniform_input(path_graph(3))
        # 0 and 2 are two hops apart: equal colors break 2-hop validity.
        outputs = {0: "a", 1: "b", 2: "a"}
        assert not two_hop_distinct_among(graph, outputs)
        assert two_hop_distinct_among(graph, outputs, exclude=[2])
        assert two_hop_distinct_among(graph, {0: "a", 1: "b", 2: "c"})


class TestFamilyDeterminism:
    def test_results_are_bit_identical_across_job_counts(self):
        # The two cheapest members keep this fast; the full family is
        # exercised by `python -m repro.faults.gate` (make faults-smoke).
        ids = ["resilience-crash", "resilience-reorder"]
        serial = run_experiments(ids, jobs=1)
        fanned = run_experiments(ids, jobs=2)
        assert canonical_results(results_payload(serial)) == canonical_results(
            results_payload(fanned)
        )
        for result in serial.results():
            assert result.passed, result.checks

    def test_drop_and_corrupt_pass_their_checks(self):
        for eid in ["resilience-drop", "resilience-corrupt"]:
            result = get_spec(eid).fn()
            assert result.passed, result.checks
            assert result.rows
