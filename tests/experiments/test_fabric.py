"""Tests for the sharded, resumable experiment fabric.

The fabric's contract extends the runner's serial-vs-parallel identity
with *persistence*: a task is keyed by
``sha256(code_fingerprint, spec, seed)``, completed tasks stream to an
append-only JSONL store, a rerun skips every stored key, ``--shard i/n``
partitions the task set exactly, a torn final store line (crash
mid-write) is repaired, and merging any combination of shards and
resumed runs is byte-identical to merging a fresh ``--jobs 1`` run.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweeps import FamilySpec
from repro.exceptions import ReproError
from repro.experiments.__main__ import main
from repro.experiments.fabric import (
    GridSweep,
    dump_merged,
    experiment_tasks,
    grid_tasks,
    merge_stores,
    parse_shard,
    run_tasks,
    shard_tasks,
    task_key,
)
from repro.experiments.fingerprint import (
    clear_fingerprint_cache,
    code_fingerprint,
)
from repro.experiments.runner import derive_seed, experiment_entry, run_experiments
from repro.experiments.store import ResultStore, StoreCorrupt, scan_store

SUBSET = ["figure1", "figure2", "lemma4", "ports"]

# A tiny grid over the *built-in* kernel (registered by the resilience
# module on import), so its points run identically in worker processes.
TINY_GRID = GridSweep(
    name="tiny-drop-grid",
    kernel="two-hop-drop-probe",
    families=(
        FamilySpec("cycle-4", "cycle", (4,), 4),
        FamilySpec("path-4", "path", (4,), 4),
    ),
    axis="drop_rate",
    values=(0.0, 0.1),
    seeds=(0, 1),
)


def _broken_factory(jobs: int):
    raise OSError("process pools are forbidden here")


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "store.jsonl"


class TestFingerprint:
    def test_deterministic_and_cached(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        clear_fingerprint_cache()
        assert code_fingerprint(tmp_path) == code_fingerprint(tmp_path)

    def test_source_change_rotates_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        clear_fingerprint_cache()
        before = code_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2  # even a comment counts\n")
        clear_fingerprint_cache()
        assert code_fingerprint(tmp_path) != before

    def test_file_rename_rotates_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        clear_fingerprint_cache()
        before = code_fingerprint(tmp_path)
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        clear_fingerprint_cache()
        assert code_fingerprint(tmp_path) != before

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        clear_fingerprint_cache()
        before = code_fingerprint(tmp_path)
        (tmp_path / "notes.md").write_text("irrelevant\n")
        clear_fingerprint_cache()
        assert code_fingerprint(tmp_path) == before

    def test_default_root_is_the_package(self):
        assert len(code_fingerprint()) == 64


class TestStore:
    def test_append_scan_roundtrip(self, store_path):
        with ResultStore.open(store_path) as store:
            store.append({"key": "k1", "value": 1})
            store.append({"key": "k2", "value": [1, 2]})
        records = scan_store(store_path)
        assert set(records) == {"k1", "k2"}
        assert records["k2"]["value"] == [1, 2]

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan_store(tmp_path / "nope.jsonl") == {}

    def test_torn_final_line_tolerated_by_scan(self, store_path):
        with ResultStore.open(store_path) as store:
            store.append({"key": "k1", "value": 1})
        with open(store_path, "ab") as handle:
            handle.write(b'{"key": "torn-rec')  # crash mid-write
        records = scan_store(store_path)
        assert set(records) == {"k1"}

    def test_open_repairs_torn_tail_before_appending(self, store_path):
        with ResultStore.open(store_path) as store:
            store.append({"key": "k1", "value": 1})
        with open(store_path, "ab") as handle:
            handle.write(b'{"key": "torn-rec')
        with ResultStore.open(store_path) as store:
            assert set(store.records) == {"k1"}
            store.append({"key": "k2", "value": 2})
        # The torn bytes are gone and every surviving line is valid JSON.
        lines = store_path.read_text().splitlines()
        assert [json.loads(line)["key"] for line in lines] == ["k1", "k2"]

    def test_parseable_line_without_newline_is_torn(self, store_path):
        with ResultStore.open(store_path) as store:
            store.append({"key": "k1", "value": 1})
        with open(store_path, "ab") as handle:
            handle.write(b'{"key": "k2", "value": 2}')  # no trailing "\n"
        assert set(scan_store(store_path)) == {"k1"}

    def test_mid_file_corruption_raises(self, store_path):
        store_path.write_text('not json\n{"key": "k1"}\n')
        with pytest.raises(StoreCorrupt, match="line 1"):
            scan_store(store_path)

    def test_append_after_close_raises(self, store_path):
        store = ResultStore.open(store_path)
        store.close()
        with pytest.raises(ReproError, match="closed"):
            store.append({"key": "k"})


class TestTaskKeys:
    def test_key_depends_on_every_component(self):
        spec = {"kind": "experiment", "experiment_id": "figure1", "base_seed": 0}
        reference = task_key("fp", spec, 7)
        assert task_key("fp", spec, 7) == reference
        assert task_key("other", spec, 7) != reference
        assert task_key("fp", {**spec, "base_seed": 1}, 7) != reference
        assert task_key("fp", spec, 8) != reference

    def test_experiment_tasks_match_runner_seeds(self):
        tasks = experiment_tasks(SUBSET, base_seed=11)
        assert [t.task_id for t in tasks] == [f"experiment:{e}" for e in SUBSET]
        assert [t.seed for t in tasks] == [
            derive_seed(eid, base_seed=11) for eid in SUBSET
        ]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            experiment_tasks(["no-such-experiment"])

    def test_grid_expansion_is_the_full_product(self):
        tasks = grid_tasks(TINY_GRID, base_seed=3)
        assert len(tasks) == 2 * 2 * 2
        assert len({t.task_id for t in tasks}) == len(tasks)
        assert len({t.seed for t in tasks}) == len(tasks)
        # Expansion is deterministic, including seeds and order.
        again = grid_tasks(TINY_GRID, base_seed=3)
        assert tasks == again


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        for bad in ("0/4", "5/4", "x/4", "3", "1/0"):
            with pytest.raises(ReproError):
                parse_shard(bad)

    @pytest.mark.parametrize("count", [1, 2, 4, 5])
    def test_shards_partition_exactly(self, count):
        tasks = grid_tasks(TINY_GRID) + experiment_tasks(SUBSET)
        shards = [shard_tasks(tasks, i, count) for i in range(1, count + 1)]
        ids = [t.task_id for shard in shards for t in shard]
        # Coverage: every task lands in some shard; disjointness: no
        # task lands in two.
        assert sorted(ids) == sorted(t.task_id for t in tasks)

    def test_assignment_is_stable(self):
        tasks = grid_tasks(TINY_GRID)
        assert shard_tasks(tasks, 1, 4) == shard_tasks(tasks, 1, 4)


class TestResume:
    def test_second_run_skips_every_stored_task(self, store_path):
        tasks = experiment_tasks(["figure1", "lemma4"]) + grid_tasks(TINY_GRID)
        first = run_tasks(tasks, store_path, jobs=1)
        assert (first.ran, first.skipped) == (len(tasks), 0)
        second = run_tasks(tasks, store_path, jobs=1)
        assert (second.ran, second.skipped) == (0, len(tasks))
        assert len(scan_store(store_path)) == len(tasks)

    def test_fingerprint_change_invalidates_stored_results(self, store_path):
        tasks = grid_tasks(TINY_GRID)
        run_tasks(tasks, store_path, jobs=1, fingerprint="code-v1")
        resumed = run_tasks(tasks, store_path, jobs=1, fingerprint="code-v1")
        assert resumed.ran == 0
        changed = run_tasks(tasks, store_path, jobs=1, fingerprint="code-v2")
        assert changed.ran == len(tasks)  # every key rotated: full rerun
        # Both generations coexist in the append-only store.
        assert len(scan_store(store_path)) == 2 * len(tasks)

    def test_partial_store_resumes_the_difference(self, store_path):
        tasks = grid_tasks(TINY_GRID)
        run_tasks(tasks[:3], store_path, jobs=1)
        report = run_tasks(tasks, store_path, jobs=1)
        assert (report.ran, report.skipped) == (len(tasks) - 3, 3)

    def test_torn_tail_resume(self, store_path):
        tasks = grid_tasks(TINY_GRID)
        run_tasks(tasks[:4], store_path, jobs=1)
        with open(store_path, "ab") as handle:
            handle.write(b'{"key": "torn')  # killed mid-append
        report = run_tasks(tasks, store_path, jobs=1)
        assert (report.ran, report.skipped) == (len(tasks) - 4, 4)

    def test_pool_failure_degrades_and_still_persists(self, store_path):
        tasks = experiment_tasks(["figure1", "lemma4"])
        report = run_tasks(
            tasks, store_path, jobs=4, executor_factory=_broken_factory
        )
        assert report.fallback_reason is not None
        assert report.ran == 2
        assert len(scan_store(store_path)) == 2

    def test_record_matches_serial_runner_entry(self, store_path):
        """A fabric record is the canonical entry a --jobs 1 registry
        run reports — the bridge between the fabric and PR-2 contract."""
        run_tasks(experiment_tasks(SUBSET), store_path, jobs=1)
        records = scan_store(store_path)
        report = run_experiments(SUBSET, jobs=1)
        by_id = {
            record["spec"]["experiment_id"]: record["result"]
            for record in records.values()
        }
        for run in report.runs:
            expected = json.loads(json.dumps(experiment_entry(run.result, run.seed)))
            assert by_id[run.result.experiment_id] == expected


class TestMerge:
    def test_sharded_parallel_merge_is_byte_identical_to_serial(self, tmp_path):
        tasks = experiment_tasks(SUBSET) + grid_tasks(TINY_GRID)
        shard_stores = []
        for i in (1, 2):
            path = tmp_path / f"shard{i}.jsonl"
            run_tasks(shard_tasks(tasks, i, 2), path, jobs=2)
            shard_stores.append(path)
        serial_store = tmp_path / "serial.jsonl"
        run_tasks(tasks, serial_store, jobs=1)

        sharded, _ = merge_stores(shard_stores)
        serial, _ = merge_stores([serial_store])
        assert dump_merged(sharded) == dump_merged(serial)
        assert [e["experiment_id"] for e in serial["results"]] == sorted(SUBSET)
        assert len(serial["grids"]["tiny-drop-grid"]) == 8

    def test_resumed_store_merges_identically(self, tmp_path):
        tasks = grid_tasks(TINY_GRID)
        resumed = tmp_path / "resumed.jsonl"
        run_tasks(tasks[:5], resumed, jobs=1)
        run_tasks(tasks, resumed, jobs=1)  # resume the rest
        fresh = tmp_path / "fresh.jsonl"
        run_tasks(tasks, fresh, jobs=1)
        assert dump_merged(merge_stores([resumed])[0]) == dump_merged(
            merge_stores([fresh])[0]
        )

    def test_stale_fingerprints_are_ignored_not_merged(self, tmp_path):
        tasks = grid_tasks(TINY_GRID)
        path = tmp_path / "mixed.jsonl"
        run_tasks(tasks, path, jobs=1, fingerprint="code-v1")
        run_tasks(tasks, path, jobs=1, fingerprint="code-v2")
        payload, stats = merge_stores([path], fingerprint="code-v2")
        assert stats["ignored"] == len(tasks)
        assert stats["records"] == len(tasks)
        assert payload["engine"]["fingerprint"] == "code-v2"

    def test_conflicting_records_raise(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        record = {
            "key": "k1",
            "task_id": "t",
            "kind": "grid",
            "fingerprint": "fp",
            "seed": 1,
            "spec": {
                "grid": "g",
                "family": {"name": "f", "size": 1},
                "axis": "a",
                "value": 0,
                "point_seed": 0,
            },
            "result": {"x": 1},
        }
        with ResultStore.open(a) as store:
            store.append(record)
        with ResultStore.open(b) as store:
            store.append({**record, "result": {"x": 2}})
        with pytest.raises(ReproError, match="disagree"):
            merge_stores([a, b], fingerprint="fp")

    def test_merged_payload_is_deterministic_json(self, tmp_path):
        path = tmp_path / "s.jsonl"
        run_tasks(grid_tasks(TINY_GRID), path, jobs=1)
        payload, _ = merge_stores([path])
        text = dump_merged(payload)
        assert text == dump_merged(json.loads(text))  # stable under roundtrip
        assert text.endswith("\n")


class TestFabricCli:
    def test_run_status_merge_cycle(self, tmp_path, capsys):
        store = tmp_path / "cli.jsonl"
        out = tmp_path / "merged.json"
        rc = main(["fabric", "run", "figure1", "lemma4", "--store", str(store)])
        assert rc == 0
        assert "ran=2" in capsys.readouterr().out
        rc = main(["fabric", "status", "figure1", "lemma4", "--store", str(store)])
        assert rc == 0
        assert "pending=0" in capsys.readouterr().out
        rc = main(["fabric", "run", "figure1", "lemma4", "--store", str(store)])
        assert rc == 0
        assert "ran=0" in capsys.readouterr().out
        rc = main(["fabric", "merge", str(store), "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert [e["experiment_id"] for e in payload["results"]] == [
            "figure1",
            "lemma4",
        ]

    def test_shard_flag_restricts_the_selection(self, tmp_path, capsys):
        store = tmp_path / "shard.jsonl"
        totals = 0
        for i in (1, 2):
            rc = main(
                ["fabric", "status", *SUBSET, "--shard", f"{i}/2", "--store", str(store)]
            )
            assert rc == 0
            line = capsys.readouterr().out
            totals += int(line.split("total=")[1].split()[0])
        assert totals == len(SUBSET)

    def test_empty_selection_is_a_usage_error(self, tmp_path, capsys):
        rc = main(
            ["fabric", "run", "--filter", "zzz-no-such", "--store", str(tmp_path / "s")]
        )
        assert rc == 2
        assert "matches no tasks" in capsys.readouterr().err

    def test_grids_listing(self, capsys):
        rc = main(["fabric", "grids"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resilience-drop-grid" in out
        assert "two-hop-cost-grid" in out

    def test_fingerprint_subcommand(self, capsys):
        rc = main(["fabric", "fingerprint"])
        out = capsys.readouterr().out.strip()
        assert rc == 0
        assert out == code_fingerprint()


class TestStrictJobs:
    """The silent-degradation bugfix: ``--jobs N`` falling back to a
    serial run used to exit 0 with only a stderr notice."""

    def test_classic_cli_exits_nonzero_with_strict_jobs(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setattr(
            runner_module, "_default_executor_factory", _broken_factory
        )
        rc = main(["figure1", "lemma4", "--jobs", "2", "--strict-jobs"])
        err = capsys.readouterr().err
        assert rc == 3
        assert "ran serially" in err
        assert "--strict-jobs" in err

    def test_classic_cli_still_warns_without_the_flag(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setattr(
            runner_module, "_default_executor_factory", _broken_factory
        )
        rc = main(["figure1", "lemma4", "--jobs", "2"])
        captured = capsys.readouterr()
        assert rc == 0  # degradation remains non-fatal by default
        assert "ran serially" in captured.err

    def test_fabric_cli_exits_nonzero_with_strict_jobs(
        self, monkeypatch, tmp_path, capsys
    ):
        import repro.experiments.runner as runner_module

        monkeypatch.setattr(
            runner_module, "_default_executor_factory", _broken_factory
        )
        rc = main(
            [
                "fabric",
                "run",
                "figure1",
                "lemma4",
                "--jobs",
                "2",
                "--strict-jobs",
                "--store",
                str(tmp_path / "s.jsonl"),
            ]
        )
        assert rc == 3
        assert "ran serially" in capsys.readouterr().err

    def test_serial_run_never_trips_strict_jobs(self, capsys):
        rc = main(["figure1", "--jobs", "1", "--strict-jobs"])
        assert rc == 0
