"""Tests for bit tapes."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.runtime.tape import FixedTape, RandomTape, RecordingTape


class TestRandomTape:
    def test_deterministic_for_seed(self):
        a = RandomTape(7).draw(64)
        b = RandomTape(7).draw(64)
        assert a == b

    def test_varies_with_seed(self):
        assert RandomTape(1).draw(64) != RandomTape(2).draw(64)

    def test_only_bits(self):
        assert set(RandomTape(3).draw(100)) <= {"0", "1"}

    def test_never_exhausts(self):
        tape = RandomTape(0)
        assert tape.remaining(10_000)

    def test_negative_draw_rejected(self):
        with pytest.raises(SimulationError):
            RandomTape(0).draw(-1)


class TestFixedTape:
    def test_replays_in_order(self):
        tape = FixedTape("0110")
        assert tape.draw(2) == "01"
        assert tape.draw(2) == "10"

    def test_exhaustion(self):
        tape = FixedTape("01")
        assert tape.remaining(2)
        tape.draw(2)
        assert not tape.remaining(1)
        with pytest.raises(SimulationError, match="exhausted"):
            tape.draw(1)

    def test_consumed_counter(self):
        tape = FixedTape("0101")
        tape.draw(3)
        assert tape.consumed == 3

    def test_invalid_characters_rejected(self):
        with pytest.raises(SimulationError, match="only 0/1"):
            FixedTape("01a")

    def test_empty_tape(self):
        tape = FixedTape("")
        assert tape.remaining(0)
        assert tape.draw(0) == ""
        assert not tape.remaining(1)


class TestRecordingTape:
    def test_records_draws(self):
        tape = RecordingTape(FixedTape("0110"))
        tape.draw(1)
        tape.draw(3)
        assert tape.recorded == "0110"

    def test_forwards_remaining(self):
        tape = RecordingTape(FixedTape("01"))
        assert tape.remaining(2)
        tape.draw(2)
        assert not tape.remaining(1)

    def test_recording_random_is_replayable(self):
        recording = RecordingTape(RandomTape(5))
        drawn = recording.draw(32)
        replay = FixedTape(recording.recorded)
        assert replay.draw(32) == drawn
