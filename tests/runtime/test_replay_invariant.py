"""The replay invariant, property-based across every randomized algorithm.

"A t-round simulation is fully determined by the assignment b" is the
bedrock under the whole derandomization: any recorded execution must be
exactly reproducible from its bit assignment.  This holds for every
algorithm in the library, on every graph, for every seed — so we test
exactly that, broadly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.local_election import TwoLocalElection
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.monte_carlo_election import MonteCarloElection
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.graphs.builders import random_connected_graph, with_uniform_input
from repro.runtime.simulation import run_randomized, simulate_with_assignment

ALGORITHMS = [
    TwoHopColoringAlgorithm(),
    VertexColoringAlgorithm(),
    AnonymousMISAlgorithm(),
    AnonymousMatchingAlgorithm(),
    TwoLocalElection(),
]
IDS = [a.name for a in ALGORITHMS]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=IDS)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=12, deadline=None)
def test_replay_reproduces_execution(algorithm, n, graph_seed, run_seed):
    graph = with_uniform_input(random_connected_graph(n, 0.3, seed=graph_seed))
    run = run_randomized(algorithm, graph, seed=run_seed)
    replay = simulate_with_assignment(
        algorithm, graph, run.trace.assignment(), record_trace=True
    )
    assert replay.successful
    assert replay.outputs == run.outputs
    for v in graph.nodes:
        assert replay.trace.messages_of(v) == run.trace.messages_of(v)


def test_replay_monte_carlo_election():
    """Also holds for the Monte-Carlo algorithm with its wide bit draws."""
    graph = random_connected_graph(6, 0.3, seed=1)
    graph = graph.with_layer(
        "input", {v: (graph.degree(v), 6) for v in graph.nodes}
    )
    algorithm = MonteCarloElection(id_bits=8)
    run = run_randomized(algorithm, graph, seed=3)
    replay = simulate_with_assignment(algorithm, graph, run.trace.assignment())
    assert replay.outputs == run.outputs
