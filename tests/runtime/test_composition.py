"""Tests for two-stage composition — the decoupling as one algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms.greedy_by_color import GreedyColoringByColor, GreedyMISByColor
from repro.algorithms.color_reduction import TwoHopColorReduction
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.graphs.coloring import apply_two_hop_coloring, is_two_hop_coloring
from repro.graphs.properties import max_degree
from repro.problems.coloring import ColoringProblem
from repro.problems.mis import MISProblem
from repro.runtime.composition import TwoStageComposition
from repro.runtime.simulation import run_deterministic, run_randomized
from tests.conftest import small_graph_zoo

ZOO = [case for case in small_graph_zoo() if case[1].num_nodes <= 12]
IDS = [name for name, _ in ZOO]


def pack(original_input, degree, color):
    """Stage-2 input = (original input, stage-1 color) — the shape the
    greedy-by-color algorithms expect."""
    return (original_input[0], color)


def composed_mis():
    return TwoStageComposition(
        TwoHopColoringAlgorithm(), GreedyMISByColor(), pack
    )


class TestComposedPipeline:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_composed_mis_is_valid(self, name, graph, seed):
        """The paper's decoupling as ONE anonymous algorithm: random
        coloring then deterministic MIS, end to end, no orchestration."""
        result = run_randomized(composed_mis(), graph, seed=seed)
        assert result.all_decided
        assert MISProblem().is_valid_output(graph, result.outputs)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_composed_coloring_is_valid(self, seed):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        graph = with_uniform_input(cycle_graph(9))
        composed = TwoStageComposition(
            TwoHopColoringAlgorithm(), GreedyColoringByColor(), pack
        )
        result = run_randomized(composed, graph, seed=seed)
        assert ColoringProblem().is_valid_output(graph, result.outputs)
        assert len(set(result.outputs.values())) <= max_degree(graph) + 1

    def test_composed_color_reduction(self):
        from repro.graphs.builders import petersen_graph, with_uniform_input

        graph = with_uniform_input(petersen_graph())
        composed = TwoStageComposition(
            TwoHopColoringAlgorithm(), TwoHopColorReduction(), pack
        )
        result = run_randomized(composed, graph, seed=5)
        assert is_two_hop_coloring(graph, result.outputs)
        delta = max_degree(graph)
        assert len(set(result.outputs.values())) <= delta * delta + 1


class TestEquivalenceToDirectRun:
    def test_composed_equals_direct_stage2(self):
        """With a deterministic stage 2, the synchronizer-composed run
        must produce exactly the outputs of running stage 2 directly on
        the stage-1-colored graph."""
        from repro.graphs.builders import random_connected_graph, with_uniform_input

        graph = with_uniform_input(random_connected_graph(9, 0.3, seed=2))
        seed = 7

        composed_result = run_randomized(composed_mis(), graph, seed=seed)

        stage1 = run_randomized(TwoHopColoringAlgorithm(), graph, seed=seed)
        colored = apply_two_hop_coloring(graph, stage1.outputs)
        direct = run_deterministic(GreedyMISByColor(), colored, max_rounds=500)

        assert composed_result.outputs == direct.outputs

    def test_composition_seed_determinism(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        graph = with_uniform_input(cycle_graph(6))
        a = run_randomized(composed_mis(), graph, seed=11)
        b = run_randomized(composed_mis(), graph, seed=11)
        assert a.outputs == b.outputs


class TestBitsBudget:
    def test_bits_per_round_is_max_of_stages(self):
        composed = composed_mis()
        assert composed.bits_per_round == 1  # coloring uses 1, greedy 0

    def test_name(self):
        assert "two-hop-coloring" in composed_mis().name
        assert "greedy-mis-by-color" in composed_mis().name
