"""Tests for the deterministic-to-randomized shell adapter."""

from __future__ import annotations

import pytest

from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.problems.mis import MISProblem
from repro.runtime.algorithm import RandomizedShell, randomized_shell
from repro.runtime.simulation import run_deterministic, simulate_with_assignment


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestShell:
    def test_wraps_deterministic(self):
        shell = randomized_shell(GreedyMISByColor())
        assert shell.bits_per_round == 1
        assert "greedy-mis-by-color" in shell.name

    def test_randomized_passes_through(self):
        algorithm = AnonymousMISAlgorithm()
        assert randomized_shell(algorithm) is algorithm

    def test_wrapping_randomized_rejected(self):
        with pytest.raises(ValueError, match="already randomized"):
            RandomizedShell(AnonymousMISAlgorithm())

    def test_shell_ignores_bits(self):
        instance = colored(with_uniform_input(cycle_graph(7)))
        shell = randomized_shell(GreedyMISByColor())
        direct = run_deterministic(GreedyMISByColor(), instance)
        for bits in ("0", "1"):
            assignment = {v: bits * 32 for v in instance.nodes}
            result = simulate_with_assignment(shell, instance, assignment)
            assert result.successful
            assert result.outputs == direct.outputs
        assert MISProblem().is_valid_output(
            instance.with_only_layers(["input"]), direct.outputs
        )
