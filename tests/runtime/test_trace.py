"""Tests for ExecutionTrace helpers."""

from __future__ import annotations

import pytest

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.exceptions import RuntimeModelError
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.runtime.simulation import run_randomized


def _run():
    g = with_uniform_input(cycle_graph(4))
    return g, run_randomized(TwoHopColoringAlgorithm(), g, seed=6)


class TestTraceHelpers:
    def test_bits_concatenate_in_round_order(self):
        g, result = _run()
        for v in g.nodes:
            bits = result.trace.bits_of(v)
            assert len(bits) == result.rounds
            assert set(bits) <= {"0", "1"}

    def test_assignment_covers_all_nodes(self):
        g, result = _run()
        assignment = result.trace.assignment()
        assert set(assignment) == set(g.nodes)

    def test_messages_of_length(self):
        g, result = _run()
        for v in g.nodes:
            assert len(result.trace.messages_of(v)) == result.rounds

    def test_output_round_none_for_unknown(self):
        _g, result = _run()
        assert result.trace.output_round("nonexistent") is None

    def test_round_records_are_one_based(self):
        _g, result = _run()
        assert [r.round_number for r in result.trace.rounds] == list(
            range(1, result.rounds + 1)
        )


class TestExecutionResult:
    def test_output_labeling_requires_all_decided(self):
        from repro.runtime.scheduler import ExecutionResult

        partial = ExecutionResult(
            outputs={0: "x"}, rounds=3, all_decided=False, trace=None
        )
        with pytest.raises(RuntimeModelError, match="did not decide"):
            partial.output_labeling()

    def test_output_labeling_copies(self):
        from repro.runtime.scheduler import ExecutionResult

        full = ExecutionResult(
            outputs={0: "x"}, rounds=1, all_decided=True, trace=None
        )
        labeling = full.output_labeling()
        labeling[0] = "mutated"
        assert full.outputs[0] == "x"
