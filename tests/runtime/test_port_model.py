"""Tests for the port-numbering model and its color-based emulation —
the executable form of the paper's "port numbers can be emulated" remark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import pytest

from repro.exceptions import RuntimeModelError
from repro.graphs.builders import cycle_graph, path_graph, star_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.runtime.engine import execute
from repro.runtime.port_model import (
    PortAwareAlgorithm,
    PortEmulation,
    PortScheduler,
)
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.tape import FixedTape


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


@dataclass(frozen=True)
class _TokenState:
    token: object
    collected: tuple
    round_number: int
    rounds_needed: int


class PortTokenSum(PortAwareAlgorithm):
    """A genuinely port-sensitive algorithm: every round, send
    ``(my token, port index)`` on each port; collect what arrives per
    port; output after ``rounds_needed`` rounds the sorted collection.

    Port sensitivity makes this a sharp emulation test: any mix-up of
    which message arrived on which port changes the output.
    """

    bits_per_round = 0
    name = "port-token-sum"

    def __init__(self, rounds_needed: int = 2) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        # A degree-tagged token (input labels differ in shape between the
        # native and emulated runs, so they are not used directly).
        return _TokenState(
            token=("T", degree),
            collected=(),
            round_number=0,
            rounds_needed=self.rounds_needed,
        )

    def messages(self, state: _TokenState, degree: int):
        return [(state.token, port) for port in range(degree)]

    def transition(self, state: _TokenState, received, bits: str):
        entry = tuple(
            (port, payload) for port, payload in enumerate(received)
        )
        return replace(
            state,
            collected=state.collected + (entry,),
            round_number=state.round_number + 1,
        )

    def output(self, state: _TokenState):
        if state.round_number >= state.rounds_needed:
            return state.collected
        return None


def color_order_ports(graph):
    """Re-port the graph so real ports match the emulation's virtual
    ports (ascending neighbor-color order)."""
    def key(u):
        c = graph.label_of(u, "color")
        return (type(c).__name__, repr(c))

    return graph.with_ports(
        {v: sorted(graph.neighbors(v), key=key) for v in graph.nodes}
    )


class TestPortScheduler:
    def test_port_directed_delivery(self):
        g = with_uniform_input(path_graph(3))
        scheduler = PortScheduler(
            PortTokenSum(1), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=5)
        assert result.all_decided
        # Middle node has 2 ports; each entry records (port, payload).
        middle = result.outputs[1]
        assert len(middle[0]) == 2

    def test_message_count_must_match_degree(self):
        class Broken(PortTokenSum):
            def messages(self, state, degree):
                return [("x", 0)]  # wrong arity

        g = with_uniform_input(star_graph(3))
        scheduler = PortScheduler(Broken(), g, {v: FixedTape("") for v in g.nodes})
        with pytest.raises(RuntimeModelError, match="ports"):
            scheduler.run(max_rounds=2)


class RandomizedPortEcho(PortAwareAlgorithm):
    """Port-sensitive *and* bit-sensitive: each round every node sends
    its accumulated bitstring tagged with the port index, appends the
    received (port, payload) pairs and its freshly drawn bit, and after
    ``rounds_needed`` rounds outputs the whole history.  Any mix-up of
    port attribution or of bit accounting changes the output."""

    bits_per_round = 1
    name = "randomized-port-echo"

    def __init__(self, rounds_needed: int = 3) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        return _TokenState(
            token="",  # accumulated bits
            collected=(),
            round_number=0,
            rounds_needed=self.rounds_needed,
        )

    def messages(self, state: _TokenState, degree: int):
        return [(state.token, port) for port in range(degree)]

    def transition(self, state: _TokenState, received, bits: str):
        entry = tuple((port, payload) for port, payload in enumerate(received))
        return replace(
            state,
            token=state.token + bits,
            collected=state.collected + (entry,),
            round_number=state.round_number + 1,
        )

    def output(self, state: _TokenState):
        if state.round_number >= state.rounds_needed:
            return (state.collected, state.token)
        return None


class TestPortFunding:
    """Regression for the pre-unification PortScheduler, which skipped
    the tape-funding check: a dry tape raised mid-round from ``draw``
    after some nodes had already transitioned, leaving torn state.  The
    unified kernel stops *before* any round it cannot fund — the paper's
    ``l = min length`` convention (Section 2.2) — in both disciplines."""

    def test_run_stops_before_unfunded_round(self):
        g = with_uniform_input(path_graph(3))
        # Node 1 funds only 2 rounds; the run must stop at exactly 2.
        tapes = {0: FixedTape("0000"), 1: FixedTape("00"), 2: FixedTape("000")}
        scheduler = PortScheduler(RandomizedPortEcho(rounds_needed=10), g, tapes)
        result = scheduler.run(max_rounds=100)
        assert result.rounds == 2
        assert not result.all_decided
        # No torn round: every node took exactly 2 transitions.
        for v in g.nodes:
            assert scheduler.state_of(v).round_number == 2

    def test_step_past_funding_raises_without_mutation(self):
        g = with_uniform_input(path_graph(2))
        scheduler = PortScheduler(
            RandomizedPortEcho(rounds_needed=10),
            g,
            {v: FixedTape("0") for v in g.nodes},
        )
        scheduler.step()
        with pytest.raises(RuntimeModelError, match="exhausted"):
            scheduler.step()
        assert scheduler.rounds == 1
        assert all(scheduler.state_of(v).round_number == 1 for v in g.nodes)

    def test_record_trace_flag(self):
        g = with_uniform_input(path_graph(2))
        result = PortScheduler(
            PortTokenSum(1),
            g,
            {v: FixedTape("") for v in g.nodes},
            record_trace=False,
        ).run(max_rounds=5)
        assert result.all_decided
        assert result.trace is None


class TestEmulation:
    @pytest.mark.parametrize(
        "graph",
        [
            colored(with_uniform_input(path_graph(4))),
            colored(with_uniform_input(cycle_graph(5))),
            colored(with_uniform_input(star_graph(4))),
        ],
        ids=["path4", "cycle5", "star4"],
    )
    def test_emulation_matches_native_ports(self, graph):
        """The paper's remark, as an equality of executions: running the
        port-aware algorithm natively (with color-order ports) equals
        running its broadcast emulation on the colored instance."""
        inner = PortTokenSum(rounds_needed=3)
        reported = color_order_ports(graph)

        native = PortScheduler(
            inner,
            reported.with_only_layers(["input"]).with_ports(
                {v: reported.ports(v) for v in reported.nodes}
            ),
            {v: FixedTape("") for v in reported.nodes},
        ).run(max_rounds=10)

        emulated = SynchronousScheduler(
            PortEmulation(inner),
            graph,
            {v: FixedTape("") for v in graph.nodes},
        ).run(max_rounds=10)

        assert native.all_decided and emulated.all_decided
        assert native.outputs == emulated.outputs
        # Emulation pays exactly one extra (hello) round.
        assert emulated.rounds == native.rounds + 1

    def test_randomized_emulation_matches_native_with_bit_accounting(self):
        """The paper's remark for *randomized* port-aware algorithms: the
        emulation is output-identical provided each node's tape funds the
        extra hello round, whose ``bits_per_round`` draw is discarded.
        Feeding the emulated run each native tape prefixed with one junk
        bit must reproduce the native outputs exactly — and the engine's
        bit accounting must show precisely one extra draw per node."""
        graph = colored(with_uniform_input(cycle_graph(5)))
        reported = color_order_ports(graph)
        native_graph = reported.with_only_layers(["input"]).with_ports(
            {v: reported.ports(v) for v in reported.nodes}
        )
        inner = RandomizedPortEcho(rounds_needed=3)
        bits = {v: format(v, "03b") for v in graph.nodes}  # distinct tapes

        native = execute(
            inner,
            native_graph,
            tapes={v: FixedTape(bits[v]) for v in graph.nodes},
            max_rounds=10,
        )
        emulated = execute(
            PortEmulation(inner),
            graph,
            tapes={v: FixedTape("1" + bits[v]) for v in graph.nodes},
            max_rounds=10,
        )

        assert native.all_decided and emulated.all_decided
        assert native.outputs == emulated.outputs
        assert emulated.rounds == native.rounds + 1
        # Each output carries the bits its node consumed: exactly its
        # native tape — the hello-round prefix bit never reaches the
        # inner algorithm.
        for v, (collected, consumed) in native.outputs.items():
            assert consumed == bits[v]
        # Engine accounting: the hello round costs one extra draw of
        # bits_per_round bits per node, and nothing else.
        n = graph.num_nodes
        assert native.metrics.bits_drawn == 3 * n
        assert emulated.metrics.bits_drawn == native.metrics.bits_drawn + n

    def test_randomized_emulation_stops_when_hello_round_is_unfunded(self):
        """Without the prefix bit the emulated tapes fund one round fewer
        than the inner algorithm needs — the run must stop cleanly short
        instead of raising mid-round."""
        graph = colored(with_uniform_input(cycle_graph(5)))
        inner = RandomizedPortEcho(rounds_needed=3)
        result = execute(
            PortEmulation(inner),
            graph,
            tapes={v: FixedTape(format(v, "03b")) for v in graph.nodes},
            max_rounds=10,
        )
        assert result.rounds == 3  # hello + only 2 steady rounds funded
        assert not result.all_decided

    def test_emulation_requires_distinct_neighbor_colors(self):
        g = with_uniform_input(star_graph(2)).with_layer(
            "color", {0: "a", 1: "b", 2: "b"}  # leaves collide at the center
        )
        scheduler = SynchronousScheduler(
            PortEmulation(PortTokenSum(1)),
            g,
            {v: FixedTape("") for v in g.nodes},
        )
        with pytest.raises(RuntimeModelError, match="collide"):
            scheduler.run(max_rounds=5)
