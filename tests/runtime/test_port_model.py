"""Tests for the port-numbering model and its color-based emulation —
the executable form of the paper's "port numbers can be emulated" remark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import pytest

from repro.exceptions import RuntimeModelError
from repro.graphs.builders import cycle_graph, path_graph, star_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.runtime.port_model import (
    PortAwareAlgorithm,
    PortEmulation,
    PortScheduler,
)
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.tape import FixedTape


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


@dataclass(frozen=True)
class _TokenState:
    token: object
    collected: Tuple
    round_number: int
    rounds_needed: int


class PortTokenSum(PortAwareAlgorithm):
    """A genuinely port-sensitive algorithm: every round, send
    ``(my token, port index)`` on each port; collect what arrives per
    port; output after ``rounds_needed`` rounds the sorted collection.

    Port sensitivity makes this a sharp emulation test: any mix-up of
    which message arrived on which port changes the output.
    """

    bits_per_round = 0
    name = "port-token-sum"

    def __init__(self, rounds_needed: int = 2) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label, degree: int):
        # A degree-tagged token (input labels differ in shape between the
        # native and emulated runs, so they are not used directly).
        return _TokenState(
            token=("T", degree),
            collected=(),
            round_number=0,
            rounds_needed=self.rounds_needed,
        )

    def messages(self, state: _TokenState, degree: int):
        return [(state.token, port) for port in range(degree)]

    def transition(self, state: _TokenState, received, bits: str):
        entry = tuple(
            (port, payload) for port, payload in enumerate(received)
        )
        return replace(
            state,
            collected=state.collected + (entry,),
            round_number=state.round_number + 1,
        )

    def output(self, state: _TokenState):
        if state.round_number >= state.rounds_needed:
            return state.collected
        return None


def color_order_ports(graph):
    """Re-port the graph so real ports match the emulation's virtual
    ports (ascending neighbor-color order)."""
    def key(u):
        c = graph.label_of(u, "color")
        return (type(c).__name__, repr(c))

    return graph.with_ports(
        {v: sorted(graph.neighbors(v), key=key) for v in graph.nodes}
    )


class TestPortScheduler:
    def test_port_directed_delivery(self):
        g = with_uniform_input(path_graph(3))
        scheduler = PortScheduler(
            PortTokenSum(1), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=5)
        assert result.all_decided
        # Middle node has 2 ports; each entry records (port, payload).
        middle = result.outputs[1]
        assert len(middle[0]) == 2

    def test_message_count_must_match_degree(self):
        class Broken(PortTokenSum):
            def messages(self, state, degree):
                return [("x", 0)]  # wrong arity

        g = with_uniform_input(star_graph(3))
        scheduler = PortScheduler(Broken(), g, {v: FixedTape("") for v in g.nodes})
        with pytest.raises(RuntimeModelError, match="ports"):
            scheduler.run(max_rounds=2)


class TestEmulation:
    @pytest.mark.parametrize(
        "graph",
        [
            colored(with_uniform_input(path_graph(4))),
            colored(with_uniform_input(cycle_graph(5))),
            colored(with_uniform_input(star_graph(4))),
        ],
        ids=["path4", "cycle5", "star4"],
    )
    def test_emulation_matches_native_ports(self, graph):
        """The paper's remark, as an equality of executions: running the
        port-aware algorithm natively (with color-order ports) equals
        running its broadcast emulation on the colored instance."""
        inner = PortTokenSum(rounds_needed=3)
        reported = color_order_ports(graph)

        native = PortScheduler(
            inner,
            reported.with_only_layers(["input"]).with_ports(
                {v: reported.ports(v) for v in reported.nodes}
            ),
            {v: FixedTape("") for v in reported.nodes},
        ).run(max_rounds=10)

        emulated = SynchronousScheduler(
            PortEmulation(inner),
            graph,
            {v: FixedTape("") for v in graph.nodes},
        ).run(max_rounds=10)

        assert native.all_decided and emulated.all_decided
        assert native.outputs == emulated.outputs
        # Emulation pays exactly one extra (hello) round.
        assert emulated.rounds == native.rounds + 1

    def test_emulation_requires_distinct_neighbor_colors(self):
        g = with_uniform_input(star_graph(2)).with_layer(
            "color", {0: "a", 1: "b", 2: "b"}  # leaves collide at the center
        )
        scheduler = SynchronousScheduler(
            PortEmulation(PortTokenSum(1)),
            g,
            {v: FixedTape("") for v in g.nodes},
        )
        with pytest.raises(RuntimeModelError, match="collide"):
            scheduler.run(max_rounds=5)
