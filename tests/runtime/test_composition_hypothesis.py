"""Property-based tests for the two-stage composition."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algorithms.greedy_by_color import GreedyColoringByColor, GreedyMISByColor
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.graphs.builders import random_connected_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, is_k_hop_coloring
from repro.problems.mis import MISProblem
from repro.runtime.composition import TwoStageComposition
from repro.runtime.simulation import run_deterministic, run_randomized


def pack(original_input, degree, color):
    return (original_input[0], color)


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=25, deadline=None)
def test_composed_mis_valid_on_random_graphs(n, graph_seed, run_seed):
    graph = with_uniform_input(random_connected_graph(n, 0.3, seed=graph_seed))
    composed = TwoStageComposition(
        TwoHopColoringAlgorithm(), GreedyMISByColor(), pack
    )
    result = run_randomized(composed, graph, seed=run_seed)
    assert result.all_decided
    assert MISProblem().is_valid_output(graph, result.outputs)


@given(
    st.integers(min_value=2, max_value=9),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_composed_equals_direct_run(n, graph_seed, run_seed):
    """Synchronizer correctness, property-based: for deterministic stage
    2, composition output == direct stage-2 run on the colored graph."""
    graph = with_uniform_input(random_connected_graph(n, 0.3, seed=graph_seed))
    composed = TwoStageComposition(
        TwoHopColoringAlgorithm(), GreedyColoringByColor(), pack
    )
    composed_run = run_randomized(composed, graph, seed=run_seed)

    stage1 = run_randomized(TwoHopColoringAlgorithm(), graph, seed=run_seed)
    colored = apply_two_hop_coloring(graph, stage1.outputs)
    direct = run_deterministic(GreedyColoringByColor(), colored, max_rounds=500)

    assert composed_run.outputs == direct.outputs
    assert is_k_hop_coloring(graph, composed_run.outputs, 1)
