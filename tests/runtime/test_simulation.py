"""Tests for simulations induced by assignments and replayability."""

from __future__ import annotations

import pytest

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.exceptions import SimulationError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.runtime.simulation import (
    run_deterministic,
    run_randomized,
    simulate_with_assignment,
    simulation_is_successful,
)


class TestInducedSimulation:
    def test_replay_reproduces_random_run(self):
        """The paper's replay principle: the assignment recorded from an
        execution induces a simulation with identical outputs."""
        g = with_uniform_input(cycle_graph(5))
        algorithm = TwoHopColoringAlgorithm()
        run = run_randomized(algorithm, g, seed=4)
        replay = simulate_with_assignment(algorithm, g, run.trace.assignment())
        assert replay.successful
        assert replay.outputs == run.outputs

    def test_short_assignment_unsuccessful(self):
        g = with_uniform_input(cycle_graph(5))
        algorithm = TwoHopColoringAlgorithm()
        assignment = {v: "0" for v in g.nodes}  # one round cannot finish
        result = simulate_with_assignment(algorithm, g, assignment)
        assert not result.successful

    def test_simulation_length_is_min_tape(self):
        g = with_uniform_input(path_graph(2))
        algorithm = AnonymousMISAlgorithm()
        assignment = {0: "111111", 1: "0"}
        result = simulate_with_assignment(algorithm, g, assignment)
        assert result.rounds <= 1

    def test_missing_node_rejected(self):
        g = with_uniform_input(path_graph(2))
        with pytest.raises(SimulationError, match="does not cover"):
            simulate_with_assignment(AnonymousMISAlgorithm(), g, {0: "01"})

    def test_deterministic_algorithm_rejected(self):
        g = with_uniform_input(path_graph(2))
        colored = apply_two_hop_coloring(g, greedy_two_hop_coloring(g))
        with pytest.raises(SimulationError, match="deterministic"):
            simulate_with_assignment(
                GreedyMISByColor(), colored, {v: "0" for v in colored.nodes}
            )

    def test_success_predicate(self):
        g = with_uniform_input(path_graph(2))
        algorithm = AnonymousMISAlgorithm()
        run = run_randomized(algorithm, g, seed=1)
        assert simulation_is_successful(algorithm, g, run.trace.assignment())


class TestRunners:
    def test_run_randomized_deterministic_per_seed(self):
        g = with_uniform_input(cycle_graph(6))
        a = run_randomized(TwoHopColoringAlgorithm(), g, seed=8)
        b = run_randomized(TwoHopColoringAlgorithm(), g, seed=8)
        assert a.outputs == b.outputs

    def test_run_randomized_round_limit_raises(self):
        g = with_uniform_input(cycle_graph(6))
        with pytest.raises(SimulationError, match="did not terminate"):
            run_randomized(TwoHopColoringAlgorithm(), g, seed=1, max_rounds=1)

    def test_run_deterministic_requires_deterministic(self):
        g = with_uniform_input(path_graph(2))
        with pytest.raises(SimulationError, match="randomized"):
            run_deterministic(AnonymousMISAlgorithm(), g)

    def test_run_deterministic_greedy_mis(self):
        g = with_uniform_input(path_graph(4))
        colored = apply_two_hop_coloring(g, greedy_two_hop_coloring(g))
        result = run_deterministic(GreedyMISByColor(), colored)
        assert result.all_decided
