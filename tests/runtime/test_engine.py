"""Tests for the unified execution engine (``repro.runtime.engine``).

The kernel's contract is delivery-agnostic: the same funding rule, the
same irrevocability enforcement, the same trace levels and the same
metrics must hold whether messages move by anonymous broadcast or by
port numbering.  The contract tests here are therefore parametrized
over both disciplines — one behavior, two wirings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import pytest

from repro.exceptions import (
    OutputAlreadySetError,
    RuntimeModelError,
    SimulationError,
)
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.engine import (
    BroadcastDelivery,
    EngineMetricsTotals,
    ExecutionEngine,
    ExecutionMetrics,
    ExecutionPolicy,
    PortDelivery,
    RoundHook,
    _infer_delivery,
    _trace_level,
    collect_engine_metrics,
    execute,
)
from repro.runtime.port_model import PortAwareAlgorithm
from repro.runtime.tape import FixedTape


def _uniform(graph, value=0):
    return graph.with_layer("input", {v: value for v in graph.nodes})


# ----------------------------------------------------------------------
# Two algorithms with identical observable behavior, one per discipline.
# ----------------------------------------------------------------------


def broadcast_counter(stop_at: int, bits: int = 0, out=None):
    """Count rounds; decide after ``stop_at`` (or per custom ``out``)."""
    out = out or (lambda s: s if s >= stop_at else None)
    return FunctionAlgorithm(
        init=lambda label, deg: 0,
        msg=lambda s: s,
        step=lambda s, received, b: s + 1,
        out=out,
        bits_per_round=bits,
        name="counter",
    )


@dataclass(frozen=True)
class _PortCounterState:
    count: int


class PortCounter(PortAwareAlgorithm):
    """The port-model twin of :func:`broadcast_counter`."""

    name = "port-counter"

    def __init__(self, stop_at: int, bits: int = 0, out=None) -> None:
        self.stop_at = stop_at
        self.bits_per_round = bits
        self.out = out or (lambda s: s if s >= stop_at else None)

    def init_state(self, input_label, degree: int):
        return _PortCounterState(count=0)

    def messages(self, state: _PortCounterState, degree: int):
        return [state.count] * degree

    def transition(self, state: _PortCounterState, received, bits: str):
        return replace(state, count=state.count + 1)

    def output(self, state: _PortCounterState):
        return self.out(state.count)


MODELS = ["broadcast", "port"]


def make_counter(model: str, stop_at: int, bits: int = 0, out=None):
    if model == "broadcast":
        return broadcast_counter(stop_at, bits=bits, out=out)
    return PortCounter(stop_at, bits=bits, out=out)


def make_engine(model: str, algorithm, graph, tapes, policy=None, hooks=()):
    delivery = BroadcastDelivery() if model == "broadcast" else PortDelivery()
    return ExecutionEngine(
        algorithm, graph, tapes, delivery=delivery, policy=policy, hooks=hooks
    )


# ----------------------------------------------------------------------
# Policy and trace-level validation
# ----------------------------------------------------------------------


class TestExecutionPolicy:
    def test_rejects_unknown_trace_level(self):
        with pytest.raises(RuntimeModelError, match="trace level"):
            ExecutionPolicy(trace="verbose")

    def test_rejects_negative_round_budget(self):
        with pytest.raises(RuntimeModelError, match="nonnegative"):
            ExecutionPolicy(max_rounds=-1)

    def test_trace_level_normalization(self):
        assert _trace_level(None) == "full"
        assert _trace_level(None, default="off") == "off"
        assert _trace_level(True) == "full"
        assert _trace_level(False) == "off"
        assert _trace_level("outputs") == "outputs"
        with pytest.raises(RuntimeModelError, match="trace level"):
            _trace_level("everything")


@pytest.mark.parametrize("model", MODELS)
class TestPolicyEdgeCases:
    """Degenerate budgets: zero rounds allowed, zero rounds funded."""

    def test_max_rounds_zero_runs_no_round(self, model):
        g = _uniform(path_graph(3))
        engine = make_engine(
            model, make_counter(model, 5), g, {v: FixedTape("") for v in g.nodes}
        )
        result = engine.run(max_rounds=0)
        assert result.rounds == 0
        assert not result.all_decided
        assert result.outputs == {}
        assert result.metrics.messages_sent == 0

    def test_max_rounds_zero_keeps_init_decisions(self, model):
        # stop_at=0 decides at state initialization, before any round.
        g = _uniform(path_graph(3))
        engine = make_engine(
            model, make_counter(model, 0), g, {v: FixedTape("") for v in g.nodes}
        )
        result = engine.run(max_rounds=0)
        assert result.rounds == 0
        assert result.all_decided
        assert result.outputs == {v: 0 for v in g.nodes}

    def test_tapes_funding_exactly_zero_rounds(self, model):
        # One node's tape cannot fund even the first round: the funding
        # rule stops the run before any state mutation, without raising.
        g = _uniform(path_graph(3))
        algorithm = make_counter(model, stop_at=5, bits=2)
        tapes = {0: FixedTape("00"), 1: FixedTape("0"), 2: FixedTape("0000")}
        engine = make_engine(model, algorithm, g, tapes)
        result = engine.run(max_rounds=100)
        assert result.rounds == 0  # min_v floor(|b(v)| / 2) == 0
        assert not result.all_decided
        assert result.metrics.bits_drawn == 0
        for v in g.nodes:
            state = engine.state_of(v)
            count = state if model == "broadcast" else state.count
            assert count == 0  # no torn round


# ----------------------------------------------------------------------
# The delivery-agnostic kernel contract
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model", MODELS)
class TestKernelContract:
    def test_missing_tape_rejected(self, model):
        g = _uniform(path_graph(2))
        with pytest.raises(RuntimeModelError, match="no bit source"):
            make_engine(model, make_counter(model, 1), g, {0: FixedTape("")})

    def test_run_stops_before_unfunded_round(self, model):
        """The paper's ``l = min length`` funding rule, both disciplines:
        the run executes exactly the funded rounds and never mutates
        state with a partially funded round."""
        g = _uniform(path_graph(3))
        algorithm = make_counter(model, stop_at=100, bits=1)
        tapes = {0: FixedTape("00000"), 1: FixedTape("000"), 2: FixedTape("0000")}
        engine = make_engine(model, algorithm, g, tapes)
        result = engine.run(max_rounds=100)
        assert result.rounds == 3  # min_v floor(|b(v)| / bits_per_round)
        assert not result.all_decided
        # Every node took exactly 3 transitions — no torn round.
        for v in g.nodes:
            state = engine.state_of(v)
            count = state if model == "broadcast" else state.count
            assert count == 3

    def test_step_without_funding_raises(self, model):
        g = _uniform(path_graph(2))
        engine = make_engine(
            model,
            make_counter(model, 5, bits=1),
            g,
            {v: FixedTape("") for v in g.nodes},
        )
        with pytest.raises(RuntimeModelError, match="exhausted"):
            engine.step()

    def test_changed_output_names_node_values_and_round(self, model):
        flipper = make_counter(model, 0, out=lambda count: count)
        g = _uniform(path_graph(2))
        engine = make_engine(model, flipper, g, {v: FixedTape("") for v in g.nodes})
        with pytest.raises(
            OutputAlreadySetError, match=r"from 0 to 1 in round 1"
        ):
            engine.step()

    def test_output_reverting_to_none_raises(self, model):
        fickle = make_counter(model, 0, out=lambda count: 0 if count == 0 else None)
        g = _uniform(path_graph(2))
        engine = make_engine(model, fickle, g, {v: FixedTape("") for v in g.nodes})
        with pytest.raises(OutputAlreadySetError, match=r"to None in round 1"):
            engine.step()

    def test_trace_level_off(self, model):
        g = _uniform(path_graph(2))
        engine = make_engine(
            model,
            make_counter(model, 2),
            g,
            {v: FixedTape("") for v in g.nodes},
            policy=ExecutionPolicy(trace="off"),
        )
        assert engine.run(max_rounds=5).trace is None

    def test_trace_level_outputs(self, model):
        g = _uniform(path_graph(2))
        engine = make_engine(
            model,
            make_counter(model, 2),
            g,
            {v: FixedTape("") for v in g.nodes},
            policy=ExecutionPolicy(trace="outputs"),
        )
        trace = engine.run(max_rounds=5).trace
        assert trace.num_rounds == 2
        assert trace.output_round(0) == 2  # round accounting still works
        for record in trace.rounds:
            assert record.sent == {} and record.bits == {}  # but no payloads

    def test_trace_level_full_records_messages_and_bits(self, model):
        g = _uniform(path_graph(2))
        engine = make_engine(
            model,
            make_counter(model, 2, bits=1),
            g,
            {v: FixedTape("11") for v in g.nodes},
        )
        trace = engine.run(max_rounds=5).trace
        assert trace.num_rounds == 2
        for record in trace.rounds:
            assert set(record.sent) == set(g.nodes)
            assert all(bits == "1" for bits in record.bits.values())

    def test_metrics_on_a_known_run(self, model):
        g = _uniform(cycle_graph(4))
        engine = make_engine(
            model,
            make_counter(model, 3, bits=1),
            g,
            {v: FixedTape("11111") for v in g.nodes},
        )
        result = engine.run(max_rounds=10)
        metrics = result.metrics
        assert metrics.rounds == 3
        # 4 nodes of degree 2, one payload per edge-endpoint per round.
        assert metrics.messages_sent == 3 * 8
        assert metrics.bits_drawn == 3 * 4
        assert metrics.decided_per_round == [0, 0, 0, 4]
        assert metrics.nodes_decided == 4
        assert metrics.wall_s >= 0.0

    def test_decided_at_init_lands_in_round_zero(self, model):
        g = _uniform(path_graph(2))
        instant = make_counter(model, 0)
        engine = make_engine(model, instant, g, {v: FixedTape("") for v in g.nodes})
        result = engine.run(max_rounds=5)
        assert result.rounds == 0
        assert result.metrics.decided_per_round == [2]

    def test_hooks_fire_per_round_and_bracket_run(self, model):
        events = []

        class Probe(RoundHook):
            def on_start(self, engine):
                events.append("start")

            def on_round(self, engine, new_outputs):
                events.append(("round", engine.rounds, dict(new_outputs)))

            def on_finish(self, engine, result):
                events.append(("finish", result.rounds))

        g = _uniform(path_graph(2))
        engine = make_engine(
            model,
            make_counter(model, 2),
            g,
            {v: FixedTape("") for v in g.nodes},
            hooks=[Probe()],
        )
        engine.run(max_rounds=5)
        assert events[0] == "start"
        assert events[-1] == ("finish", 2)
        round_events = [e for e in events if isinstance(e, tuple) and e[0] == "round"]
        assert [e[1] for e in round_events] == [1, 2]
        assert round_events[-1][2] == {0: 2, 1: 2}


# ----------------------------------------------------------------------
# Metrics collection
# ----------------------------------------------------------------------


class TestMetricsCollection:
    def _run_once(self):
        g = _uniform(path_graph(2))
        engine = make_engine(
            "broadcast", broadcast_counter(2), g, {v: FixedTape("") for v in g.nodes}
        )
        engine.run(max_rounds=5)

    def test_collector_totals(self):
        with collect_engine_metrics() as totals:
            self._run_once()
            self._run_once()
        assert totals.executions == 2
        assert totals.rounds == 4
        assert totals.nodes_decided == 4

    def test_collectors_nest(self):
        with collect_engine_metrics() as outer:
            self._run_once()
            with collect_engine_metrics() as inner:
                self._run_once()
        assert inner.executions == 1
        assert outer.executions == 2

    def test_absorb_and_as_dict(self):
        totals = EngineMetricsTotals()
        totals.absorb(
            ExecutionMetrics(
                rounds=3, messages_sent=10, bits_drawn=6,
                decided_per_round=[0, 2], wall_s=0.5,
            )
        )
        payload = totals.as_dict(include_wall=False)
        assert payload == {
            "executions": 1,
            "rounds": 3,
            "messages_sent": 10,
            "bits_drawn": 6,
            "nodes_decided": 2,
            "faults_injected": 0,
        }
        assert totals.as_dict()["wall_s"] == 0.5


# ----------------------------------------------------------------------
# The execute() entry point
# ----------------------------------------------------------------------


class TestExecute:
    def test_rejects_multiple_randomness_sources(self):
        g = _uniform(path_graph(2))
        algorithm = broadcast_counter(1, bits=1)
        with pytest.raises(SimulationError, match="assignment and seed"):
            execute(algorithm, g, assignment={0: "0", 1: "0"}, seed=3)

    def test_randomized_without_source_rejected(self):
        g = _uniform(path_graph(2))
        with pytest.raises(SimulationError, match="pass seed=, assignment= or tapes="):
            execute(broadcast_counter(1, bits=1), g)

    def test_assignment_must_cover_all_nodes(self):
        g = _uniform(path_graph(2))
        with pytest.raises(SimulationError, match="does not cover"):
            execute(broadcast_counter(1, bits=1), g, assignment={0: "0"})

    def test_assignment_requires_randomized_algorithm(self):
        g = _uniform(path_graph(2))
        with pytest.raises(SimulationError, match="bits_per_round >= 1"):
            execute(broadcast_counter(1), g, assignment={0: "0", 1: "0"})

    def test_assignment_funds_min_rounds_and_defaults_trace_off(self):
        g = _uniform(path_graph(2))
        algorithm = broadcast_counter(100, bits=1)
        result = execute(algorithm, g, assignment={0: "0000", 1: "00"})
        assert result.rounds == 2
        assert not result.all_decided
        assert result.trace is None  # bulk-search default

    def test_seeded_run_replays_through_its_assignment(self):
        g = _uniform(path_graph(3))
        algorithm = FunctionAlgorithm(
            init=lambda label, deg: "",
            msg=lambda s: s,
            step=lambda s, received, bits: s + bits,
            out=lambda s: s if len(s) >= 3 else None,
            bits_per_round=1,
            name="bit-collector",
        )
        seeded = execute(algorithm, g, seed=9)
        assert seeded.all_decided
        replay = execute(
            algorithm, g, assignment=seeded.trace.assignment()
        )
        assert replay.outputs == seeded.outputs
        assert replay.rounds == seeded.rounds

    def test_deterministic_runs_need_no_source(self):
        g = _uniform(path_graph(2))
        result = execute(broadcast_counter(2), g)
        assert result.all_decided and result.rounds == 2
        assert result.successful  # alias of all_decided

    def test_require_decided_message_mentions_seed(self):
        g = _uniform(path_graph(2))
        algorithm = broadcast_counter(100, bits=1)
        with pytest.raises(SimulationError, match=r"within 3 rounds .* with seed 5"):
            execute(algorithm, g, seed=5, max_rounds=3, require_decided=True)

    def test_require_decided_message_without_seed(self):
        g = _uniform(path_graph(2))
        with pytest.raises(SimulationError, match=r"within 3 rounds on"):
            execute(
                broadcast_counter(100), g, max_rounds=3, require_decided=True
            )

    def test_delivery_inferred_from_algorithm_type(self):
        assert isinstance(_infer_delivery(broadcast_counter(1)), BroadcastDelivery)
        assert isinstance(_infer_delivery(PortCounter(1)), PortDelivery)

    def test_delivery_inferred_for_duck_typed_algorithms(self):
        class DuckPort:
            bits_per_round = 0
            name = "duck"

            def init_state(self, label, degree):
                return 0

            def messages(self, state, degree):
                return [None] * degree

            def transition(self, state, received, bits):
                return state + 1

            def output(self, state):
                return state if state >= 1 else None

        assert isinstance(_infer_delivery(DuckPort()), PortDelivery)
        g = _uniform(path_graph(2))
        result = execute(DuckPort(), g, max_rounds=5)
        assert result.all_decided

    def test_execute_runs_port_algorithms_natively(self):
        g = _uniform(path_graph(2))
        result = execute(PortCounter(2), g, max_rounds=5)
        assert result.all_decided and result.rounds == 2

    def test_explicit_policy_wins(self):
        g = _uniform(path_graph(2))
        result = execute(
            broadcast_counter(2),
            g,
            policy=ExecutionPolicy(max_rounds=1, trace="off"),
        )
        assert result.rounds == 1 and not result.all_decided
        assert result.trace is None

    def test_port_arity_violation_names_the_node(self):
        class Broken(PortCounter):
            def messages(self, state, degree):
                return [0]  # wrong arity on any node of degree != 1

        g = _uniform(path_graph(3))
        with pytest.raises(RuntimeModelError, match=r"produced 1 messages for 2 ports"):
            execute(Broken(5), g, max_rounds=3)


class TestOutputLabeling:
    def test_labeling_requires_all_decided(self):
        g = _uniform(path_graph(2))
        result = execute(broadcast_counter(100), g, max_rounds=2)
        with pytest.raises(RuntimeModelError, match="did not decide"):
            result.output_labeling()

    def test_labeling_copies_outputs(self):
        g = _uniform(path_graph(2))
        result = execute(broadcast_counter(1), g)
        labeling = result.output_labeling()
        assert labeling == result.outputs
        labeling[0] = "mutated"
        assert result.outputs[0] == 1
