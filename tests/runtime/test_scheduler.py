"""Tests for the synchronous scheduler and the anonymous-model contract."""

from __future__ import annotations

import pytest

from repro.exceptions import OutputAlreadySetError, RuntimeModelError
from repro.graphs.builders import cycle_graph, path_graph, star_graph
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.scheduler import SynchronousScheduler
from repro.runtime.tape import FixedTape, RandomTape


def _uniform(graph, value=0):
    return graph.with_layer("input", {v: value for v in graph.nodes})


def counting_algorithm(stop_at: int):
    """Deterministic: count rounds; output after ``stop_at`` rounds."""
    return FunctionAlgorithm(
        init=lambda label, deg: 0,
        msg=lambda s: s,
        step=lambda s, received, bits: s + 1,
        out=lambda s: s if s >= stop_at else None,
        bits_per_round=0,
        name="counter",
    )


def degree_sum_algorithm():
    """Each node outputs the sum of neighbor degrees after one round."""
    return FunctionAlgorithm(
        init=lambda label, deg: ("fresh", deg),
        msg=lambda s: s[1],
        step=lambda s, received, bits: ("done", sum(received)),
        out=lambda s: s[1] if s[0] == "done" else None,
        bits_per_round=0,
        name="degree-sum",
    )


class TestExecution:
    def test_runs_until_all_decide(self):
        g = _uniform(cycle_graph(4))
        scheduler = SynchronousScheduler(
            counting_algorithm(3), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=10)
        assert result.all_decided
        assert result.rounds == 3
        assert all(value == 3 for value in result.outputs.values())

    def test_round_limit(self):
        g = _uniform(cycle_graph(4))
        scheduler = SynchronousScheduler(
            counting_algorithm(100), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=5)
        assert not result.all_decided
        assert result.rounds == 5

    def test_messages_delivered_as_sorted_multiset(self):
        g = _uniform(star_graph(3))
        scheduler = SynchronousScheduler(
            degree_sum_algorithm(), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=2)
        assert result.outputs[0] == 3  # center sees three degree-1 leaves
        assert result.outputs[1] == 3  # each leaf sees the degree-3 center

    def test_missing_tape_rejected(self):
        g = _uniform(path_graph(2))
        with pytest.raises(RuntimeModelError, match="no bit source"):
            SynchronousScheduler(counting_algorithm(1), g, {0: FixedTape("")})

    def test_fixed_tape_bounds_rounds(self):
        g = _uniform(path_graph(2))
        algorithm = FunctionAlgorithm(
            init=lambda label, deg: 0,
            msg=lambda s: None,
            step=lambda s, received, bits: s + 1,
            out=lambda s: None,  # never decides
            bits_per_round=1,
            name="undecided",
        )
        scheduler = SynchronousScheduler(
            algorithm, g, {v: FixedTape("000") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=100)
        assert result.rounds == 3  # tape-funded rounds only
        assert not result.all_decided

    def test_step_without_funding_raises(self):
        g = _uniform(path_graph(2))
        algorithm = counting_algorithm(5)
        algorithm.bits_per_round = 1
        scheduler = SynchronousScheduler(
            algorithm, g, {v: FixedTape("") for v in g.nodes}
        )
        with pytest.raises(RuntimeModelError, match="exhausted"):
            scheduler.step()


class TestIrrevocability:
    def test_changing_output_raises(self):
        g = _uniform(path_graph(2))
        flipper = FunctionAlgorithm(
            init=lambda label, deg: 0,
            msg=lambda s: None,
            step=lambda s, received, bits: s + 1,
            out=lambda s: s,  # output changes every round: illegal
            bits_per_round=0,
            name="flipper",
        )
        scheduler = SynchronousScheduler(flipper, g, {v: FixedTape("") for v in g.nodes})
        # Output 0 registers at initialization; the first step changes it.
        with pytest.raises(OutputAlreadySetError):
            scheduler.step()

    def test_output_at_init_allowed(self):
        g = _uniform(path_graph(2))
        instant = FunctionAlgorithm(
            init=lambda label, deg: deg,
            msg=lambda s: None,
            step=lambda s, received, bits: s,
            out=lambda s: s,
            bits_per_round=0,
            name="instant",
        )
        scheduler = SynchronousScheduler(instant, g, {v: FixedTape("") for v in g.nodes})
        result = scheduler.run(max_rounds=5)
        assert result.rounds == 0
        assert result.all_decided


class TestTrace:
    def test_trace_records_rounds_and_bits(self):
        g = _uniform(path_graph(2))
        algorithm = FunctionAlgorithm(
            init=lambda label, deg: "",
            msg=lambda s: s,
            step=lambda s, received, bits: s + bits,
            out=lambda s: s if len(s) >= 2 else None,
            bits_per_round=1,
            name="bit-collector",
        )
        scheduler = SynchronousScheduler(
            algorithm, g, {v: RandomTape(v) for v in g.nodes}
        )
        result = scheduler.run(max_rounds=10)
        assert result.all_decided
        trace = result.trace
        assert trace.num_rounds == result.rounds
        for v in g.nodes:
            assert trace.bits_of(v) == result.outputs[v]
        assert trace.assignment() == result.outputs

    def test_output_round_lookup(self):
        g = _uniform(path_graph(2))
        scheduler = SynchronousScheduler(
            counting_algorithm(2), g, {v: FixedTape("") for v in g.nodes}
        )
        result = scheduler.run(max_rounds=5)
        assert result.trace.output_round(0) == 2
