"""Property-based tests over the derandomization core."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.core.infinity import AInfinitySolver
from repro.core.practical import PracticalDerandomizer, quotient_from_view
from repro.factor.quotient import finite_view_graph
from repro.graphs.builders import random_connected_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import lift_graph
from repro.problems.mis import MISProblem
from repro.runtime.simulation import run_randomized
from repro.views.local_views import view


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


small_graph = st.tuples(
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=400),
)


@given(small_graph, st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_quotient_from_view_matches_centralized(params, fiber):
    """Every node's locally-reconstructed quotient is isomorphic to the
    centralized finite view graph — on random colored graphs and lifts."""
    n, seed = params
    base = colored(with_uniform_input(random_connected_graph(n, 0.4, seed=seed)))
    if fiber > 1 and base.num_edges == base.num_nodes - 1:
        return  # trees have no connected nontrivial lifts
    graph, _ = lift_graph(base, fiber, seed=seed) if fiber > 1 else (base, None)
    total = graph.num_nodes
    tree = view(graph, graph.nodes[0], 2 * (total + 1))
    rebuilt = quotient_from_view(tree, total + 1, ("input", "color"))
    central = finite_view_graph(graph)
    assert are_isomorphic(rebuilt, central.graph)


@given(small_graph)
@settings(max_examples=15, deadline=None)
def test_derandomized_mis_valid_on_random_graphs(params):
    """A_infinity yields a valid MIS on arbitrary greedy-colored random
    graphs (Theorem 2, property-based)."""
    n, seed = params
    graph = colored(with_uniform_input(random_connected_graph(n, 0.35, seed=seed)))
    solver = AInfinitySolver(
        MISProblem(), AnonymousMISAlgorithm(), strategy="prg", max_assignment_length=128
    )
    result = solver.solve(graph)
    plain = graph.with_only_layers(["input"])
    assert MISProblem().is_valid_output(plain, result.outputs)


@given(small_graph)
@settings(max_examples=15, deadline=None)
def test_practical_agrees_with_infinity(params):
    """The practical derandomizer and A_infinity implement the same
    selection rule, so outputs coincide on every instance."""
    n, seed = params
    graph = colored(with_uniform_input(random_connected_graph(n, 0.35, seed=seed)))
    problem, algorithm = MISProblem(), AnonymousMISAlgorithm()
    kwargs = dict(strategy="prg", max_assignment_length=128)
    a = AInfinitySolver(problem, algorithm, **kwargs).solve(graph)
    b = PracticalDerandomizer(problem, algorithm, **kwargs).solve(graph)
    assert a.outputs == b.outputs
    assert a.assignment == b.assignment


@given(small_graph, st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_recorded_random_colorings_always_valid(params, run_seed):
    """Las-Vegas means probability-1 validity: no (graph, seed) pair may
    ever produce an invalid 2-hop coloring."""
    n, seed = params
    graph = with_uniform_input(random_connected_graph(n, 0.3, seed=seed))
    result = run_randomized(TwoHopColoringAlgorithm(), graph, seed=run_seed)
    from repro.graphs.coloring import is_two_hop_coloring

    assert is_two_hop_coloring(graph, result.outputs)
