"""Tests for the assignment search (Section 2.2 / Update-Bits)."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.core.assignment_search import (
    SearchBudgetExceeded,
    enumerate_extensions,
    smallest_successful_assignment,
    smallest_successful_extension,
)
from repro.core.orders import assignment_sort_key
from repro.exceptions import DerandomizationError
from repro.graphs.builders import complete_graph, path_graph, with_uniform_input
from repro.runtime.simulation import simulate_with_assignment


class TestEnumeration:
    def test_lexicographic_order(self):
        assignments = list(
            enumerate_extensions({"a": "", "b": ""}, ["a", "b"], 1)
        )
        assert assignments == [
            {"a": "0", "b": "0"},
            {"a": "0", "b": "1"},
            {"a": "1", "b": "0"},
            {"a": "1", "b": "1"},
        ]

    def test_prefixes_respected(self):
        assignments = list(
            enumerate_extensions({"a": "1", "b": "0"}, ["a", "b"], 2)
        )
        assert all(a["a"].startswith("1") and a["b"].startswith("0") for a in assignments)
        assert len(assignments) == 4

    def test_order_matches_sort_key(self):
        order = ["a", "b"]
        assignments = list(enumerate_extensions({"a": "", "b": ""}, order, 2))
        keys = [assignment_sort_key(a, order) for a in assignments]
        assert keys == sorted(keys)

    def test_prg_is_permutation(self):
        order = ["a"]
        lex = list(enumerate_extensions({"a": ""}, order, 3))
        prg = list(enumerate_extensions({"a": ""}, order, 3, strategy="prg"))
        assert sorted(map(repr, lex)) == sorted(map(repr, prg))
        assert lex != prg  # virtually certain for 8 items

    def test_prg_deterministic(self):
        a = list(enumerate_extensions({"a": ""}, ["a"], 3, strategy="prg"))
        b = list(enumerate_extensions({"a": ""}, ["a"], 3, strategy="prg"))
        assert a == b

    def test_limit(self):
        assignments = list(enumerate_extensions({"a": ""}, ["a"], 4, limit=3))
        assert len(assignments) == 3

    def test_too_long_prefix_rejected(self):
        with pytest.raises(DerandomizationError, match="not extendable"):
            list(enumerate_extensions({"a": "0000"}, ["a"], 2))

    def test_unknown_strategy(self):
        with pytest.raises(DerandomizationError, match="unknown search strategy"):
            list(enumerate_extensions({"a": ""}, ["a"], 1, strategy="bogus"))


class TestSmallestSuccessful:
    def test_single_node_two_hop_coloring(self):
        g = with_uniform_input(path_graph(1))
        algorithm = TwoHopColoringAlgorithm()
        found = smallest_successful_assignment(algorithm, g, [0], max_length=8)
        # A single node commits at round 3 regardless of bits: smallest
        # is the all-zero length-3 assignment.
        assert found == {0: "000"}

    def test_result_is_minimal(self):
        g = with_uniform_input(path_graph(2))
        algorithm = AnonymousMISAlgorithm()
        order = list(g.nodes)
        found = smallest_successful_assignment(algorithm, g, order, max_length=8)
        found_key = assignment_sort_key(found, order)
        # Exhaustively confirm nothing smaller succeeds.
        for t in range(1, found_key[0] + 1):
            for candidate in enumerate_extensions({v: "" for v in order}, order, t):
                key = assignment_sort_key(candidate, order)
                if key < found_key:
                    assert not simulate_with_assignment(
                        algorithm, g, candidate
                    ).successful

    def test_budget_guard(self):
        g = with_uniform_input(complete_graph(4))
        algorithm = TwoHopColoringAlgorithm()
        with pytest.raises(SearchBudgetExceeded):
            smallest_successful_assignment(
                algorithm, g, list(g.nodes), max_length=20, budget=10
            )

    def test_max_length_guard(self):
        g = with_uniform_input(path_graph(2))
        algorithm = TwoHopColoringAlgorithm()
        with pytest.raises(DerandomizationError, match="no successful assignment"):
            smallest_successful_assignment(
                algorithm, g, list(g.nodes), max_length=2
            )

    def test_prg_strategy_finds_success(self):
        g = with_uniform_input(complete_graph(4))
        algorithm = AnonymousMISAlgorithm()
        found = smallest_successful_assignment(
            algorithm, g, list(g.nodes), max_length=64, strategy="prg"
        )
        assert simulate_with_assignment(algorithm, g, found).successful


class TestExtensions:
    def test_extension_respects_prefix(self):
        g = with_uniform_input(path_graph(2))
        algorithm = AnonymousMISAlgorithm()
        prefix = {0: "1", 1: "0"}
        found = smallest_successful_extension(
            algorithm, g, list(g.nodes), prefix, target_length=4
        )
        assert found is not None
        assert found[0].startswith("1") and found[1].startswith("0")
        assert simulate_with_assignment(algorithm, g, found).successful

    def test_extension_none_when_too_short(self):
        g = with_uniform_input(path_graph(2))
        algorithm = TwoHopColoringAlgorithm()
        found = smallest_successful_extension(
            algorithm, g, list(g.nodes), {0: "", 1: ""}, target_length=1
        )
        assert found is None
