"""Tests for the practical derandomizer and the end-to-end pipeline."""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.core.derandomize import derandomize_pipeline
from repro.core.infinity import AInfinitySolver
from repro.core.practical import PracticalDerandomizer, quotient_from_view
from repro.exceptions import ProblemError, ViewError
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift
from repro.factor.quotient import finite_view_graph
from repro.problems.coloring import ColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem
from repro.views.local_views import view


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestQuotientFromView:
    @pytest.mark.parametrize("fiber", [1, 2, 4])
    def test_reconstruction_matches_centralized_quotient(self, fiber):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, fiber)
        n = lift.num_nodes
        t = view(lift, lift.nodes[0], 2 * (n + 1))
        rebuilt = quotient_from_view(t, n + 1, ("input", "color"))
        central = finite_view_graph(lift)
        assert are_isomorphic(rebuilt, central.graph)

    def test_prime_graph_reconstruction(self):
        g = colored(with_uniform_input(star_graph(3)))
        n = g.num_nodes
        t = view(g, 0, 2 * (n + 1))
        rebuilt = quotient_from_view(t, n + 1, ("input", "color"))
        assert are_isomorphic(rebuilt, g)

    def test_single_node(self):
        g = colored(with_uniform_input(path_graph(1)))
        t = view(g, 0, 4)
        rebuilt = quotient_from_view(t, 2, ("input", "color"))
        assert rebuilt.num_nodes == 1

    def test_shallow_view_rejected(self):
        g = colored(with_uniform_input(cycle_graph(4)))
        t = view(g, 0, 3)
        with pytest.raises(ViewError, match="too shallow"):
            quotient_from_view(t, 5, ("input", "color"))


class TestPracticalDerandomizer:
    @pytest.mark.parametrize(
        "problem,algorithm",
        [
            (MISProblem(), AnonymousMISAlgorithm()),
            (ColoringProblem(), VertexColoringAlgorithm()),
        ],
        ids=["mis", "coloring"],
    )
    def test_valid_on_lifted_cycle(self, problem, algorithm):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 4)
        solver = PracticalDerandomizer(problem, algorithm)
        result = solver.solve(lift)
        plain = lift.with_only_layers(["input"])
        assert problem.is_valid_output(plain, result.outputs)
        assert result.reconstructions_agreed

    def test_agrees_with_a_infinity(self):
        """Practical and A_infinity run the same selection rule, so their
        outputs coincide exactly."""
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 2)
        problem, algorithm = MISProblem(), AnonymousMISAlgorithm()
        practical = PracticalDerandomizer(problem, algorithm).solve(lift)
        infinity = AInfinitySolver(problem, algorithm).solve(lift)
        assert practical.outputs == infinity.outputs
        assert practical.assignment == infinity.assignment


class TestPipeline:
    def bundles(self):
        decider = WellFormedInputDecider()
        return [
            GranBundle(MISProblem(), AnonymousMISAlgorithm(), decider),
            GranBundle(ColoringProblem(), VertexColoringAlgorithm(), decider),
            GranBundle(MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), decider),
        ]

    @pytest.mark.parametrize(
        "graph_name,graph",
        [
            ("cycle-5", with_uniform_input(cycle_graph(5))),
            ("path-4", with_uniform_input(path_graph(4))),
            ("star-4", with_uniform_input(star_graph(4))),
        ],
        ids=["cycle-5", "path-4", "star-4"],
    )
    def test_pipeline_end_to_end(self, graph_name, graph):
        for bundle in self.bundles():
            result = derandomize_pipeline(bundle, graph, seed=3, strategy="prg")
            # derandomize_pipeline validates outputs internally; check the
            # reported shape too.
            assert set(result.outputs) == set(graph.nodes)
            assert result.stage1_rounds >= 3
            assert result.quotient_size <= graph.num_nodes

    def test_pipeline_deterministic_given_coloring_seed(self):
        g = with_uniform_input(cycle_graph(6))
        bundle = self.bundles()[0]
        a = derandomize_pipeline(bundle, g, seed=11, strategy="prg")
        b = derandomize_pipeline(bundle, g, seed=11, strategy="prg")
        assert a.outputs == b.outputs
        assert a.coloring == b.coloring

    def test_pipeline_rejects_non_instance(self):
        bundle = self.bundles()[0]
        with pytest.raises(ProblemError, match="not an instance"):
            derandomize_pipeline(bundle, cycle_graph(4), seed=0)

    def test_pipeline_on_petersen(self):
        bundle = self.bundles()[0]
        g = with_uniform_input(petersen_graph())
        result = derandomize_pipeline(bundle, g, seed=5, strategy="prg")
        assert MISProblem().is_valid_output(g, result.outputs)
