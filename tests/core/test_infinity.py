"""Tests for A_infinity (Theorem 2) on finite graphs."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.core.infinity import AInfinitySolver
from repro.exceptions import DerandomizationError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.problems.coloring import ColoringProblem
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def colored_c3_lift(fiber: int):
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, _ = cyclic_lift(base, fiber)
    return lift


class TestTheorem2:
    @pytest.mark.parametrize(
        "problem,algorithm",
        [
            (MISProblem(), AnonymousMISAlgorithm()),
            (ColoringProblem(), VertexColoringAlgorithm()),
            (MaximalMatchingProblem(), AnonymousMatchingAlgorithm()),
        ],
        ids=["mis", "coloring", "matching"],
    )
    @pytest.mark.parametrize("fiber", [1, 2, 4])
    def test_valid_outputs_on_lifted_cycles(self, problem, algorithm, fiber):
        instance = colored_c3_lift(fiber)
        solver = AInfinitySolver(problem, algorithm)
        result = solver.solve(instance)
        plain = instance.with_only_layers(["input"])
        assert problem.is_valid_output(plain, result.outputs)
        assert result.quotient.graph.num_nodes == 3

    def test_deterministic(self):
        instance = colored_c3_lift(2)
        solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
        a = solver.solve(instance)
        b = solver.solve(instance)
        assert a.outputs == b.outputs
        assert a.assignment == b.assignment

    def test_outputs_constant_on_fibers(self):
        instance = colored_c3_lift(4)
        solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
        result = solver.solve(instance)
        for target in result.quotient.graph.nodes:
            fiber = result.quotient.map.fiber(target)
            assert len({result.outputs[v] for v in fiber}) == 1

    def test_prime_instance_quotient_is_identity(self):
        instance = colored(with_uniform_input(path_graph(3)))
        solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
        result = solver.solve(instance)
        assert result.quotient.is_trivial
        plain = instance.with_only_layers(["input"])
        assert MISProblem().is_valid_output(plain, result.outputs)

    def test_missing_color_layer_rejected(self):
        solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
        with pytest.raises(DerandomizationError, match="color"):
            solver.solve(with_uniform_input(path_graph(3)))

    def test_assignment_is_recorded_and_successful(self):
        from repro.runtime.simulation import simulate_with_assignment

        instance = colored_c3_lift(2)
        solver = AInfinitySolver(MISProblem(), AnonymousMISAlgorithm())
        result = solver.solve(instance)
        sim_graph = result.quotient.graph.with_only_layers(["input"])
        replay = simulate_with_assignment(
            AnonymousMISAlgorithm(), sim_graph, result.assignment
        )
        assert replay.successful
        assert replay.rounds == result.simulation_rounds
