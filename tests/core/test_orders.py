"""Tests for the predetermined total orders (Lemma 1's requirement)."""

from __future__ import annotations

import pytest

from repro.core.orders import (
    assignment_sort_key,
    canonical_node_order,
    finite_view_graph_sort_key,
    view_order_of_nodes,
)
from repro.exceptions import DerandomizationError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestNodeOrder:
    def test_prime_graph_has_total_order(self):
        g = colored(with_uniform_input(path_graph(4)))
        order = canonical_node_order(g)
        assert sorted(order) == list(g.nodes)

    def test_order_is_relabeling_invariant(self):
        g = colored(with_uniform_input(path_graph(4)))
        mapping = {0: "d", 1: "b", 2: "c", 3: "a"}
        renamed = g.relabel_nodes(mapping)
        order_g = canonical_node_order(g)
        order_r = canonical_node_order(renamed)
        assert [mapping[v] for v in order_g] == order_r

    def test_non_prime_rejected(self):
        g = with_uniform_input(cycle_graph(4))  # all views equal
        with pytest.raises(DerandomizationError, match="prime"):
            canonical_node_order(g)

    def test_positions(self):
        g = colored(with_uniform_input(path_graph(3)))
        positions = view_order_of_nodes(g)
        assert sorted(positions.values()) == [0, 1, 2]


class TestAssignmentOrder:
    ORDER = ["a", "b"]

    def test_length_dominates(self):
        short = assignment_sort_key({"a": "1", "b": "1"}, self.ORDER)
        long = assignment_sort_key({"a": "00", "b": "00"}, self.ORDER)
        assert short < long

    def test_lexicographic_within_length(self):
        k1 = assignment_sort_key({"a": "00", "b": "01"}, self.ORDER)
        k2 = assignment_sort_key({"a": "00", "b": "10"}, self.ORDER)
        k3 = assignment_sort_key({"a": "01", "b": "00"}, self.ORDER)
        assert k1 < k2 < k3

    def test_node_order_matters(self):
        a = {"a": "0", "b": "1"}
        assert assignment_sort_key(a, ["a", "b"]) == (1, ("0", "1"))
        assert assignment_sort_key(a, ["b", "a"]) == (1, ("1", "0"))

    def test_nonuniform_rejected(self):
        with pytest.raises(DerandomizationError, match="uniform-length"):
            assignment_sort_key({"a": "0", "b": "00"}, self.ORDER)

    def test_missing_node_rejected(self):
        with pytest.raises(DerandomizationError, match="misses"):
            assignment_sort_key({"a": "0"}, self.ORDER)


class TestFiniteViewGraphOrder:
    def test_size_dominates(self):
        small = colored(with_uniform_input(path_graph(2)))
        large = colored(with_uniform_input(path_graph(5)))
        assert finite_view_graph_sort_key(small) < finite_view_graph_sort_key(large)

    def test_isomorphic_graphs_equal_key(self):
        g = colored(with_uniform_input(path_graph(3)))
        renamed = g.relabel_nodes({0: 10, 1: 11, 2: 12})
        assert finite_view_graph_sort_key(g) == finite_view_graph_sort_key(renamed)

    def test_different_labels_different_key(self):
        a = colored(with_uniform_input(path_graph(3)))
        b = with_uniform_input(path_graph(3)).with_layer(
            "color", {0: 10, 1: 11, 2: 12}
        )
        assert finite_view_graph_sort_key(a) != finite_view_graph_sort_key(b)
