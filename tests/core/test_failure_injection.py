"""Failure injection: the derandomization machinery under broken inputs.

The theorem's hypotheses matter; these tests feed the solvers inputs
that violate them and verify each failure is detected loudly rather
than producing silent garbage.
"""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.core.a_star import AStarSolver
from repro.core.infinity import AInfinitySolver
from repro.core.practical import PracticalDerandomizer
from repro.exceptions import DerandomizationError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.lifts import cyclic_lift
from repro.problems.mis import MISProblem
from repro.problems.problem import DistributedProblem
from repro.runtime.algorithm import AnonymousAlgorithm


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def bad_coloring_instance():
    """A 'color' layer that is NOT a 2-hop coloring (C4 with 2 colors)."""
    return with_uniform_input(cycle_graph(4)).with_layer(
        "color", {0: 0, 1: 1, 2: 0, 3: 1}
    )


SOLVER_FACTORIES = [
    lambda: AInfinitySolver(MISProblem(), AnonymousMISAlgorithm()),
    lambda: PracticalDerandomizer(MISProblem(), AnonymousMISAlgorithm()),
    lambda: AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3),
]
SOLVER_IDS = ["a-infinity", "practical", "a-star"]


class TestInvalidColoring:
    @pytest.mark.parametrize("factory", SOLVER_FACTORIES, ids=SOLVER_IDS)
    def test_invalid_coloring_rejected(self, factory):
        solver = factory()
        with pytest.raises(DerandomizationError, match="not a 2-hop coloring"):
            solver.solve(bad_coloring_instance())

    @pytest.mark.parametrize("factory", SOLVER_FACTORIES, ids=SOLVER_IDS)
    def test_missing_color_layer_rejected(self, factory):
        solver = factory()
        with pytest.raises(DerandomizationError, match="missing"):
            solver.solve(with_uniform_input(path_graph(3)))


class _ExactSizeProblem(DistributedProblem):
    """A mock non-GRAN problem: instances are graphs with exactly six
    nodes.  Not factor-closed (the quotient of a 6-node instance can
    have 3 nodes), hence not anonymously decidable — Theorem 1 does not
    apply, and the solvers must say so."""

    name = "exactly-six-nodes"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph) and graph.num_nodes == 6

    def is_valid_output(self, graph, outputs) -> bool:
        self.require_total(graph, outputs)
        return True


class TestNonGranProblem:
    def test_a_infinity_detects_non_factor_closed_problem(self):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 2)  # 6 nodes, quotient 3 nodes
        solver = AInfinitySolver(_ExactSizeProblem(), AnonymousMISAlgorithm())
        with pytest.raises(DerandomizationError, match="not factor-closed|not an instance|not genuinely"):
            solver.solve(lift)

    def test_practical_detects_non_factor_closed_problem(self):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 2)
        solver = PracticalDerandomizer(_ExactSizeProblem(), AnonymousMISAlgorithm())
        with pytest.raises(DerandomizationError, match="GRAN"):
            solver.solve(lift)


class _NeverTerminates(AnonymousAlgorithm):
    """A fake 'Las-Vegas' algorithm that never outputs: the searches must
    hit their budgets instead of hanging."""

    bits_per_round = 1
    name = "never-terminates"

    def init_state(self, input_label, degree):
        return 0

    def message(self, state):
        return None

    def transition(self, state, received, bits):
        return state + 1

    def output(self, state):
        return None


class TestNonTerminatingAlgorithm:
    def test_a_infinity_budget(self):
        instance = colored(with_uniform_input(path_graph(2)))
        solver = AInfinitySolver(
            MISProblem(), _NeverTerminates(), max_assignment_length=6
        )
        with pytest.raises(DerandomizationError, match="no successful assignment"):
            solver.solve(instance)

    def test_a_star_phase_budget(self):
        instance = colored(with_uniform_input(path_graph(2)))
        solver = AStarSolver(
            MISProblem(), _NeverTerminates(), max_candidate_nodes=2
        )
        with pytest.raises(DerandomizationError, match="phases"):
            solver.solve(instance, max_phases=4)
