"""Tests for candidate enumeration (conditions C1-C3 of Update-Graph)."""

from __future__ import annotations

import pytest

from repro.core.candidates import enumerate_candidates, observed_marks
from repro.exceptions import CandidateError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.problems.mis import MISProblem
from repro.problems.problem import TwoHopColoredVariant
from repro.views.local_views import view

LAYERS = ("input", "color", "bits")
PROBLEM_C = TwoHopColoredVariant(MISProblem())


def prepared(graph):
    """Attach color and empty-bits layers the way A_* phases see them."""
    colored = apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))
    return colored.with_layer("bits", {v: "" for v in colored.nodes})


class TestObservedMarks:
    def test_marks_cover_all_labels(self):
        instance = prepared(with_uniform_input(path_graph(3)))
        t = view(instance, 0, 3)
        marks = observed_marks(t)
        assert len(marks) == 3  # three distinct (input, color, bits) labels

    def test_marks_deduplicated(self):
        instance = prepared(with_uniform_input(cycle_graph(3)))
        t = view(instance, 1, 4)
        # C3 colored with 3 colors: exactly 3 distinct marks despite the
        # exponentially many vertices.
        assert len(observed_marks(t)) == 3


class TestEnumerate:
    def test_instance_itself_is_found(self):
        """At phase >= 2n the node's own finite view graph must appear as
        a candidate (Lemma 6)."""
        instance = prepared(with_uniform_input(cycle_graph(3)))
        t = view(instance, 0, 6)
        candidates = enumerate_candidates(t, 6, PROBLEM_C, LAYERS, max_nodes=3)
        assert candidates  # nonempty
        smallest = candidates[0]
        assert are_isomorphic(smallest.finite_view, instance)

    def test_anchor_view_matches(self):
        instance = prepared(with_uniform_input(path_graph(2)))
        p = 4
        t = view(instance, 0, p)
        candidates = enumerate_candidates(t, p, PROBLEM_C, LAYERS, max_nodes=2)
        for candidate in candidates:
            anchor_view = view(candidate.graph, candidate.anchor, p)
            assert anchor_view is t

    def test_candidates_sorted_by_finite_view_order(self):
        instance = prepared(with_uniform_input(path_graph(2)))
        t = view(instance, 0, 3)
        candidates = enumerate_candidates(t, 3, PROBLEM_C, LAYERS, max_nodes=3)
        keys = [c.sort_key for c in candidates]
        assert keys == sorted(keys)

    def test_phase_caps_candidate_size(self):
        instance = prepared(with_uniform_input(path_graph(3)))
        t = view(instance, 0, 1)
        candidates = enumerate_candidates(t, 1, PROBLEM_C, LAYERS, max_nodes=4)
        assert all(c.graph.num_nodes <= 1 for c in candidates)

    def test_budget_guard(self):
        instance = prepared(with_uniform_input(cycle_graph(5)))
        t = view(instance, 0, 4)
        with pytest.raises(CandidateError, match="budget"):
            enumerate_candidates(t, 4, PROBLEM_C, LAYERS, max_nodes=4, budget=10)

    def test_c3_filters_non_instances(self):
        """Candidates whose (input, color) part is not a legal 2-hop
        colored instance must be excluded."""
        instance = prepared(with_uniform_input(path_graph(2)))
        t = view(instance, 0, 3)
        candidates = enumerate_candidates(t, 3, PROBLEM_C, LAYERS, max_nodes=3)
        for candidate in candidates:
            stripped = candidate.graph.with_only_layers(["input", "color"])
            assert PROBLEM_C.is_instance(stripped)
