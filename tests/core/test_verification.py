"""Tests for the GRAN conformance suite."""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.core.verification import check_gran_bundle
from repro.graphs.builders import cycle_graph, path_graph, star_graph, with_uniform_input
from repro.problems.coloring import ColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.mis import MISProblem

INSTANCES = [
    ("cycle-5", with_uniform_input(cycle_graph(5))),
    ("path-4", with_uniform_input(path_graph(4))),
    ("star-4", with_uniform_input(star_graph(4))),
]
NON_INSTANCES = [
    ("bad-degrees", cycle_graph(4).with_layer("input", {v: (9, 0) for v in range(4)})),
]


class TestConformingBundles:
    @pytest.mark.parametrize(
        "bundle",
        [
            GranBundle(MISProblem(), AnonymousMISAlgorithm(), WellFormedInputDecider()),
            GranBundle(
                ColoringProblem(), VertexColoringAlgorithm(), WellFormedInputDecider()
            ),
        ],
        ids=["mis", "coloring"],
    )
    def test_library_bundles_pass(self, bundle):
        report = check_gran_bundle(
            bundle, INSTANCES, NON_INSTANCES, seeds=(0, 1)
        )
        assert report.passed, report.failures()
        checks = {outcome.check for outcome in report.outcomes}
        assert checks >= {
            "instances-legal",
            "solver-valid",
            "replayable",
            "decider-accepts",
            "decider-rejects",
            "liftable",
            "factor-closed",
            "derandomizable",
        }

    def test_summary_readable(self):
        bundle = GranBundle(
            MISProblem(), AnonymousMISAlgorithm(), WellFormedInputDecider()
        )
        report = check_gran_bundle(bundle, INSTANCES[:1], seeds=(0,))
        text = report.summary()
        assert "conformance of 'mis'" in text
        assert "[ok ]" in text


class TestNonConformingBundles:
    def test_wrong_solver_detected(self):
        """A 2-hop coloring algorithm is not an MIS solver: the battery
        must flag solver validity (not raise)."""
        bundle = GranBundle(
            MISProblem(), TwoHopColoringAlgorithm(), WellFormedInputDecider()
        )
        report = check_gran_bundle(
            bundle, INSTANCES[:1], seeds=(0,), derandomize=False
        )
        assert not report.passed
        failing_checks = {outcome.check for outcome in report.failures()}
        assert "solver-valid" in failing_checks

    def test_non_instance_in_instances_detected(self):
        bundle = GranBundle(
            MISProblem(), AnonymousMISAlgorithm(), WellFormedInputDecider()
        )
        report = check_gran_bundle(
            bundle,
            [("unlabeled", cycle_graph(4))],
            seeds=(0,),
            derandomize=False,
        )
        assert not report.passed
        assert report.failures()[0].check == "instances-legal"

    def test_broken_decider_detected(self):
        """A decider that says YES to everything fails the NO side."""
        from repro.runtime.algorithm import FunctionAlgorithm

        yes_man = FunctionAlgorithm(
            init=lambda label, deg: "YES",
            msg=lambda s: None,
            step=lambda s, received, bits: s,
            out=lambda s: s,
            bits_per_round=0,
            name="yes-man",
        )
        bundle = GranBundle(MISProblem(), AnonymousMISAlgorithm(), yes_man)
        report = check_gran_bundle(
            bundle, INSTANCES[:1], NON_INSTANCES, seeds=(0,), derandomize=False
        )
        assert not report.passed
        assert any(o.check == "decider-rejects" for o in report.failures())
