"""Tests for the faithful A_* (Theorem 1 / Figure 3)."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.core.a_star import AStarSolver
from repro.exceptions import DerandomizationError
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift
from repro.problems.coloring import ColoringProblem
from repro.problems.mis import MISProblem


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def lifted_c3(fiber: int):
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, _ = cyclic_lift(base, fiber)
    return lift


class TestTheorem1:
    @pytest.mark.parametrize("fiber", [1, 2, 4])
    def test_mis_on_lifted_cycles(self, fiber):
        instance = lifted_c3(fiber)
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        outputs, diagnostics = solver.solve(instance, max_phases=12)
        plain = instance.with_only_layers(["input"])
        assert MISProblem().is_valid_output(plain, outputs)
        assert diagnostics.phases <= 12

    def test_coloring_on_lifted_cycle(self):
        instance = lifted_c3(2)
        solver = AStarSolver(
            ColoringProblem(), VertexColoringAlgorithm(), max_candidate_nodes=3
        )
        outputs, _ = solver.solve(instance, max_phases=12)
        plain = instance.with_only_layers(["input"])
        assert ColoringProblem().is_valid_output(plain, outputs)

    def test_deterministic(self):
        instance = lifted_c3(2)
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        a, _ = solver.solve(instance, max_phases=12)
        b, _ = solver.solve(instance, max_phases=12)
        assert a == b

    def test_outputs_constant_on_view_classes(self):
        instance = lifted_c3(4)
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        outputs, _ = solver.solve(instance, max_phases=12)
        from repro.factor.quotient import infinite_view_graph

        quotient = infinite_view_graph(instance)
        for target in quotient.graph.nodes:
            fiber = quotient.map.fiber(target)
            assert len({outputs[v] for v in fiber}) == 1

    def test_single_node_instance(self):
        instance = colored(with_uniform_input(path_graph(1)))
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=2)
        outputs, _ = solver.solve(instance, max_phases=8)
        assert outputs[0] is True

    def test_two_node_prime_instance(self):
        instance = colored(with_uniform_input(path_graph(2)))
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=2)
        outputs, _ = solver.solve(instance, max_phases=10)
        plain = instance.with_only_layers(["input"])
        assert MISProblem().is_valid_output(plain, outputs)

    def test_meta_derandomizing_the_coloring_itself(self):
        """The cute self-referential case: derandomize the 2-hop coloring
        algorithm — given one 2-hop coloring, A_* deterministically
        computes another (possibly different) one."""
        from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
        from repro.problems.coloring import KHopColoringProblem

        instance = lifted_c3(2)
        problem = KHopColoringProblem(2)
        solver = AStarSolver(problem, TwoHopColoringAlgorithm(), max_candidate_nodes=3)
        outputs, _ = solver.solve(instance, max_phases=12)
        plain = instance.with_only_layers(["input"])
        assert problem.is_valid_output(plain, outputs)

    def test_missing_color_rejected(self):
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm())
        with pytest.raises(DerandomizationError, match="color"):
            solver.solve(with_uniform_input(path_graph(2)), max_phases=4)

    def test_phase_budget_raises(self):
        instance = lifted_c3(2)
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        with pytest.raises(DerandomizationError, match="phases"):
            solver.solve(instance, max_phases=1)


class TestLemmaPredictions:
    def test_selection_converges_to_finite_view_graph(self):
        """Lemma 7 (in practice ahead of its 2n bound): by the final
        phase, Update-Graph selects the instance's own finite view graph
        — the selection size equals the quotient's node count, and all
        nodes select the same encoding."""
        instance = lifted_c3(2)  # quotient size n = 3
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        _outputs, diagnostics = solver.solve(instance, max_phases=12)
        final_phase = diagnostics.phases
        final = [
            (size, enc)
            for (phase, size, enc) in diagnostics.phase_selections
            if phase == final_phase
        ]
        assert final
        assert all(size == 3 for size, _enc in final)
        assert len({enc for _size, enc in final}) == 1  # Lemma 1: agreement

    def test_message_round_accounting(self):
        instance = lifted_c3(1)
        solver = AStarSolver(MISProblem(), AnonymousMISAlgorithm(), max_candidate_nodes=3)
        _outputs, diagnostics = solver.solve(instance, max_phases=12)
        p = diagnostics.phases
        assert diagnostics.message_rounds == p * (p + 1) // 2
