"""Soak tests: the Las-Vegas algorithms across a wide seed matrix.

Las-Vegas correctness means validity with probability 1 — so any
invalid output at any seed is a bug, and breadth of seeds is the test.
Families are kept small so the matrix stays fast.
"""

from __future__ import annotations

import pytest

from repro.algorithms.local_election import TwoLocalElection
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.graphs.builders import (
    complete_bipartite_graph,
    cycle_graph,
    petersen_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import is_k_hop_coloring, is_two_hop_coloring
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem
from repro.runtime.simulation import run_randomized

GRAPHS = [
    ("cycle-9", with_uniform_input(cycle_graph(9))),
    ("petersen", with_uniform_input(petersen_graph())),
    ("k33", with_uniform_input(complete_bipartite_graph(3, 3))),
    ("random-11", with_uniform_input(random_connected_graph(11, 0.25, seed=42))),
]
GRAPH_IDS = [name for name, _ in GRAPHS]
SEEDS = range(10)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=GRAPH_IDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_two_hop_coloring_soak(name, graph, seed):
    result = run_randomized(TwoHopColoringAlgorithm(), graph, seed=seed)
    assert is_two_hop_coloring(graph, result.outputs)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=GRAPH_IDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_mis_soak(name, graph, seed):
    result = run_randomized(AnonymousMISAlgorithm(), graph, seed=seed)
    assert MISProblem().is_valid_output(graph, result.outputs)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=GRAPH_IDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_matching_soak(name, graph, seed):
    result = run_randomized(AnonymousMatchingAlgorithm(), graph, seed=seed)
    assert MaximalMatchingProblem().is_valid_output(graph, result.outputs)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=GRAPH_IDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_vertex_coloring_soak(name, graph, seed):
    result = run_randomized(VertexColoringAlgorithm(), graph, seed=seed)
    assert is_k_hop_coloring(graph, result.outputs, 1)


@pytest.mark.parametrize("name,graph", GRAPHS, ids=GRAPH_IDS)
@pytest.mark.parametrize("seed", range(5))
def test_two_local_election_soak(name, graph, seed):
    result = run_randomized(TwoLocalElection(), graph, seed=seed)
    leaders = [v for v in graph.nodes if result.outputs[v]]
    for i, u in enumerate(leaders):
        for v in leaders[i + 1 :]:
            assert graph.distance(u, v) > 2
    for v in graph.nodes:
        assert any(result.outputs[u] for u in graph.nodes_within(v, 2))
