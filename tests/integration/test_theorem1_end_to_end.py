"""Integration tests: Theorem 1's full decoupling across problems and
graph families.

Every test here runs the complete story: a randomized 2-hop coloring
stage, the deterministic stage on Π^c, and validation against Π — the
paper's "randomization = 2-hop coloring" in executable form.
"""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.core.derandomize import derandomize_pipeline
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem
from tests.conftest import small_graph_zoo

DECIDER = WellFormedInputDecider()
BUNDLES = [
    GranBundle(MISProblem(), AnonymousMISAlgorithm(), DECIDER),
    GranBundle(ColoringProblem(), VertexColoringAlgorithm(), DECIDER),
    GranBundle(KHopColoringProblem(2), TwoHopColoringAlgorithm(), DECIDER),
    GranBundle(MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), DECIDER),
]
BUNDLE_IDS = [b.problem.name for b in BUNDLES]

ZOO = [case for case in small_graph_zoo() if case[1].num_nodes <= 10]
ZOO_IDS = [name for name, _ in ZOO]


@pytest.mark.parametrize("bundle", BUNDLES, ids=BUNDLE_IDS)
@pytest.mark.parametrize("name,graph", ZOO, ids=ZOO_IDS)
def test_pipeline_across_zoo(bundle, name, graph):
    """The pipeline produces validated outputs on every zoo instance; the
    call itself raises on any invalid output, so success *is* Theorem 1."""
    result = derandomize_pipeline(
        bundle, graph, seed=1, strategy="prg", max_assignment_length=128
    )
    assert set(result.outputs) == set(graph.nodes)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_different_colorings_still_valid(seed):
    """The deterministic stage must work whatever 2-hop coloring stage 1
    happens to produce."""
    from repro.graphs.builders import cycle_graph, with_uniform_input

    bundle = BUNDLES[0]
    g = with_uniform_input(cycle_graph(6))
    result = derandomize_pipeline(bundle, g, seed=seed, strategy="prg")
    assert MISProblem().is_valid_output(g, result.outputs)


def test_stage2_determinism_given_same_coloring():
    """With the same colored instance, stage 2 output is a pure function —
    two runs agree bit for bit."""
    from repro.core.practical import PracticalDerandomizer
    from repro.graphs.builders import cycle_graph, with_uniform_input
    from repro.graphs.coloring import apply_two_hop_coloring
    from repro.runtime.simulation import run_randomized

    g = with_uniform_input(cycle_graph(5))
    coloring = run_randomized(TwoHopColoringAlgorithm(), g, seed=9).outputs
    colored = apply_two_hop_coloring(g, coloring)
    solver = PracticalDerandomizer(MISProblem(), AnonymousMISAlgorithm(), strategy="prg")
    assert solver.solve(colored).outputs == solver.solve(colored).outputs


def test_quotient_shrinks_with_structured_coloring():
    """A periodic coloring keeps the quotient small; stage 2 then
    simulates on a graph smaller than the input (the whole point of the
    view-quotient machinery)."""
    from repro.core.practical import PracticalDerandomizer
    from repro.graphs.builders import cycle_graph, with_uniform_input
    from repro.graphs.coloring import apply_two_hop_coloring
    from repro.graphs.lifts import cyclic_lift
    from repro.graphs.coloring import greedy_two_hop_coloring

    base = with_uniform_input(cycle_graph(3))
    base = apply_two_hop_coloring(base, greedy_two_hop_coloring(base))
    lift, _ = cyclic_lift(base, 5)  # C15 with period-3 coloring
    solver = PracticalDerandomizer(MISProblem(), AnonymousMISAlgorithm())
    result = solver.solve(lift)
    assert result.quotient.graph.num_nodes == 3
    plain = lift.with_only_layers(["input"])
    assert MISProblem().is_valid_output(plain, result.outputs)
