"""Cross-cutting invariants the paper's machinery rests on.

These tests combine several subsystems per assertion — the kind of
invariant that catches a subtly broken model even when unit tests pass.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy_by_color import GreedyColoringByColor, GreedyMISByColor
from repro.algorithms.color_reduction import TwoHopColorReduction
from repro.factor.quotient import finite_view_graph, infinite_view_graph
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift, lift_graph
from repro.runtime.simulation import run_deterministic
from repro.views.refinement import color_refinement


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def lifted(fiber: int):
    base = colored(with_uniform_input(cycle_graph(3)))
    return cyclic_lift(base, fiber)[0]


class TestQuotientInvariants:
    @pytest.mark.parametrize("fiber", [1, 2, 3, 4])
    def test_quotient_is_idempotent(self, fiber):
        """The quotient of a quotient is trivial: G_* is prime."""
        instance = lifted(fiber)
        once = finite_view_graph(instance)
        twice = infinite_view_graph(once.graph)
        assert twice.is_trivial
        assert are_isomorphic(twice.graph, once.graph)

    def test_quotient_invariant_under_lifting(self):
        """Lifting and quotienting commute: quotient(lift(G)) ≅ quotient(G)."""
        base = colored(with_uniform_input(cycle_graph(3)))
        base_quotient = infinite_view_graph(base)
        for fiber in (2, 3):
            lift, _ = lift_graph(base, fiber, seed=fiber)
            lift_quotient = infinite_view_graph(lift)
            assert are_isomorphic(lift_quotient.graph, base_quotient.graph)

    def test_refinement_classes_count_matches_quotient(self):
        instance = lifted(4)
        quotient = finite_view_graph(instance)
        assert (
            color_refinement(instance).num_classes == quotient.graph.num_nodes
        )


class TestDeterministicSymmetryInvariant:
    """A deterministic anonymous algorithm's outputs are a function of
    the view — so on a lifted instance they MUST be constant on fibers.
    This is the model-faithfulness litmus test: any hidden symmetry
    breaking (node ids, iteration order, dict order) would show up here.
    """

    DETERMINISTIC_ALGORITHMS = [
        GreedyMISByColor(),
        GreedyColoringByColor(),
        TwoHopColorReduction(),
    ]

    @pytest.mark.parametrize(
        "algorithm",
        DETERMINISTIC_ALGORITHMS,
        ids=[a.name for a in DETERMINISTIC_ALGORITHMS],
    )
    @pytest.mark.parametrize("fiber", [2, 4])
    def test_outputs_constant_on_fibers(self, algorithm, fiber):
        instance = lifted(fiber)
        quotient = finite_view_graph(instance)
        result = run_deterministic(algorithm, instance, max_rounds=500)
        assert result.all_decided
        for target in quotient.graph.nodes:
            values = {result.outputs[v] for v in quotient.map.fiber(target)}
            assert len(values) == 1, (
                f"{algorithm.name} broke view symmetry on fiber {target}"
            )

    @pytest.mark.parametrize(
        "algorithm",
        DETERMINISTIC_ALGORITHMS,
        ids=[a.name for a in DETERMINISTIC_ALGORITHMS],
    )
    def test_outputs_invariant_under_relabeling(self, algorithm):
        """Renaming nodes must permute outputs accordingly — no dependence
        on node identity may leak into an anonymous algorithm."""
        instance = lifted(2)
        mapping = {v: f"renamed-{v!r}" for v in instance.nodes}
        renamed = instance.relabel_nodes(mapping)
        original = run_deterministic(algorithm, instance, max_rounds=500)
        permuted = run_deterministic(algorithm, renamed, max_rounds=500)
        for v in instance.nodes:
            assert original.outputs[v] == permuted.outputs[mapping[v]]
