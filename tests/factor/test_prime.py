"""Tests for primality and prime factors (Lemma 3 and its counterexample)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.factor.prime import all_factors, is_prime, prime_factors
from repro.factor.quotient import infinite_view_graph
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift


def _uniform(graph):
    return graph.with_layer("input", {v: 0 for v in graph.nodes})


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestPrimality:
    def test_c3_prime(self):
        assert is_prime(_uniform(cycle_graph(3)))

    def test_c4_prime(self):
        # C4's only candidate quotient (opposite nodes) needs a double
        # edge, so C4 is prime despite being vertex-transitive.
        assert is_prime(_uniform(cycle_graph(4)))

    def test_c6_not_prime(self):
        assert not is_prime(_uniform(cycle_graph(6)))

    def test_path_prime(self):
        assert is_prime(_uniform(path_graph(5)))

    def test_star_prime(self):
        assert is_prime(_uniform(star_graph(4)))

    def test_colored_lift_not_prime(self):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 2)
        assert not is_prime(lift)
        assert is_prime(base)

    def test_size_guard(self):
        with pytest.raises(GraphError, match="limited to 16"):
            all_factors(_uniform(cycle_graph(18)))


class TestPrimeFactors:
    def test_uncolored_c12_has_two_prime_factors(self):
        """The paper's example after Lemma 3: the uncolored 12-cycle has
        two distinct prime factors, the 3-cycle and the 4-cycle."""
        primes = prime_factors(_uniform(cycle_graph(12)))
        sizes = sorted(p.num_nodes for p in primes)
        assert sizes == [3, 4]
        for p in primes:
            assert is_prime(p)

    def test_uncolored_c6_prime_factor_is_c3(self):
        primes = prime_factors(_uniform(cycle_graph(6)))
        assert len(primes) == 1
        assert are_isomorphic(primes[0], _uniform(cycle_graph(3)))

    def test_prime_graph_is_its_own_prime_factor(self):
        g = _uniform(path_graph(4))
        primes = prime_factors(g)
        assert len(primes) == 1
        assert are_isomorphic(primes[0], g)


class TestLemma3:
    """For 2-hop colored graphs the prime factor is unique and equals the
    infinite view graph."""

    @pytest.mark.parametrize("fiber", [2, 4])
    def test_unique_prime_factor_is_view_quotient(self, fiber):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, fiber)
        primes = prime_factors(lift)
        assert len(primes) == 1
        quotient = infinite_view_graph(lift)
        assert are_isomorphic(primes[0], quotient.graph)

    def test_every_factor_of_colored_lift_has_same_quotient(self):
        base = colored(with_uniform_input(cycle_graph(3)))
        lift, _ = cyclic_lift(base, 4)  # colored C12
        quotient = infinite_view_graph(lift)
        for fm in all_factors(lift, include_trivial=True):
            factor_quotient = infinite_view_graph(fm.factor)
            assert are_isomorphic(factor_quotient.graph, quotient.graph)
