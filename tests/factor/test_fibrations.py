"""Tests for Section 4: directed representations and fibrations."""

from __future__ import annotations

import pytest

from repro.exceptions import FactorError, LabelingError
from repro.factor.fibrations import (
    coloring_respects_symmetry,
    directed_representation,
    fibration_to_factorizing_map,
    is_deterministic_coloring,
    is_fibration,
    is_symmetric_representation,
)
from repro.graphs.builders import cycle_graph, path_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def colored_pair(fiber: int):
    base = colored(with_uniform_input(cycle_graph(3)))
    lift, projection = cyclic_lift(base, fiber)
    return base, lift, projection


class TestRepresentation:
    def test_edge_doubling(self):
        g = colored(with_uniform_input(path_graph(3)))
        rep = directed_representation(g)
        assert len(rep.edges) == 2 * g.num_edges

    def test_paper_claims_hold(self):
        """Section 4: the representation is symmetric, deterministically
        colored, and the coloring respects the symmetry."""
        for n in (3, 5, 6):
            g = colored(with_uniform_input(cycle_graph(n)))
            rep = directed_representation(g)
            assert is_symmetric_representation(rep)
            assert is_deterministic_coloring(rep)
            assert coloring_respects_symmetry(rep)

    def test_edge_colors_are_endpoint_pairs(self):
        g = colored(with_uniform_input(path_graph(2)))
        rep = directed_representation(g)
        c0 = g.label_of(0, "color")
        c1 = g.label_of(1, "color")
        assert rep.edge_colors[(0, 1)] == (c0, c1)
        assert rep.edge_colors[(1, 0)] == (c1, c0)

    def test_requires_two_hop_coloring(self):
        g = with_uniform_input(cycle_graph(4)).with_layer(
            "color", {0: 0, 1: 1, 2: 0, 3: 1}
        )
        with pytest.raises(LabelingError, match="not a 2-hop coloring"):
            directed_representation(g)


class TestFibrationCorrespondence:
    def test_projection_is_fibration(self):
        base, lift, projection = colored_pair(4)
        rep_total = directed_representation(lift)
        rep_base = directed_representation(base)
        assert is_fibration(rep_total, rep_base, projection)

    def test_fibration_to_factorizing_map(self):
        base, lift, projection = colored_pair(2)
        fm = fibration_to_factorizing_map(lift, base, projection)
        assert fm.multiplicity == 2

    def test_wrong_map_is_not_fibration(self):
        base, lift, projection = colored_pair(2)
        rep_total = directed_representation(lift)
        rep_base = directed_representation(base)
        broken = _swap_across_fibers(projection)
        assert not is_fibration(rep_total, rep_base, broken)

    def test_non_surjective_map_rejected(self):
        base, lift, projection = colored_pair(2)
        rep_total = directed_representation(lift)
        rep_base = directed_representation(base)
        constant = {v: base.nodes[0] for v in lift.nodes}
        assert not is_fibration(rep_total, rep_base, constant)

    def test_bad_fibration_raises_in_conversion(self):
        base, lift, projection = colored_pair(2)
        broken = _swap_across_fibers(projection)
        with pytest.raises(FactorError, match="not a fibration"):
            fibration_to_factorizing_map(lift, base, broken)


def _swap_across_fibers(projection):
    """Swap the images of two nodes from different fibers — breaking the
    color preservation of the map (same-fiber swaps would be no-ops)."""
    broken = dict(projection)
    keys = list(broken)
    first = keys[0]
    other = next(k for k in keys if broken[k] != broken[first])
    broken[first], broken[other] = broken[other], broken[first]
    return broken
