"""Tests for the lifting lemma machinery — the engine of the paper's proofs."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.exceptions import SimulationError
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import (
    lift_assignment,
    lift_outputs_to_product,
    project_outputs,
    verify_execution_lifting,
)
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.lifts import cyclic_lift, lift_graph
from repro.runtime.simulation import run_randomized


def colored_c3_and_lift(fiber: int):
    base = with_uniform_input(cycle_graph(3))
    base = apply_two_hop_coloring(base, greedy_two_hop_coloring(base))
    lift, projection = cyclic_lift(base, fiber)
    return FactorizingMap(lift, base, projection)


class TestAssignmentLifting:
    def test_lift_assignment_constant_on_fibers(self):
        fm = colored_c3_and_lift(3)
        base_assignment = {0: "01", 1: "10", 2: "11"}
        lifted = lift_assignment(base_assignment, fm)
        for v in fm.product.nodes:
            assert lifted[v] == base_assignment[fm(v)]

    def test_missing_node_rejected(self):
        fm = colored_c3_and_lift(2)
        with pytest.raises(SimulationError, match="does not cover"):
            lift_assignment({0: "01"}, fm)

    def test_output_lift_and_project_roundtrip(self):
        fm = colored_c3_and_lift(2)
        base_outputs = {0: "a", 1: "b", 2: "c"}
        lifted = lift_outputs_to_product(base_outputs, fm)
        assert project_outputs(lifted, fm) == base_outputs

    def test_project_detects_fiber_disagreement(self):
        fm = colored_c3_and_lift(2)
        bad = {v: repr(v) for v in fm.product.nodes}  # all distinct
        with pytest.raises(SimulationError, match="disagrees"):
            project_outputs(bad, fm)


class TestLiftingLemma:
    """Executions on the factor lift to executions on the product with
    identical per-fiber messages and outputs."""

    @pytest.mark.parametrize(
        "algorithm",
        [TwoHopColoringAlgorithm(), AnonymousMISAlgorithm(), VertexColoringAlgorithm()],
        ids=["two-hop", "mis", "coloring"],
    )
    @pytest.mark.parametrize("fiber", [2, 4])
    def test_lifting_lemma_on_cycles(self, algorithm, fiber):
        fm = colored_c3_and_lift(fiber)
        # Take bits from a real successful run on the factor so the
        # simulation is successful and outputs exist.
        factor_input = fm.factor.with_only_layers(["input"])
        run = run_randomized(algorithm, factor_input, seed=13)
        assignment = run.trace.assignment()
        stripped = FactorizingMap(
            fm.product.with_only_layers(["input"]),
            factor_input,
            fm.as_dict(),
        )
        comparison = verify_execution_lifting(algorithm, stripped, assignment)
        assert comparison.lemma_holds
        assert comparison.factor_result.successful
        assert comparison.product_result.successful

    def test_lifting_lemma_on_random_lift(self):
        base = with_uniform_input(cycle_graph(4))
        base = apply_two_hop_coloring(base, greedy_two_hop_coloring(base))
        lift, projection = lift_graph(base, 3, seed=5)
        factor_input = base.with_only_layers(["input"])
        fm = FactorizingMap(
            lift.with_only_layers(["input"]), factor_input, projection
        )
        algorithm = AnonymousMISAlgorithm()
        run = run_randomized(algorithm, factor_input, seed=2)
        comparison = verify_execution_lifting(algorithm, fm, run.trace.assignment())
        assert comparison.lemma_holds

    def test_lifted_outputs_project_back(self):
        fm = colored_c3_and_lift(2)
        algorithm = TwoHopColoringAlgorithm()
        factor_input = fm.factor.with_only_layers(["input"])
        run = run_randomized(algorithm, factor_input, seed=21)
        stripped = FactorizingMap(
            fm.product.with_only_layers(["input"]), factor_input, fm.as_dict()
        )
        comparison = verify_execution_lifting(
            algorithm, stripped, run.trace.assignment()
        )
        projected = project_outputs(comparison.product_result.outputs, stripped)
        assert projected == comparison.factor_result.outputs


class TestImpossibilityConsequence:
    """Angluin-style corollary: on a product, deterministic-style replayed
    executions cannot elect a unique leader because fibers agree."""

    def test_fiber_symmetric_outputs(self):
        fm = colored_c3_and_lift(4)
        algorithm = AnonymousMISAlgorithm()
        factor_input = fm.factor.with_only_layers(["input"])
        run = run_randomized(algorithm, factor_input, seed=9)
        stripped = FactorizingMap(
            fm.product.with_only_layers(["input"]), factor_input, fm.as_dict()
        )
        comparison = verify_execution_lifting(
            algorithm, stripped, run.trace.assignment()
        )
        outputs = comparison.product_result.outputs
        for target in stripped.factor.nodes:
            fiber_values = {outputs[v] for v in stripped.fiber(target)}
            assert len(fiber_values) == 1
