"""Tests for the infinite/finite view graph (Definition 1, Lemma 2, Cor 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FactorError
from repro.factor.quotient import finite_view_graph, infinite_view_graph
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.lifts import cyclic_lift, lift_graph
from repro.views.local_views import all_views


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


def colored_c3_lift(fiber: int):
    base = colored(with_uniform_input(cycle_graph(3)))
    return base, cyclic_lift(base, fiber)[0]


class TestLemma2:
    """G_infinity is a factor of G for 2-hop colored G."""

    def test_lifted_cycle_quotient_is_base(self):
        base, lift = colored_c3_lift(4)
        result = infinite_view_graph(lift)
        assert result.graph.num_nodes == 3
        assert are_isomorphic(result.graph, base)
        assert result.map.multiplicity == 4

    def test_prime_graph_quotient_trivial(self):
        g = colored(with_uniform_input(path_graph(4)))
        result = infinite_view_graph(g)
        assert result.is_trivial
        assert are_isomorphic(result.graph, g)

    def test_quotient_of_quotient_is_stable(self):
        _, lift = colored_c3_lift(2)
        once = infinite_view_graph(lift)
        twice = infinite_view_graph(once.graph)
        assert twice.is_trivial

    def test_uncolored_symmetric_graph_rejected(self):
        g = with_uniform_input(cycle_graph(4))
        with pytest.raises(FactorError, match="not 2-hop colored"):
            infinite_view_graph(g)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_quotient_of_lift_recovers_base(self, n, fiber, seed):
        base = colored(with_uniform_input(random_connected_graph(n, 0.5, seed=seed)))
        if fiber > 1 and base.num_edges == base.num_nodes - 1:
            return  # trees have no connected nontrivial lifts
        lift, _ = lift_graph(base, fiber, seed=seed)
        result = infinite_view_graph(lift)
        # The base may itself be non-prime; the quotient equals the
        # base's quotient either way.
        base_quotient = infinite_view_graph(base)
        assert are_isomorphic(result.graph, base_quotient.graph)


class TestFiniteViewGraph:
    def test_views_attached_and_distinct(self):
        _, lift = colored_c3_lift(2)
        result = finite_view_graph(lift)
        assert result.views is not None
        assert len(result.views) == result.graph.num_nodes
        assert len({id(t) for t in result.views.values()}) == len(result.views)

    def test_alias_views_match_member_views(self):
        """Fact 1: the depth-q view of a member in G equals the view of
        its class computed inside the quotient (q = quotient size)."""
        _, lift = colored_c3_lift(4)
        result = finite_view_graph(lift)
        q = result.graph.num_nodes
        member_views = all_views(lift, q)
        for v in lift.nodes:
            assert member_views[v] is result.views[result.map(v)]

    def test_single_node(self):
        g = colored(with_uniform_input(path_graph(1)))
        result = finite_view_graph(g)
        assert result.graph.num_nodes == 1
        assert result.is_trivial
