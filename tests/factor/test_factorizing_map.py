"""Tests for factorizing maps, including the paper's Figure 2."""

from __future__ import annotations

import pytest

from repro.exceptions import FactorError
from repro.factor.factorizing_map import FactorizingMap
from repro.graphs.builders import cycle_graph


def labeled_cycle(n: int, period: int):
    """An n-cycle labeled with colors repeating with the given period —
    the labeled cycles of Figure 2 (period 3 on C12, C6 and C3)."""
    g = cycle_graph(n)
    return g.with_layer("input", {v: v % period for v in range(n)})


def figure2_map(n_big: int, n_small: int):
    """The Figure 2 factorizing map v -> v mod n_small between labeled
    cycles (both labeled with period dividing n_small)."""
    big = labeled_cycle(n_big, 3)
    small = labeled_cycle(n_small, 3)
    return FactorizingMap(big, small, {v: v % n_small for v in big.nodes})


class TestFigure2:
    def test_c6_is_factor_of_c12(self):
        fm = figure2_map(12, 6)
        assert fm.multiplicity == 2
        assert not fm.is_isomorphism

    def test_c3_is_factor_of_c6(self):
        fm = figure2_map(6, 3)
        assert fm.multiplicity == 2

    def test_c3_is_factor_of_c12(self):
        fm = figure2_map(12, 3)
        assert fm.multiplicity == 4

    def test_composition_c12_to_c3(self):
        """Figure 2's f then g composes to a C12 -> C3 factorizing map."""
        f = figure2_map(12, 6)
        g = figure2_map(6, 3)
        composed = f.compose(g)
        assert composed.multiplicity == 4
        assert composed.factor == g.factor

    def test_fibers(self):
        fm = figure2_map(12, 6)
        assert fm.fiber(0) == (0, 6)
        assert fm.fiber(5) == (5, 11)


class TestVerification:
    def test_not_surjective_rejected(self):
        big = labeled_cycle(6, 3)
        small = labeled_cycle(3, 3)
        mapping = {v: 0 for v in big.nodes}
        with pytest.raises(FactorError, match="label not respected|not surjective"):
            FactorizingMap(big, small, mapping)

    def test_label_violation_rejected(self):
        big = labeled_cycle(6, 2)  # labels 0,1 alternating
        small = labeled_cycle(3, 3)
        with pytest.raises(FactorError, match="label"):
            FactorizingMap(big, small, {v: v % 3 for v in big.nodes})

    def test_local_isomorphism_violation_rejected(self):
        # Map C4 onto an edge: both neighbors of a node collapse together.
        big = cycle_graph(4).with_layer("input", {v: v % 2 for v in range(4)})
        small = cycle_graph(4).with_layer("input", {v: v % 2 for v in range(4)})
        # Identity on a subset misses nodes → undefined-node error first.
        with pytest.raises(FactorError, match="undefined"):
            FactorizingMap(big, small, {0: 0, 1: 1})

    def test_non_injective_neighborhood_rejected(self):
        from repro.graphs.labeled_graph import LabeledGraph

        path2 = LabeledGraph([(0, 1)], layers={"input": {0: "a", 1: "a"}})
        square = cycle_graph(4).with_layer("input", {v: "a" for v in range(4)})
        mapping = {0: 0, 1: 1, 2: 0, 3: 1}
        with pytest.raises(FactorError, match="not injective"):
            FactorizingMap(square, path2, mapping)

    def test_identity_is_isomorphism(self):
        g = labeled_cycle(5, 5)
        fm = FactorizingMap(g, g, {v: v for v in g.nodes})
        assert fm.is_isomorphism
        inverse = fm.inverse()
        assert inverse(3) == 3

    def test_inverse_requires_bijection(self):
        fm = figure2_map(6, 3)
        with pytest.raises(FactorError, match="invertible"):
            fm.inverse()

    def test_unknown_node_lookup(self):
        fm = figure2_map(6, 3)
        with pytest.raises(FactorError, match="undefined on node"):
            fm(99)

    def test_compose_requires_chained_graphs(self):
        f = figure2_map(12, 6)
        with pytest.raises(FactorError, match="composition"):
            f.compose(f)
