"""Tests for the deterministic color-greedy baselines and the deciders."""

from __future__ import annotations

import pytest

from repro.algorithms.deciders import TwoHopColoringDecider, WellFormedInputDecider
from repro.algorithms.greedy_by_color import GreedyColoringByColor, GreedyMISByColor
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    star_graph,
    with_uniform_input,
)
from repro.graphs.coloring import (
    apply_two_hop_coloring,
    greedy_two_hop_coloring,
    is_k_hop_coloring,
)
from repro.graphs.properties import max_degree
from repro.problems.decision import NO, YES, decision_outputs_valid
from repro.problems.mis import MISProblem
from repro.runtime.simulation import run_deterministic
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()
IDS = [name for name, _ in ZOO]


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestGreedyMIS:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    def test_valid_mis_from_coloring(self, name, graph):
        instance = colored(graph)
        result = run_deterministic(GreedyMISByColor(), instance)
        assert MISProblem().is_valid_output(graph, result.outputs)

    def test_deterministic_output(self):
        instance = colored(with_uniform_input(cycle_graph(7)))
        a = run_deterministic(GreedyMISByColor(), instance)
        b = run_deterministic(GreedyMISByColor(), instance)
        assert a.outputs == b.outputs

    def test_smallest_color_joins(self):
        instance = colored(with_uniform_input(path_graph(3)))
        result = run_deterministic(GreedyMISByColor(), instance)
        colors = instance.layer("color")
        smallest = min(instance.nodes, key=lambda v: (len(str(colors[v])), str(colors[v])))
        assert result.outputs[smallest] is True


class TestGreedyColoring:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    def test_proper_coloring(self, name, graph):
        instance = colored(graph)
        result = run_deterministic(GreedyColoringByColor(), instance)
        assert is_k_hop_coloring(graph, result.outputs, 1)

    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    def test_at_most_delta_plus_one_colors(self, name, graph):
        instance = colored(graph)
        result = run_deterministic(GreedyColoringByColor(), instance)
        assert len(set(result.outputs.values())) <= max_degree(graph) + 1


class TestWellFormedInputDecider:
    def test_accepts_well_formed(self):
        g = with_uniform_input(cycle_graph(4))
        result = run_deterministic(WellFormedInputDecider(), g)
        assert decision_outputs_valid(True, result.outputs)
        assert all(v == YES for v in result.outputs.values())

    def test_rejects_wrong_degree(self):
        g = cycle_graph(4).with_layer("input", {v: (5, 0) for v in range(4)})
        result = run_deterministic(WellFormedInputDecider(), g)
        assert decision_outputs_valid(False, result.outputs)

    def test_rejects_malformed_label(self):
        g = cycle_graph(4).with_layer("input", {v: "junk" for v in range(4)})
        result = run_deterministic(WellFormedInputDecider(), g)
        assert NO in result.outputs.values()

    def test_decides_in_zero_rounds(self):
        g = with_uniform_input(star_graph(3))
        result = run_deterministic(WellFormedInputDecider(), g)
        assert result.rounds == 0


class TestTwoHopColoringDecider:
    def test_accepts_valid_coloring(self):
        instance = colored(with_uniform_input(cycle_graph(6)))
        result = run_deterministic(TwoHopColoringDecider(), instance)
        assert all(v == YES for v in result.outputs.values())

    def test_rejects_adjacent_conflict(self):
        g = with_uniform_input(path_graph(2)).with_layer("color", {0: 5, 1: 5})
        result = run_deterministic(TwoHopColoringDecider(), g)
        assert NO in result.outputs.values()

    def test_rejects_two_hop_conflict(self):
        g = with_uniform_input(path_graph(3)).with_layer(
            "color", {0: 1, 1: 2, 2: 1}
        )
        result = run_deterministic(TwoHopColoringDecider(), g)
        assert NO in result.outputs.values()

    def test_rejects_malformed_input(self):
        g = path_graph(2).with_layer("input", {0: "x", 1: "y"}).with_layer(
            "color", {0: 0, 1: 1}
        )
        result = run_deterministic(TwoHopColoringDecider(), g)
        assert NO in result.outputs.values()

    def test_decides_within_two_rounds(self):
        instance = colored(with_uniform_input(cycle_graph(5)))
        result = run_deterministic(TwoHopColoringDecider(), instance)
        assert result.rounds <= 2
