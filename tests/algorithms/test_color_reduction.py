"""Tests for deterministic distance-2 color reduction."""

from __future__ import annotations

import pytest

from repro.algorithms.color_reduction import TwoHopColorReduction
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.graphs.coloring import (
    apply_two_hop_coloring,
    greedy_two_hop_coloring,
    is_two_hop_coloring,
    num_colors,
)
from repro.graphs.properties import max_degree
from repro.runtime.simulation import run_deterministic, run_randomized
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()
IDS = [name for name, _ in ZOO]


def colored(graph):
    return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))


class TestReduction:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    def test_output_is_two_hop_coloring(self, name, graph):
        instance = colored(graph)
        result = run_deterministic(TwoHopColorReduction(), instance, max_rounds=500)
        assert result.all_decided
        assert is_two_hop_coloring(graph, result.outputs)

    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    def test_palette_bounded_by_delta_squared(self, name, graph):
        instance = colored(graph)
        result = run_deterministic(TwoHopColorReduction(), instance, max_rounds=500)
        delta = max_degree(graph)
        assert num_colors(result.outputs) <= delta * delta + 1

    def test_reduces_randomized_colorings(self):
        """The intended pipeline: long random bitstring colors in, small
        integer palette out."""
        from repro.graphs.builders import random_connected_graph, with_uniform_input

        graph = with_uniform_input(random_connected_graph(14, 0.2, seed=3))
        raw = run_randomized(TwoHopColoringAlgorithm(), graph, seed=9)
        instance = apply_two_hop_coloring(graph, raw.outputs)
        reduced = run_deterministic(TwoHopColorReduction(), instance, max_rounds=500)
        assert is_two_hop_coloring(graph, reduced.outputs)
        assert all(isinstance(c, int) for c in reduced.outputs.values())
        delta = max_degree(graph)
        assert num_colors(reduced.outputs) <= delta * delta + 1

    def test_deterministic(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        instance = colored(with_uniform_input(cycle_graph(7)))
        a = run_deterministic(TwoHopColorReduction(), instance, max_rounds=100)
        b = run_deterministic(TwoHopColorReduction(), instance, max_rounds=100)
        assert a.outputs == b.outputs

    def test_single_node(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        instance = colored(with_uniform_input(path_graph(1)))
        result = run_deterministic(TwoHopColorReduction(), instance, max_rounds=20)
        assert result.outputs[0] == 0
