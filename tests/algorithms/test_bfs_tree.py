"""Tests for the leader + BFS spanning tree composite algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms.bfs_tree import BFSTreeProblem, LeaderBFSTree
from repro.graphs.builders import (
    cycle_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring
from repro.runtime.simulation import run_deterministic
from repro.views.refinement import color_refinement

PROBLEM = BFSTreeProblem()


def instance_with_n(graph):
    n = graph.num_nodes
    g = graph.with_layer("input", {v: (graph.degree(v), n) for v in graph.nodes})
    return apply_two_hop_coloring(g, greedy_two_hop_coloring(g))


def prime_instances():
    cases = [
        ("path-5", instance_with_n(path_graph(5))),
        ("star-4", instance_with_n(star_graph(4))),
        ("cycle-5", instance_with_n(cycle_graph(5))),
        ("random-8", instance_with_n(random_connected_graph(8, 0.3, seed=4))),
        ("random-10", instance_with_n(random_connected_graph(10, 0.25, seed=9))),
    ]
    return [
        (name, g)
        for name, g in cases
        if color_refinement(g).num_classes == g.num_nodes  # prime only
    ]


CASES = prime_instances()
IDS = [name for name, _ in CASES]


class TestBFSTree:
    @pytest.mark.parametrize("name,graph", CASES, ids=IDS)
    def test_valid_bfs_tree(self, name, graph):
        result = run_deterministic(LeaderBFSTree(), graph, max_rounds=200)
        assert result.all_decided
        assert PROBLEM.is_valid_output(graph, result.outputs)

    def test_depths_are_bfs_layers(self):
        name, graph = CASES[0]  # the path
        result = run_deterministic(LeaderBFSTree(), graph, max_rounds=200)
        roots = [v for v in graph.nodes if result.outputs[v] == ("root", 0)]
        root = roots[0]
        for v in graph.nodes:
            if v != root:
                assert result.outputs[v][1] == graph.distance(root, v)

    def test_deterministic(self):
        name, graph = CASES[-1]
        a = run_deterministic(LeaderBFSTree(), graph, max_rounds=200)
        b = run_deterministic(LeaderBFSTree(), graph, max_rounds=200)
        assert a.outputs == b.outputs

    def test_single_node_is_root(self):
        graph = instance_with_n(path_graph(1))
        result = run_deterministic(LeaderBFSTree(), graph, max_rounds=50)
        assert result.outputs[0] == ("root", 0)


class TestProblemChecker:
    def test_rejects_two_roots(self):
        graph = instance_with_n(path_graph(3))
        outputs = {0: ("root", 0), 1: ("child", 1, None), 2: ("root", 0)}
        assert not PROBLEM.is_valid_output(graph, outputs)

    def test_rejects_wrong_depth(self):
        graph = instance_with_n(path_graph(3))
        colors = graph.layer("color")
        outputs = {
            0: ("root", 0),
            1: ("child", 1, colors[0]),
            2: ("child", 1, colors[1]),  # true distance is 2
        }
        assert not PROBLEM.is_valid_output(graph, outputs)

    def test_rejects_bogus_parent_color(self):
        graph = instance_with_n(path_graph(3))
        outputs = {
            0: ("root", 0),
            1: ("child", 1, "nonexistent"),
            2: ("child", 2, graph.layer("color")[1]),
        }
        assert not PROBLEM.is_valid_output(graph, outputs)

    def test_accepts_true_tree(self):
        graph = instance_with_n(path_graph(3))
        colors = graph.layer("color")
        outputs = {
            0: ("root", 0),
            1: ("child", 1, colors[0]),
            2: ("child", 2, colors[1]),
        }
        assert PROBLEM.is_valid_output(graph, outputs)

    def test_instance_requires_color_layer(self):
        g = path_graph(3).with_layer("input", {v: (path_graph(3).degree(v), 3) for v in range(3)})
        assert not PROBLEM.is_instance(g)
