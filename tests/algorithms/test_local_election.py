"""Tests for randomized 2-local election."""

from __future__ import annotations

import pytest

from repro.algorithms.local_election import TwoLocalElection
from repro.runtime.simulation import run_randomized
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()
IDS = [name for name, _ in ZOO]


def two_local_leaders_valid(graph, outputs) -> bool:
    """Leaders pairwise more than 2 hops apart; everyone within 2 hops
    of a leader."""
    leaders = [v for v in graph.nodes if outputs[v]]
    for i, u in enumerate(leaders):
        for v in leaders[i + 1 :]:
            if graph.distance(u, v) <= 2:
                return False
    for v in graph.nodes:
        ball = graph.nodes_within(v, 2)
        if not any(outputs[u] for u in ball):
            return False
    return True


class TestTwoLocalElection:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_two_local_leader_set(self, name, graph, seed):
        result = run_randomized(TwoLocalElection(), graph, seed=seed)
        assert result.all_decided
        assert two_local_leaders_valid(graph, result.outputs), result.outputs

    def test_single_node_is_leader(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(1))
        result = run_randomized(TwoLocalElection(), g, seed=0)
        assert result.outputs[0] is True

    def test_complete_graph_single_leader(self):
        from repro.graphs.builders import complete_graph, with_uniform_input

        g = with_uniform_input(complete_graph(5))
        for seed in range(5):
            result = run_randomized(TwoLocalElection(), g, seed=seed)
            assert sum(result.outputs.values()) == 1

    def test_path_leader_spacing(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(9))
        for seed in range(5):
            result = run_randomized(TwoLocalElection(), g, seed=seed)
            leaders = sorted(v for v in g.nodes if result.outputs[v])
            assert all(b - a >= 3 for a, b in zip(leaders, leaders[1:]))
            assert 1 <= len(leaders) <= 3
