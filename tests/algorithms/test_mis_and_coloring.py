"""Tests for anonymous MIS and 1-hop vertex coloring."""

from __future__ import annotations

import pytest

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.graphs.coloring import is_k_hop_coloring
from repro.problems.mis import MISProblem
from repro.runtime.simulation import run_randomized
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()
IDS = [name for name, _ in ZOO]


class TestMIS:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_mis(self, name, graph, seed):
        result = run_randomized(AnonymousMISAlgorithm(), graph, seed=seed)
        assert MISProblem().is_valid_output(graph, result.outputs)

    def test_single_node_joins(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(1))
        result = run_randomized(AnonymousMISAlgorithm(), g, seed=0)
        assert result.outputs[0] is True

    def test_complete_graph_exactly_one_in(self):
        from repro.graphs.builders import complete_graph, with_uniform_input

        g = with_uniform_input(complete_graph(6))
        for seed in range(5):
            result = run_randomized(AnonymousMISAlgorithm(), g, seed=seed)
            assert sum(result.outputs.values()) == 1

    def test_star_center_or_all_leaves(self):
        from repro.graphs.builders import star_graph, with_uniform_input

        g = with_uniform_input(star_graph(5))
        for seed in range(5):
            result = run_randomized(AnonymousMISAlgorithm(), g, seed=seed)
            if result.outputs[0]:
                assert not any(result.outputs[v] for v in range(1, 6))
            else:
                assert all(result.outputs[v] for v in range(1, 6))


class TestVertexColoring:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_valid_coloring(self, name, graph, seed):
        result = run_randomized(VertexColoringAlgorithm(), graph, seed=seed)
        assert is_k_hop_coloring(graph, result.outputs, 1)

    def test_colors_are_bitstrings(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        g = with_uniform_input(cycle_graph(5))
        result = run_randomized(VertexColoringAlgorithm(), g, seed=7)
        assert all(set(c) <= {"0", "1"} for c in result.outputs.values())

    def test_commits_no_earlier_than_round_two(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(3))
        result = run_randomized(VertexColoringAlgorithm(), g, seed=2)
        for v in g.nodes:
            assert result.trace.output_round(v) >= 2
