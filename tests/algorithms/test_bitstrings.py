"""Tests for the bitstring comparison helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.bitstrings import (
    bitstring_order_key,
    diverged,
    prefix_related,
    stream_greater,
)

bits = st.text(alphabet="01", max_size=12)


class TestPredicates:
    def test_prefix_related_basic(self):
        assert prefix_related("01", "010")
        assert prefix_related("010", "01")
        assert prefix_related("", "1")
        assert prefix_related("01", "01")
        assert not prefix_related("01", "001")

    def test_diverged_basic(self):
        assert diverged("01", "00")
        assert not diverged("01", "010")

    def test_stream_greater(self):
        assert stream_greater("1", "0")
        assert stream_greater("01", "001")
        assert not stream_greater("001", "01")

    def test_stream_greater_requires_divergence(self):
        with pytest.raises(ValueError, match="prefix-related"):
            stream_greater("01", "010")

    def test_order_key(self):
        assert bitstring_order_key("1") < bitstring_order_key("00")
        assert bitstring_order_key("01") < bitstring_order_key("10")


class TestProperties:
    @given(bits, bits)
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_of_prefix_or_diverged(self, a, b):
        assert prefix_related(a, b) != diverged(a, b)

    @given(bits, bits)
    @settings(max_examples=200, deadline=None)
    def test_divergence_permanent_under_extension(self, a, b):
        if diverged(a, b):
            assert diverged(a + "0", b)
            assert diverged(a, b + "1")
            assert diverged(a + "11", b + "00")

    @given(bits, bits)
    @settings(max_examples=200, deadline=None)
    def test_stream_order_antisymmetric(self, a, b):
        if diverged(a, b):
            assert stream_greater(a, b) != stream_greater(b, a)

    @given(bits, bits, bits)
    @settings(max_examples=200, deadline=None)
    def test_stream_order_stable_under_extension(self, a, b, ext):
        if diverged(a, b):
            assert stream_greater(a + ext, b) == stream_greater(a, b)
