"""Tests for the randomized anonymous 2-hop coloring algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.graphs.coloring import is_two_hop_coloring
from repro.runtime.simulation import run_randomized
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()


class TestCorrectness:
    @pytest.mark.parametrize("name,graph", ZOO, ids=[name for name, _ in ZOO])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_outputs_are_two_hop_colorings(self, name, graph, seed):
        result = run_randomized(TwoHopColoringAlgorithm(), graph, seed=seed)
        assert result.all_decided
        assert is_two_hop_coloring(graph, result.outputs)

    @pytest.mark.parametrize("seed", range(10))
    def test_many_seeds_on_dense_case(self, seed):
        """K5 is the adversarial case: every pair is within 2 hops."""
        from repro.graphs.builders import complete_graph, with_uniform_input

        g = with_uniform_input(complete_graph(5))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=seed)
        assert is_two_hop_coloring(g, result.outputs)
        assert len(set(result.outputs.values())) == 5

    def test_single_node(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(1))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=0)
        assert result.all_decided

    def test_outputs_are_bitstrings(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        g = with_uniform_input(cycle_graph(4))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=5)
        for color in result.outputs.values():
            assert isinstance(color, str)
            assert set(color) <= {"0", "1"}


class TestRoundComplexity:
    def test_commits_no_earlier_than_round_three(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        g = with_uniform_input(cycle_graph(4))
        result = run_randomized(TwoHopColoringAlgorithm(), g, seed=1)
        for v in g.nodes:
            assert result.trace.output_round(v) >= 3

    def test_reasonable_round_count(self):
        """Expected O(log n)-ish: assert a loose sanity bound."""
        from repro.graphs.builders import random_connected_graph, with_uniform_input

        for seed in range(3):
            g = with_uniform_input(random_connected_graph(20, 0.15, seed=seed))
            result = run_randomized(TwoHopColoringAlgorithm(), g, seed=seed)
            assert result.rounds <= 60
