"""Tests for the anonymous maximal matching algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.problems.matching import MATCHED, UNMATCHED, MaximalMatchingProblem
from repro.runtime.simulation import run_randomized
from tests.conftest import small_graph_zoo

ZOO = small_graph_zoo()
IDS = [name for name, _ in ZOO]
PROBLEM = MaximalMatchingProblem()


class TestCorrectness:
    @pytest.mark.parametrize("name,graph", ZOO, ids=IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_maximal_matching(self, name, graph, seed):
        result = run_randomized(AnonymousMatchingAlgorithm(), graph, seed=seed)
        assert PROBLEM.is_valid_output(graph, result.outputs), result.outputs

    def test_single_node_unmatched(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(1))
        result = run_randomized(AnonymousMatchingAlgorithm(), g, seed=0)
        assert result.outputs[0] == (UNMATCHED,)

    def test_edge_always_matches(self):
        from repro.graphs.builders import path_graph, with_uniform_input

        g = with_uniform_input(path_graph(2))
        for seed in range(5):
            result = run_randomized(AnonymousMatchingAlgorithm(), g, seed=seed)
            assert result.outputs[0][0] == MATCHED
            assert result.outputs[1][0] == MATCHED
            # Reciprocal tokens.
            assert result.outputs[0][1] == result.outputs[1][2]
            assert result.outputs[0][2] == result.outputs[1][1]

    def test_triangle_one_pair_one_out(self):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        g = with_uniform_input(cycle_graph(3))
        for seed in range(5):
            result = run_randomized(AnonymousMatchingAlgorithm(), g, seed=seed)
            statuses = sorted(value[0] for value in result.outputs.values())
            assert statuses == [MATCHED, MATCHED, UNMATCHED]

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_on_cycle(self, seed):
        from repro.graphs.builders import cycle_graph, with_uniform_input

        g = with_uniform_input(cycle_graph(7))
        result = run_randomized(AnonymousMatchingAlgorithm(), g, seed=seed)
        assert PROBLEM.is_valid_output(g, result.outputs)
        matched = [v for v in g.nodes if result.outputs[v][0] == MATCHED]
        assert len(matched) in (4, 6)  # maximal matchings of C7 have 2 or 3 edges
