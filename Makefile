# Developer entry points.  PYTHONPATH is injected so no install is needed.
PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

# Files already migrated to `ruff format`; extend as modules are touched.
FORMAT_PATHS := src/repro/experiments/runner.py tests/experiments/test_runner.py

# Extra flags for the perf-smoke gate.  CI runs on different hardware
# than the committed baseline, so its workflow passes
#   PERF_SMOKE_FLAGS="--allow-machine-mismatch --tolerance 5.0"
# (see .github/workflows/ci.yml and docs/PERFORMANCE.md).
PERF_SMOKE_FLAGS ?=

# Generated run outputs (perf payloads, artifact stores, experiment
# JSON) land here instead of the repo root; the directory is gitignored.
OUT_DIR := benchmarks/out

.PHONY: test bench perf perf-smoke faults-smoke dynamic-smoke artifacts-smoke hashseed-smoke invariants lint typecheck experiments fabric fabric-merge ci

test:  ## tier-1 test suite
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

bench:  ## full benchmark/experiment suite (pytest-benchmark)
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

perf:  ## rewrite the benchmarks/BENCH_views.json perf baseline
	$(PYTHON) benchmarks/run_perf_suite.py

perf-smoke:  ## quick perf gate: fail if view construction regresses >2x vs baseline
	$(PYTHON) benchmarks/run_perf_suite.py --quick --check $(PERF_SMOKE_FLAGS)

faults-smoke:  ## zero-fault differential gate (see docs/FAULTS.md)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.faults.gate

dynamic-smoke:  ## zero-churn differential gate (see docs/DYNAMIC.md)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.dynamic.gate

artifacts-smoke:  ## cold/warm artifact-serving differential gate (see docs/ARTIFACTS.md)
	@mkdir -p $(OUT_DIR)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.artifacts gate \
		--store $(OUT_DIR)/ARTIFACTS_store.jsonl --out $(OUT_DIR)

hashseed-smoke:  ## hash-seed independence gate: canonical bytes under two PYTHONHASHSEEDs
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.experiments.hashseed_gate

invariants:  ## syntactic + interprocedural flow lint (see docs/LINT.md)
	@mkdir -p $(OUT_DIR)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.lint --baseline LINT_BASELINE.json \
		--json $(OUT_DIR)/LINT_report.json --call-graph $(OUT_DIR)/CALL_GRAPH.json
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.lint tests --warn-only

lint:  ## ruff: lint everything, format-check the migrated files
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples && \
		$(PYTHON) -m ruff format --check $(FORMAT_PATHS); \
	else \
		echo "SKIPPED lint: ruff not installed (pip install -e .[dev])"; \
	fi

typecheck:  ## mypy over the typed file set (see [tool.mypy] files in pyproject.toml)
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHONPATH_SRC) $(PYTHON) -m mypy; \
	else \
		echo "SKIPPED typecheck: mypy not installed (pip install -e .[dev])"; \
	fi

experiments:  ## run every experiment in parallel, writing the JSON artifact
	@mkdir -p $(OUT_DIR)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.experiments --all --jobs 4 \
		--json $(OUT_DIR)/RESULTS_experiments.json

fabric:  ## resumable fabric sweep: registry + all grids into the JSONL store
	@mkdir -p $(OUT_DIR)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.experiments fabric run \
		--all --grids --jobs 4 --store $(OUT_DIR)/FABRIC_results.jsonl

fabric-merge:  ## fold the fabric store into the canonical merged artifact
	@mkdir -p $(OUT_DIR)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.experiments fabric merge \
		$(OUT_DIR)/FABRIC_results.jsonl --out $(OUT_DIR)/RESULTS_experiments.json

ci: lint typecheck invariants test faults-smoke dynamic-smoke artifacts-smoke hashseed-smoke perf-smoke  ## exactly what .github/workflows/ci.yml runs
