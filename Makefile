# Developer entry points.  PYTHONPATH is injected so no install is needed.
PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench perf perf-smoke

test:  ## tier-1 test suite
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

bench:  ## full benchmark/experiment suite (pytest-benchmark)
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

perf:  ## rewrite the BENCH_views.json perf baseline
	$(PYTHON) benchmarks/run_perf_suite.py

perf-smoke:  ## quick perf gate: fail if view construction regresses >2x vs baseline
	$(PYTHON) benchmarks/run_perf_suite.py --quick --check
