"""Primality and factor enumeration.

A labeled graph is *prime* when all of its factors are isomorphic to it
(paper Section 2.3.1).  For 2-hop colored graphs Lemma 3 says the
infinite view graph is the unique prime factor; for general labeled
graphs several non-isomorphic prime factors can coexist — the paper's
example is the uncolored 12-cycle, whose prime factors are the 3-cycle
and the 4-cycle.  :func:`prime_factors` reproduces exactly that.

Factor enumeration is exhaustive over fiber partitions and therefore
meant for small graphs (the paper-scale examples); it exploits Fact 1 —
nodes sharing a fiber share their infinite view — to restrict blocks to
view-equivalence classes.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import FactorError, GraphError
from repro.factor.factorizing_map import FactorizingMap
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.graphs.isomorphism import are_isomorphic
from repro.views.refinement import refinement_indices


def is_prime(graph: LabeledGraph) -> bool:
    """Whether ``graph`` is prime (every factor is an isomorphism).

    Equivalent to its view quotient being trivial *when the quotient is a
    factor* (2-hop colored graphs); in general, primality is decided by
    checking that no nontrivial fiber partition yields a factor.
    """
    return len(all_factors(graph, include_trivial=False)) == 0


def all_factors(
    graph: LabeledGraph, include_trivial: bool = False
) -> list[FactorizingMap]:
    """All factorizing maps out of ``graph``, one per valid fiber partition.

    ``include_trivial`` adds the identity factorization.  Exhaustive —
    use on small graphs only (guarded at 16 nodes).
    """
    if graph.num_nodes > 16:
        raise GraphError(
            f"all_factors is exhaustive and limited to 16 nodes, got {graph.num_nodes}"
        )
    # View classes through the artifact store's shared refinement memo
    # (the same path quotient construction takes, so a factor-enumeration
    # pass after a quotient never re-refines).
    csr, colors = refinement_indices(graph)
    classes: dict[Node, int] = dict(zip(csr.nodes, colors))
    n = graph.num_nodes
    results: list[FactorizingMap] = []
    for fiber_size in _divisors(n):
        if fiber_size == 1:
            if include_trivial:
                identity = {v: v for v in graph.nodes}
                results.append(FactorizingMap(graph, graph, identity))
            continue
        for partition in _equal_size_partitions(graph, classes, fiber_size):
            factor_map = _partition_to_factor(graph, partition)
            if factor_map is not None:
                results.append(factor_map)
    return results


def prime_factors(graph: LabeledGraph) -> list[LabeledGraph]:
    """The prime factors of ``graph``, deduplicated up to isomorphism.

    A graph that is itself prime has exactly itself as prime factor.
    """
    factors = [m.factor for m in all_factors(graph, include_trivial=True)]
    primes = [candidate for candidate in factors if is_prime(candidate)]
    unique: list[LabeledGraph] = []
    for candidate in primes:
        if not any(are_isomorphic(candidate, existing) for existing in unique):
            unique.append(candidate)
    return unique


# ----------------------------------------------------------------------


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def _equal_size_partitions(
    graph: LabeledGraph, classes: Mapping[Node, int], fiber_size: int
) -> list[list[tuple[Node, ...]]]:
    """All partitions of the node set into blocks of exactly ``fiber_size``
    nodes, where every block stays inside one view class (Fact 1)."""
    nodes = list(graph.nodes)
    partitions: list[list[tuple[Node, ...]]] = []
    blocks: list[list[Node]] = []

    def backtrack(remaining: list[Node]) -> None:
        if not remaining:
            if all(len(block) == fiber_size for block in blocks):
                partitions.append([tuple(block) for block in blocks])
            return
        if len(remaining) < sum(fiber_size - len(block) for block in blocks):
            return  # not enough nodes left to fill the open blocks
        first = remaining[0]
        rest = remaining[1:]
        # Join an open block (only the lexicographically first unassigned
        # node may open a block, which avoids generating permutations).
        for block in blocks:
            if len(block) < fiber_size and classes[block[0]] == classes[first]:
                block.append(first)
                backtrack(rest)
                block.pop()
        blocks.append([first])
        backtrack(rest)
        blocks.pop()

    backtrack(nodes)
    return partitions


def _partition_to_factor(
    graph: LabeledGraph, partition: list[tuple[Node, ...]]
) -> FactorizingMap | None:
    """Build and verify the quotient of ``graph`` by ``partition``;
    ``None`` when the partition does not induce a factor."""
    block_of: dict[Node, int] = {}
    for index, block in enumerate(partition):
        for v in block:
            block_of[v] = index
    edges: set = set()
    for v in graph.nodes:
        b = block_of[v]
        neighbor_blocks = [block_of[u] for u in graph.neighbors(v)]
        if b in neighbor_blocks:
            return None  # would need a loop
        if len(set(neighbor_blocks)) != len(neighbor_blocks):
            return None  # projection not locally injective
        for d in neighbor_blocks:
            edges.add(frozenset((b, d)))
    layers = {
        name: {index: graph.label_of(block[0], name) for index, block in enumerate(partition)}
        for name in graph.layer_names
    }
    try:
        quotient = LabeledGraph(
            sorted(tuple(sorted(e)) for e in edges),
            nodes=range(len(partition)),
            layers=layers,
        )
        return FactorizingMap(graph, quotient, block_of)
    except (GraphError, FactorError):
        return None
