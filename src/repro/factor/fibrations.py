"""Section 4: the bridge to Boldi-Vigna fibrations.

A 2-hop colored undirected graph ``G = (V, E, c)`` has a *directed (edge
colored) representation* ``H = (V, E', c')``: every undirected edge
``(u, v)`` becomes two directed edges, and the directed edge ``u -> v``
is colored ``<c(u), c(v)>``.  The paper observes that ``H`` is

* *symmetric* — every edge has its reverse, and
* *deterministically colored* — the out-edges of any node carry pairwise
  distinct colors, with the coloring *respecting the symmetry* (the
  reverse of a ``<c1, c2>`` edge is colored ``<c2, c1>``),

and that fibrations between directed representations correspond exactly
to factorizing maps between the underlying 2-hop colored graphs.  This
module constructs representations and checks all of those statements so
the SEC4 experiment can validate the correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.exceptions import FactorError, LabelingError
from repro.graphs.coloring import is_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.factor.factorizing_map import FactorizingMap

DirectedEdge = tuple[Node, Node]


@dataclass(frozen=True)
class DirectedRepresentation:
    """An edge-colored directed graph ``H = (V', E', c')``.

    ``edge_colors`` maps each directed edge to its color.  Node labels of
    the source graph are *not* carried over — Section 4 works purely with
    the edge coloring derived from the 2-hop node coloring.
    """

    nodes: tuple[Node, ...]
    edges: frozenset[DirectedEdge]
    edge_colors: Mapping[DirectedEdge, tuple]

    def out_edges(self, v: Node) -> list[DirectedEdge]:
        return sorted((e for e in self.edges if e[0] == v), key=repr)

    def in_edges(self, v: Node) -> list[DirectedEdge]:
        return sorted((e for e in self.edges if e[1] == v), key=repr)


def directed_representation(
    graph: LabeledGraph, color_layer: str = "color"
) -> DirectedRepresentation:
    """The directed edge-colored representation of a 2-hop colored graph."""
    coloring = graph.layer(color_layer)
    if not is_two_hop_coloring(graph, coloring):
        raise LabelingError(
            f"layer {color_layer!r} is not a 2-hop coloring; the directed "
            "representation is only defined for 2-hop colored graphs"
        )
    edges: set[DirectedEdge] = set()
    colors: dict[DirectedEdge, tuple] = {}
    for u, v in graph.edges():
        edges.add((u, v))
        edges.add((v, u))
        colors[(u, v)] = (coloring[u], coloring[v])
        colors[(v, u)] = (coloring[v], coloring[u])
    return DirectedRepresentation(
        nodes=graph.nodes, edges=frozenset(edges), edge_colors=colors
    )


def is_symmetric_representation(rep: DirectedRepresentation) -> bool:
    """Whether every directed edge has its reverse present."""
    return all((v, u) in rep.edges for (u, v) in rep.edges)


def is_deterministic_coloring(rep: DirectedRepresentation) -> bool:
    """Whether every node's out-edges carry pairwise distinct colors."""
    for v in rep.nodes:
        colors = [rep.edge_colors[e] for e in rep.out_edges(v)]
        if len(set(colors)) != len(colors):
            return False
    return True


def coloring_respects_symmetry(rep: DirectedRepresentation) -> bool:
    """Whether the reverse of a ``<c1, c2>`` edge is colored ``<c2, c1>``."""
    for (u, v) in rep.edges:
        c = rep.edge_colors[(u, v)]
        if rep.edge_colors[(v, u)] != (c[1], c[0]):
            return False
    return True


def is_fibration(
    total: DirectedRepresentation,
    base: DirectedRepresentation,
    mapping: Mapping[Node, Node],
) -> bool:
    """Whether ``mapping`` is a (surjective, color-preserving) fibration.

    For deterministically colored symmetric representations this is the
    directed counterpart of a factorizing map: for every node ``v`` of
    the total graph, the out-edges of ``v`` map bijectively and
    color-preservingly onto the out-edges of ``mapping(v)``.
    """
    image = {mapping[v] for v in total.nodes}
    if image != set(base.nodes):
        return False
    for v in total.nodes:
        out_v = total.out_edges(v)
        out_image = base.out_edges(mapping[v])
        colors_v = sorted(repr(total.edge_colors[e]) for e in out_v)
        colors_image = sorted(repr(base.edge_colors[e]) for e in out_image)
        if colors_v != colors_image:
            return False
        for (src, dst) in out_v:
            lifted_color = total.edge_colors[(src, dst)]
            # The unique base out-edge with this color must end at the
            # image of dst (uniqueness by deterministic coloring).
            matches = [
                e for e in out_image if base.edge_colors[e] == lifted_color
            ]
            if len(matches) != 1 or matches[0][1] != mapping[dst]:
                return False
    return True


def fibration_to_factorizing_map(
    product: LabeledGraph,
    factor: LabeledGraph,
    mapping: Mapping[Node, Node],
    color_layer: str = "color",
) -> FactorizingMap:
    """Validate ``mapping`` as a fibration of directed representations and
    return the corresponding verified factorizing map (Section 4's
    correspondence, in the fibration -> factorizing map direction)."""
    rep_total = directed_representation(product, color_layer)
    rep_base = directed_representation(factor, color_layer)
    if not is_fibration(rep_total, rep_base, mapping):
        raise FactorError(
            "mapping is not a fibration of the directed representations"
        )
    return FactorizingMap(product, factor, mapping)
