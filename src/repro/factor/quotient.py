"""The infinite view graph ``G_∞`` and finite view graph ``G_*``.

``G_∞`` (Definition 1) identifies nodes with equal depth-infinity views;
by Norris's theorem the ``L_∞`` partition equals the ``L_n`` partition,
which color refinement computes directly — so on finite graphs ``G_∞``
and the finite view graph ``G_*`` are the same object up to the
identification ``f_n`` (Corollary 2), and we build both as one quotient.

Quotient node ids are ``0 .. k-1`` in a canonical order (the refinement
class order, which is construction- and node-id-independent), so equal
input graphs always give identical quotients — the property every node
of A_∞/A_* relies on when they must all select the *same* simulation.

For 2-hop colored graphs the quotient is guaranteed to be a factor
(Lemma 2).  For general graphs the quotient projection can fail to be a
local isomorphism (or even produce loops/multi-edges); we then raise
:class:`FactorError` with a diagnosis, since the paper's machinery is
only defined for the 2-hop colored case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.artifacts.specs import quotient_spec
from repro.artifacts.store import memory_bucket, note_artifact
from repro.exceptions import FactorError
from repro.graphs.labeled_graph import LabeledGraph
from repro.factor.factorizing_map import FactorizingMap
from repro.views.refinement import refinement_indices
from repro.views.local_views import view_builder
from repro.views.view_tree import ViewTree


@dataclass
class QuotientResult:
    """The quotient of a graph by view equivalence.

    Attributes
    ----------
    graph:
        The quotient graph on nodes ``0 .. k-1`` (canonical class order),
        carrying the same label layers as the input.
    map:
        The infinite view map ``f_∞`` as a verified factorizing map from
        the input onto :attr:`graph`.
    views:
        Optionally, the canonical depth-``n`` view (``L_n``, the node
        alias of Corollary 1) of each quotient node.
    """

    graph: LabeledGraph
    map: FactorizingMap
    views: dict[int, ViewTree] | None = None

    @property
    def is_trivial(self) -> bool:
        """Whether the input was already prime (quotient is an isomorphism)."""
        return self.map.is_isomorphism


# Memoized quotients: the "quotient" bucket of the artifact store's
# memory tier, keyed by ``(graph, with_views)`` — structural graph
# equality, so equal instances share one result.  Results are shared
# between hits and must be treated as read-only (the same contract as
# ``RefinementResult.classes``); emptied by
# ``repro.views.view_tree.clear_caches`` because attached views hold
# interned trees.
_QUOTIENTS = memory_bucket("quotient", capacity=8)


def infinite_view_graph(
    graph: LabeledGraph, with_views: bool = False
) -> QuotientResult:
    """The infinite view graph ``G_∞`` of ``graph`` with the map ``f_∞``.

    Raises :class:`FactorError` when the quotient is not a factor — which
    cannot happen for 2-hop colored inputs (Lemma 2), so a raise means
    the input lacks a valid 2-hop coloring among its layers.

    Results are memoized per graph *structure* (plus the ``with_views``
    flag) in the artifact store's memory tier; hits return the same
    (read-only) :class:`QuotientResult` object.
    """
    note_artifact(lambda: quotient_spec(graph, with_views))
    memo_key = (graph, bool(with_views))
    cached = _QUOTIENTS.get(memo_key)
    if cached is not None:
        return cached
    # Refinement classes in index space: ``colors[i]`` is the class of
    # ``csr.nodes[i]``, numbered densely ``0 .. k-1`` in canonical order.
    csr, colors = refinement_indices(graph)
    nodes = csr.nodes
    adjacency = csr.adjacency
    num_classes = max(colors) + 1
    representatives = [-1] * num_classes

    # Quotient edges: class c adjacent to class d iff some member of c has
    # a neighbor in d.  For the projection to be a local isomorphism,
    # *every* member of c must have *exactly one* neighbor in d, and no
    # member may have a neighbor inside its own class (that would force a
    # loop).  We check while building — all of it on flat int lists.
    edges: set[tuple[int, int]] = set()
    add_edge = edges.add
    for i in range(csr.num_nodes):
        c = colors[i]
        if representatives[c] < 0:
            representatives[c] = i
        neighbor_classes = [colors[j] for j in adjacency[i]]
        if c in neighbor_classes:
            raise FactorError(
                f"view quotient is not simple: node {nodes[i]!r} has a neighbor in its "
                "own view class (input is not 2-hop colored)"
            )
        if len(set(neighbor_classes)) != len(neighbor_classes):
            raise FactorError(
                f"view quotient projection is not locally injective at {nodes[i]!r}: "
                "two neighbors share a view class (input is not 2-hop colored)"
            )
        for d in neighbor_classes:
            add_edge((c, d) if c < d else (d, c))

    layers = {
        name: {
            c: graph.label_of(nodes[representatives[c]], name)
            for c in range(num_classes)
        }
        for name in graph.layer_names
    }
    quotient = LabeledGraph(
        sorted(edges),
        nodes=range(num_classes),
        layers=layers,
        check_connected=True,
    )
    factorizing = FactorizingMap(graph, quotient, dict(zip(nodes, colors)))

    views: dict[int, ViewTree] | None = None
    if with_views:
        # The alias of a class is its depth-n view with n = |V_∞|
        # (Corollary 1 applied to the prime quotient).  By Fact 1 the
        # depth-n view of any member computed in the input graph is the
        # same tree, so computing inside the (smaller) quotient is both
        # cheaper and faithful; the tests cross-check the equality.  The
        # builder deepens incrementally and, past the quotient's own
        # stabilization depth, extends levels per view class — so a
        # quotient whose partition stabilizes early does not pay full
        # per-node rounds all the way to depth n.
        depth = quotient.num_nodes
        views = view_builder(quotient).views(depth)

    result = QuotientResult(graph=quotient, map=factorizing, views=views)
    _QUOTIENTS.put(memo_key, result)
    return result


def finite_view_graph(graph: LabeledGraph) -> QuotientResult:
    """The finite view graph ``G_*`` (Corollary 2: ``G_* ≅ G_∞``), with the
    canonical depth-``n`` views attached as node aliases."""
    return infinite_view_graph(graph, with_views=True)
