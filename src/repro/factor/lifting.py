"""The lifting lemma (Angluin; Boldi-Vigna) made executable.

If ``G' ⪯_f G`` and an anonymous algorithm runs on the factor ``G'`` with
bit assignment ``b'``, then running it on the product ``G`` with the
*lifted* assignment ``b(v) = b'(f(v))`` produces, at every ``v``, exactly
the state/message/output that ``f(v)`` produces on ``G'`` — the two
executions are indistinguishable through ``f``.  This holds because our
algorithms are port-oblivious broadcast machines (see
:mod:`repro.runtime`): the received multiset at ``v`` maps bijectively
onto the received multiset at ``f(v)`` via the local isomorphism.

This is the engine of the paper's correctness arguments: A_∞/A_* select
a simulation on the quotient and the lifting lemma turns it into a legal
execution on the real input (Sections 2.3.2, 3.2), and the same lemma
yields the classic leader-election impossibility (every deterministic
execution on a product is forced to be ``f``-symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

from repro.exceptions import SimulationError
from repro.factor.factorizing_map import FactorizingMap
from repro.graphs.labeled_graph import Node
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import ExecutionResult, execute


def lift_assignment(
    factor_assignment: Mapping[Node, str], factorizing_map: FactorizingMap
) -> dict[Node, str]:
    """Lift a bit assignment on the factor to the product: ``b(v) = b'(f(v))``."""
    missing = [
        t for t in factorizing_map.factor.nodes if t not in factor_assignment
    ]
    if missing:
        raise SimulationError(
            f"assignment does not cover factor nodes {missing!r}"
        )
    return {
        v: factor_assignment[factorizing_map(v)]
        for v in factorizing_map.product.nodes
    }


def lift_outputs_to_product(
    factor_outputs: Mapping[Node, Any], factorizing_map: FactorizingMap
) -> dict[Node, Any]:
    """Pull factor outputs back to the product: ``o(v) = o'(f(v))``."""
    return {
        v: factor_outputs[factorizing_map(v)] for v in factorizing_map.product.nodes
    }


def project_outputs(
    product_outputs: Mapping[Node, Any], factorizing_map: FactorizingMap
) -> dict[Node, Any]:
    """Project product outputs onto the factor, requiring fiber-consistency.

    Raises :class:`SimulationError` if two nodes of one fiber disagree —
    which the lifting lemma says cannot happen for a lifted execution.
    """
    projected: dict[Node, Any] = {}
    for v, value in product_outputs.items():
        target = factorizing_map(v)
        if target in projected and projected[target] != value:
            raise SimulationError(
                f"fiber of {target!r} disagrees: {projected[target]!r} vs {value!r}"
            )
        projected[target] = value
    return projected


@dataclass
class LiftingComparison:
    """Round-by-round comparison of a factor execution and its lift."""

    factor_result: ExecutionResult
    product_result: ExecutionResult
    outputs_match: bool
    messages_match: bool

    @property
    def lemma_holds(self) -> bool:
        return self.outputs_match and self.messages_match


def verify_execution_lifting(
    algorithm: AnonymousAlgorithm,
    factorizing_map: FactorizingMap,
    factor_assignment: Mapping[Node, str],
) -> LiftingComparison:
    """Run the algorithm on factor and product and check the lifting lemma.

    The factor runs with ``factor_assignment``; the product with its
    lift.  Returns a comparison recording whether every product node's
    per-round messages and final output equal those of its image.
    """
    factor_result = execute(
        algorithm, factorizing_map.factor, assignment=factor_assignment, record_trace=True
    )
    product_assignment = lift_assignment(factor_assignment, factorizing_map)
    product_result = execute(
        algorithm, factorizing_map.product, assignment=product_assignment, record_trace=True
    )

    outputs_match = True
    for v in factorizing_map.product.nodes:
        image = factorizing_map(v)
        if product_result.outputs.get(v) != factor_result.outputs.get(image):
            outputs_match = False
            break

    messages_match = True
    assert factor_result.trace is not None and product_result.trace is not None
    for v in factorizing_map.product.nodes:
        image = factorizing_map(v)
        if product_result.trace.messages_of(v) != factor_result.trace.messages_of(image):
            messages_match = False
            break

    return LiftingComparison(
        factor_result=factor_result,
        product_result=product_result,
        outputs_match=outputs_match,
        messages_match=messages_match,
    )
