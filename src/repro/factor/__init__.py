"""Factor/product graphs and the lifting machinery (paper §2.3.1, §4).

``G' ⪯_f G`` — *G' is a factor of G*, *G is a product of G'* — when
``f : V -> V'`` is surjective, label-preserving and a local isomorphism.
This package provides the map objects and their verification
(:mod:`repro.factor.factorizing_map`), the view quotient ``G_∞`` / finite
view graph ``G_*`` (:mod:`repro.factor.quotient`), primality and factor
enumeration (:mod:`repro.factor.prime`), the lifting lemma for
executions (:mod:`repro.factor.lifting`), and the Section-4 bridge to
Boldi-Vigna fibrations (:mod:`repro.factor.fibrations`).
"""

from repro.factor.factorizing_map import FactorizingMap
from repro.factor.quotient import QuotientResult, finite_view_graph, infinite_view_graph
from repro.factor.prime import (
    all_factors,
    is_prime,
    prime_factors,
)
from repro.factor.lifting import (
    lift_assignment,
    lift_outputs_to_product,
    project_outputs,
    verify_execution_lifting,
)
from repro.factor.fibrations import (
    DirectedRepresentation,
    coloring_respects_symmetry,
    directed_representation,
    fibration_to_factorizing_map,
    is_deterministic_coloring,
    is_fibration,
    is_symmetric_representation,
)

__all__ = [
    "FactorizingMap",
    "QuotientResult",
    "finite_view_graph",
    "infinite_view_graph",
    "all_factors",
    "is_prime",
    "prime_factors",
    "lift_assignment",
    "lift_outputs_to_product",
    "project_outputs",
    "verify_execution_lifting",
    "DirectedRepresentation",
    "coloring_respects_symmetry",
    "directed_representation",
    "fibration_to_factorizing_map",
    "is_deterministic_coloring",
    "is_fibration",
    "is_symmetric_representation",
]
