"""Factorizing maps (paper Section 2.3.1).

A :class:`FactorizingMap` bundles a product graph ``G``, a factor graph
``G'`` and the map ``f : V -> V'``, and verifies on construction the
three defining properties:

1. ``f`` is surjective;
2. ``f`` respects labels: ``l(v) = l'(f(v))``;
3. ``f`` is a local isomorphism: ``f`` restricted to ``Γ(v)`` is a
   bijection onto ``Γ(f(v))``.

The class also exposes the standard consequences used by the paper:
fibers all have the same size ``m`` with ``|V| = m · |V'|``, the ``m = 1``
case is a labeled isomorphism, and maps compose.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import FactorError
from repro.graphs.labeled_graph import LabeledGraph, Node, _sort_key


class FactorizingMap:
    """A verified factorizing map ``f`` inducing ``factor ⪯_f product``."""

    def __init__(
        self,
        product: LabeledGraph,
        factor: LabeledGraph,
        mapping: Mapping[Node, Node],
        check: bool = True,
    ) -> None:
        self._product = product
        self._factor = factor
        self._mapping = dict(mapping)
        if check:
            self._verify()

    # ------------------------------------------------------------------

    @property
    def product(self) -> LabeledGraph:
        """The product (covering) graph ``G``."""
        return self._product

    @property
    def factor(self) -> LabeledGraph:
        """The factor (base) graph ``G'``."""
        return self._factor

    def __call__(self, v: Node) -> Node:
        try:
            return self._mapping[v]
        except KeyError:
            raise FactorError(f"map is undefined on node {v!r}") from None

    def as_dict(self) -> dict[Node, Node]:
        return dict(self._mapping)

    def fiber(self, target: Node) -> tuple[Node, ...]:
        """All product nodes mapping to ``target`` (sorted)."""
        if not self._factor.has_node(target):
            raise FactorError(f"unknown factor node {target!r}")
        return tuple(
            sorted((v for v, t in self._mapping.items() if t == target), key=_sort_key)
        )

    @property
    def multiplicity(self) -> int:
        """The fiber size ``m`` with ``|V| = m * |V'|``."""
        return self._product.num_nodes // self._factor.num_nodes

    @property
    def is_isomorphism(self) -> bool:
        """Whether ``m = 1``, i.e. the map is a labeled isomorphism."""
        return self._product.num_nodes == self._factor.num_nodes

    def inverse(self) -> "FactorizingMap":
        """The inverse map (only defined when :attr:`is_isomorphism`)."""
        if not self.is_isomorphism:
            raise FactorError(
                f"map has multiplicity {self.multiplicity}; only bijective "
                "factorizing maps are invertible"
            )
        inverted = {t: v for v, t in self._mapping.items()}
        return FactorizingMap(self._factor, self._product, inverted)

    def compose(self, next_map: "FactorizingMap") -> "FactorizingMap":
        """The composition ``next_map ∘ self`` — factors compose:
        if ``G' ⪯ G`` and ``G'' ⪯ G'`` then ``G'' ⪯ G``."""
        if next_map.product is not self._factor and next_map.product != self._factor:
            raise FactorError(
                "composition requires the next map's product to equal this map's factor"
            )
        composed = {v: next_map(self._mapping[v]) for v in self._product.nodes}
        return FactorizingMap(self._product, next_map.factor, composed)

    # ------------------------------------------------------------------

    def _verify(self) -> None:
        """Check the three defining properties.

        The happy path runs entirely on the CSR mirrors of the two
        graphs — dense int images, sorted int row comparisons — which is
        what keeps quotient construction array-native end to end.  Any
        discrepancy (or a mapping the fast path cannot index) falls back
        to the original object-walking checks, which re-scan in the
        historical order and raise the exact historical error.
        """
        if self._verify_fast():
            return
        self._verify_slow()

    def _verify_fast(self) -> bool:
        product, factor, mapping = self._product, self._factor, self._mapping
        if product.layer_names != factor.layer_names:
            return False
        pcsr = product._csr_mirror()
        fcsr = factor._csr_mirror()
        find = fcsr.index.get
        try:
            image = [find(mapping[v], -1) for v in pcsr.nodes]
        except (KeyError, TypeError):  # undefined or unhashable image
            return False
        if -1 in image:
            return False
        # Property 1: surjective.
        if len(set(image)) != fcsr.num_nodes:
            return False
        # Property 2: label-respecting — compare composed label values
        # through the per-graph rank tables (ranks themselves are
        # per-graph, so compare the ranked *values*).
        plabels, pranks = pcsr.label_values, pcsr.label_ranks
        flabels, franks = fcsr.label_values, fcsr.label_ranks
        for i in range(pcsr.num_nodes):
            if plabels[pranks[i]] != flabels[franks[image[i]]]:
                return False
        # Property 3: local isomorphism.  Image lists and target rows are
        # compared as sorted int lists; equality implies injectivity too,
        # because target rows never repeat an index.
        ig = image.__getitem__
        rows = [sorted(fcsr.adjacency[j]) for j in range(fcsr.num_nodes)]
        for i, neighbors in enumerate(pcsr.adjacency):
            if sorted(map(ig, neighbors)) != rows[image[i]]:
                return False
        # Consequence: equal fiber sizes.
        sizes = [0] * fcsr.num_nodes
        for j in image:
            sizes[j] += 1
        return len(set(sizes)) == 1

    def _verify_slow(self) -> None:
        product, factor, mapping = self._product, self._factor, self._mapping

        undefined = [v for v in product.nodes if v not in mapping]
        if undefined:
            raise FactorError(f"map is undefined on product nodes {undefined!r}")
        out_of_range = sorted(
            {t for t in mapping.values() if not factor.has_node(t)}, key=repr
        )
        if out_of_range:
            raise FactorError(f"map hits nodes outside the factor: {out_of_range!r}")

        # Property 1: surjective.
        image = {mapping[v] for v in product.nodes}
        uncovered = [t for t in factor.nodes if t not in image]
        if uncovered:
            raise FactorError(f"map is not surjective; uncovered: {uncovered!r}")

        # Property 2: label-respecting.
        if product.layer_names != factor.layer_names:
            raise FactorError(
                f"layer mismatch: product has {product.layer_names!r}, "
                f"factor has {factor.layer_names!r}"
            )
        for v in product.nodes:
            if product.label(v) != factor.label(mapping[v]):
                raise FactorError(
                    f"label not respected at {v!r}: {product.label(v)!r} != "
                    f"{factor.label(mapping[v])!r} at image {mapping[v]!r}"
                )

        # Property 3: local isomorphism.
        for v in product.nodes:
            images = [mapping[u] for u in product.neighbors(v)]
            targets = list(factor.neighbors(mapping[v]))
            if len(set(images)) != len(images):
                raise FactorError(
                    f"f|Γ({v!r}) is not injective: images {sorted(images, key=repr)!r}"
                )
            if sorted(images, key=repr) != sorted(targets, key=repr):
                raise FactorError(
                    f"f|Γ({v!r}) is not onto Γ({mapping[v]!r}): images "
                    f"{sorted(images, key=repr)!r} vs targets {sorted(targets, key=repr)!r}"
                )

        # Consequence: equal fiber sizes (connectedness makes this automatic,
        # so a violation indicates an internal inconsistency).
        sizes = {t: 0 for t in factor.nodes}
        for v in product.nodes:
            sizes[mapping[v]] += 1
        if len(set(sizes.values())) != 1:
            raise FactorError(
                f"fibers have unequal sizes {sizes!r}; factor/product pair is inconsistent"
            )

    def __repr__(self) -> str:
        return (
            f"FactorizingMap(|V|={self._product.num_nodes} -> "
            f"|V'|={self._factor.num_nodes}, m={self.multiplicity})"
        )
