"""Analysis & experiment harness: run statistics, symmetry diagnostics,
and the graph-family sweep helpers that drive the benchmark suite."""

from repro.analysis.stats import RunStats, aggregate, collect_run_stats
from repro.analysis.symmetry import (
    election_is_deterministically_impossible,
    view_class_profile,
)
from repro.analysis.sweeps import (
    SweepRow,
    format_table,
    standard_families,
)
from repro.analysis.khop_boundary import (
    KHopViolation,
    lifted_khop_violation,
    uniform_cycle_cover,
)
from repro.analysis.probability import SuccessCurve, measure_success_curve

__all__ = [
    "KHopViolation",
    "lifted_khop_violation",
    "uniform_cycle_cover",
    "SuccessCurve",
    "measure_success_curve",
    "RunStats",
    "aggregate",
    "collect_run_stats",
    "election_is_deterministically_impossible",
    "view_class_profile",
    "SweepRow",
    "format_table",
    "standard_families",
]
