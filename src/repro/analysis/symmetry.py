"""Symmetry diagnostics — the substance of the impossibility experiments.

Angluin's lifting argument (paper Section 1.3): on a graph with a
nontrivial factor, every deterministic anonymous execution is constant
on fibers, so problems requiring a unique distinguished node (leader
election, unique IDs) are deterministically unsolvable; with Las-Vegas
randomness the impossibility persists on such graphs because a lifted
execution occurs with positive probability.  The helpers here measure
how much a graph's view classes collapse and decide whether deterministic
election is ruled out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.labeled_graph import LabeledGraph
from repro.views.refinement import refinement_indices


@dataclass(frozen=True)
class ViewClassProfile:
    """How the nodes of a graph fall into view-equivalence classes."""

    num_nodes: int
    num_classes: int
    class_sizes: tuple[int, ...]

    @property
    def is_view_symmetric(self) -> bool:
        """All nodes share one view — the maximally anonymous case."""
        return self.num_classes == 1

    @property
    def collapse_ratio(self) -> float:
        """``1 - num_classes / num_nodes``; 0 for prime graphs."""
        return 1.0 - self.num_classes / self.num_nodes


def view_class_profile(graph: LabeledGraph) -> ViewClassProfile:
    """The view-class profile of a labeled graph."""
    _, colors = refinement_indices(graph)
    sizes = [0] * (max(colors) + 1)
    for c in colors:
        sizes[c] += 1
    return ViewClassProfile(
        num_nodes=graph.num_nodes,
        num_classes=len(sizes),
        class_sizes=tuple(sorted(sizes, reverse=True)),
    )


def election_is_deterministically_impossible(graph: LabeledGraph) -> bool:
    """Whether deterministic anonymous leader election is impossible on
    this labeled graph.

    A deterministic anonymous algorithm's output is a function of the
    node's infinite view, so it is constant on view classes; a class of
    size ``>= 2`` therefore can never contain exactly one leader.  (The
    converse — solvability when all classes are singletons — also holds:
    output "leader" iff one's view is the minimal one.)
    """
    profile = view_class_profile(graph)
    return profile.num_classes < profile.num_nodes
