"""Resilience probing: classify faulty runs, find the breaking point.

The paper's guarantees are all-or-nothing — a Las-Vegas run either
decides every node with a valid output or it doesn't.  Under fault
injection there are four distinguishable outcomes, and
:func:`probe` maps one faulty execution to exactly one of them:

* ``"ok"`` — every node decided and the validator accepted the output;
* ``"invalid"`` — every node decided but the output violates the
  problem (the silent failure mode: the network *thinks* it succeeded);
* ``"undecided"`` — the round budget ran out with nodes still open
  (livelock/stall);
* ``"error"`` — the execution raised (an algorithm invariant tripped
  over a lost or corrupted message — the loud failure mode).

:func:`first_break` reports the smallest fault intensity at which a
sweep stops being ``"ok"`` — the number the ``resilience`` experiment
family tabulates per graph family.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

from repro.faults.harness import execute_with_faults
from repro.faults.plan import FaultPlan
from repro.graphs.labeled_graph import LabeledGraph, Node

Validator = Callable[[LabeledGraph, dict[Node, Any]], bool]


@dataclass(frozen=True)
class ResilienceOutcome:
    """The classified result of one faulty execution."""

    status: str  # "ok" | "invalid" | "undecided" | "error"
    rounds: int
    faults_injected: int
    fault_counts: tuple[tuple[str, int], ...]
    error: str | None = None
    outputs: dict[Node, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def probe(
    algorithm: Any,
    graph: LabeledGraph,
    plan: FaultPlan,
    validator: Validator,
    **execute_kwargs: Any,
) -> ResilienceOutcome:
    """Run one faulty execution and classify it.

    Catches *any* exception the run raises — under aggressive plans
    algorithms legitimately trip internal invariants (``AssertionError``,
    ``KeyError``, ...), and that is data, not a harness failure.  The
    outcome is deterministic: same algorithm, graph, plan and keywords
    produce the same classification, byte for byte.
    """
    try:
        faulted = execute_with_faults(algorithm, graph, plan, **execute_kwargs)
    except Exception as exc:
        return ResilienceOutcome(
            status="error",
            rounds=0,
            faults_injected=0,
            fault_counts=(),
            error=f"{type(exc).__name__}: {exc}",
        )
    result = faulted.result
    counts = tuple(sorted(faulted.fault_counts().items()))
    if not result.all_decided:
        status = "undecided"
    elif validator(graph, dict(result.outputs)):
        status = "ok"
    else:
        status = "invalid"
    return ResilienceOutcome(
        status=status,
        rounds=result.rounds,
        faults_injected=faulted.faults_injected,
        fault_counts=counts,
        outputs=dict(result.outputs),
    )


def first_break(
    intensities: Sequence[float],
    outcomes: Sequence[ResilienceOutcome],
) -> float | None:
    """The smallest intensity whose outcome is not ``"ok"`` (``None`` if
    the whole sweep survived).  ``intensities`` and ``outcomes`` are
    parallel, in increasing-intensity order."""
    if len(intensities) != len(outcomes):
        raise ValueError(
            f"{len(intensities)} intensities vs {len(outcomes)} outcomes"
        )
    for intensity, outcome in zip(intensities, outcomes):
        if not outcome.ok:
            return intensity
    return None


def independence_preserved(
    graph: LabeledGraph,
    outputs: dict[Node, Any],
    exclude: Sequence[Node] = (),
) -> bool:
    """No two adjacent non-excluded nodes both claim MIS membership.

    The *safety* half of MIS validity, restricted to survivors: crashed
    nodes keep a meaningless local state, so they (and edges into them)
    are excluded from the judgment.  Maximality is deliberately not
    checked — a crash legitimately stalls the nodes that were waiting
    on the crashed one, and that shows up as ``"undecided"`` instead.
    """
    excluded = set(exclude)
    for u, v in graph.edges():
        if u in excluded or v in excluded:
            continue
        if outputs.get(u) == 1 and outputs.get(v) == 1:
            return False
    return True


def two_hop_distinct_among(
    graph: LabeledGraph,
    outputs: dict[Node, Any],
    exclude: Sequence[Node] = (),
) -> bool:
    """2-hop coloring validity restricted to non-excluded, decided nodes:
    any two surviving decided nodes within distance 2 carry distinct
    colors."""
    excluded = set(exclude)
    for v in graph.nodes:
        if v in excluded or v not in outputs:
            continue
        ball = [
            u
            for u in graph.nodes_within(v, 2)
            if u != v and u not in excluded and u in outputs
        ]
        if any(outputs[u] == outputs[v] for u in ball):
            return False
    return True
