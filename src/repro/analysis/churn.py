"""Churn probing: classify executions run over a changing topology.

The dynamic twin of :mod:`repro.analysis.resilience`: one churned
execution maps to exactly one of the same four outcomes (``ok`` /
``invalid`` / ``undecided`` / ``error``), except that validity is
judged against the **final churned snapshot** — the guarantee under
test is whether the output the network committed to still holds on the
graph it ended up on, not the one it started from.

:func:`first_break` is shared with the resilience module (outcomes are
duck-compatible): the ``dynamic`` experiment family tabulates the
smallest churn rate at which 2-hop-coloring validity first fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.dynamic.context import apply_churn
from repro.dynamic.delta import ChurnPlan
from repro.dynamic.graph import DynamicGraph
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.runtime.engine import execute

Validator = Callable[[LabeledGraph, dict[Node, Any]], bool]


@dataclass(frozen=True)
class ChurnOutcome:
    """The classified result of one churned execution."""

    status: str  # "ok" | "invalid" | "undecided" | "error"
    rounds: int
    deltas_applied: int
    delta_counts: tuple[tuple[str, int], ...]
    error: str | None = None
    outputs: "dict[Node, Any] | None" = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def churn_probe(
    algorithm: Any,
    graph: LabeledGraph,
    plan: ChurnPlan,
    validator: Validator,
    **execute_kwargs: Any,
) -> ChurnOutcome:
    """Run one execution under ``plan`` and classify it.

    Catches *any* exception the run raises — under aggressive churn
    algorithms legitimately trip internal invariants (a node's degree
    changes under it mid-round), and that is data, not a harness
    failure.  The outcome is deterministic: same algorithm, graph, plan
    and keywords produce the same classification, byte for byte.
    """
    with apply_churn(plan) as churn:
        try:
            result = execute(algorithm, graph, **execute_kwargs)
        except Exception as exc:
            return ChurnOutcome(
                status="error",
                rounds=0,
                deltas_applied=churn.deltas_applied,
                delta_counts=(),
                error=f"{type(exc).__name__}: {exc}",
            )
    log = churn.last_execution_log or ()
    final = DynamicGraph(graph).apply(log).graph if log else graph
    counts: dict[str, int] = {}
    for delta in log:
        counts[delta.op] = counts.get(delta.op, 0) + 1
    outputs = dict(result.outputs)
    if not result.all_decided:
        status = "undecided"
    elif validator(final, outputs):
        status = "ok"
    else:
        status = "invalid"
    return ChurnOutcome(
        status=status,
        rounds=result.rounds,
        deltas_applied=len(log),
        delta_counts=tuple(sorted(counts.items())),
        outputs=outputs,
    )
