"""Sweep helpers shared by the benchmark/experiment scripts.

The benchmark suite reports its results as plain-text tables (this
reproduction's analogue of the paper's figures); :func:`format_table`
renders aligned columns and :func:`standard_families` yields the graph
families every sweep covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
    torus_graph,
    with_uniform_input,
)
from repro.graphs.labeled_graph import LabeledGraph


@dataclass
class SweepRow:
    """One row of an experiment table: a label plus named values."""

    label: str
    values: Dict[str, Any]


def standard_families(
    sizes: Sequence[int] = (4, 6, 8, 12),
    include_random: bool = True,
    seed: int = 7,
) -> Iterator[Tuple[str, LabeledGraph]]:
    """Yield ``(name, graph)`` pairs covering the standard sweep families,
    each with a uniform well-formed input layer attached."""
    for n in sizes:
        if n >= 3:
            yield f"cycle-{n}", with_uniform_input(cycle_graph(n))
        yield f"path-{n}", with_uniform_input(path_graph(n))
        yield f"complete-{n}", with_uniform_input(complete_graph(n))
        yield f"star-{n}", with_uniform_input(star_graph(n - 1))
    yield "hypercube-3", with_uniform_input(hypercube_graph(3))
    yield "torus-3x3", with_uniform_input(torus_graph(3, 3))
    yield "petersen", with_uniform_input(petersen_graph())
    if include_random:
        for n in sizes:
            yield (
                f"random-{n}",
                with_uniform_input(random_connected_graph(n, 0.3, seed=seed + n)),
            )


def format_table(
    title: str, columns: Sequence[str], rows: Iterable[SweepRow]
) -> str:
    """Render a titled, aligned plain-text table."""
    materialized = list(rows)
    header = ["case"] + list(columns)
    cells = [header]
    for row in materialized:
        cells.append(
            [row.label] + [_fmt(row.values.get(col, "")) for col in columns]
        )
    widths = [max(len(line[i]) for line in cells) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for index, line in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def table_to_csv(columns: Sequence[str], rows: Iterable[SweepRow]) -> str:
    """The same table as CSV text (``case`` first), for plotting tools."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["case"] + list(columns))
    for row in rows:
        writer.writerow([row.label] + [_fmt(row.values.get(col, "")) for col in columns])
    return buffer.getvalue()
