"""Sweep helpers shared by the benchmark/experiment scripts.

The benchmark suite reports its results as plain-text tables (this
reproduction's analogue of the paper's figures); :func:`format_table`
renders aligned columns and :func:`standard_families` yields the graph
families every sweep covers.

For the parallel experiment engine the same sweep is available as
*specs*: :class:`FamilySpec` is a small picklable recipe (builder name
plus arguments) that a worker process can realize locally with
:meth:`FamilySpec.build`, so fan-out ships a few bytes per task instead
of a pickled graph.  :func:`standard_families` is defined in terms of
:func:`standard_family_specs`, keeping the two views of the sweep
bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
    torus_graph,
    with_uniform_input,
)
from repro.graphs.labeled_graph import LabeledGraph


@dataclass
class SweepRow:
    """One row of an experiment table: a label plus named values."""

    label: str
    values: dict[str, Any]


_FAMILY_BUILDERS: dict[str, Callable[..., LabeledGraph]] = {
    "cycle": cycle_graph,
    "path": path_graph,
    "complete": complete_graph,
    "star": star_graph,
    "hypercube": hypercube_graph,
    "torus": torus_graph,
    "petersen": petersen_graph,
    "random_connected": random_connected_graph,
}


@dataclass(frozen=True)
class FamilySpec:
    """A picklable recipe for one sweep instance.

    ``builder`` names an entry of the builder table (not a function
    object, so the spec pickles by value and realizes identically in
    any worker process); ``args`` are its positional arguments —
    including the seed for randomized families, so realization is
    deterministic everywhere.  ``size`` is the node count, used for
    per-task seed derivation and scheduling.
    """

    name: str
    builder: str
    args: tuple[Any, ...] = field(default=())
    size: int = 0

    def build(self) -> LabeledGraph:
        """Realize the graph, with the uniform well-formed input layer."""
        if self.builder not in _FAMILY_BUILDERS:
            raise KeyError(
                f"unknown family builder {self.builder!r}; "
                f"known: {sorted(_FAMILY_BUILDERS)!r}"
            )
        return with_uniform_input(_FAMILY_BUILDERS[self.builder](*self.args))


def spec_to_dict(spec: FamilySpec) -> dict[str, Any]:
    """A JSON-able projection of a spec (the fabric's task-spec form).

    ``args`` becomes a list (JSON has no tuples); the projection is
    canonical — two equal specs always serialize identically.
    """
    return {
        "name": spec.name,
        "builder": spec.builder,
        "args": list(spec.args),
        "size": spec.size,
    }


def spec_from_dict(payload: dict[str, Any]) -> FamilySpec:
    """Rebuild a :class:`FamilySpec` from :func:`spec_to_dict` output."""
    return FamilySpec(
        name=payload["name"],
        builder=payload["builder"],
        args=tuple(payload["args"]),
        size=payload["size"],
    )


def standard_family_specs(
    sizes: Sequence[int] = (4, 6, 8, 12),
    include_random: bool = True,
    seed: int = 7,
) -> list[FamilySpec]:
    """The standard sweep as picklable specs, in sweep order."""
    specs: list[FamilySpec] = []
    for n in sizes:
        if n >= 3:
            specs.append(FamilySpec(f"cycle-{n}", "cycle", (n,), n))
        specs.append(FamilySpec(f"path-{n}", "path", (n,), n))
        specs.append(FamilySpec(f"complete-{n}", "complete", (n,), n))
        specs.append(FamilySpec(f"star-{n}", "star", (n - 1,), n))
    specs.append(FamilySpec("hypercube-3", "hypercube", (3,), 8))
    specs.append(FamilySpec("torus-3x3", "torus", (3, 3), 9))
    specs.append(FamilySpec("petersen", "petersen", (), 10))
    if include_random:
        for n in sizes:
            specs.append(
                FamilySpec(f"random-{n}", "random_connected", (n, 0.3, seed + n), n)
            )
    return specs


def standard_families(
    sizes: Sequence[int] = (4, 6, 8, 12),
    include_random: bool = True,
    seed: int = 7,
) -> Iterator[tuple[str, LabeledGraph]]:
    """Yield ``(name, graph)`` pairs covering the standard sweep families,
    each with a uniform well-formed input layer attached."""
    for spec in standard_family_specs(sizes, include_random, seed):
        yield spec.name, spec.build()


def format_table(
    title: str, columns: Sequence[str], rows: Iterable[SweepRow]
) -> str:
    """Render a titled, aligned plain-text table."""
    materialized = list(rows)
    header = ["case"] + list(columns)
    cells = [header]
    for row in materialized:
        cells.append(
            [row.label] + [_fmt(row.values.get(col, "")) for col in columns]
        )
    widths = [max(len(line[i]) for line in cells) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for index, line in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def table_to_csv(columns: Sequence[str], rows: Iterable[SweepRow]) -> str:
    """The same table as CSV text (``case`` first), for plotting tools."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["case"] + list(columns))
    for row in rows:
        writer.writerow([row.label] + [_fmt(row.values.get(col, "")) for col in columns])
    return buffer.getvalue()
