"""Human-readable rendering of executions and traces.

Round-by-round tables of an execution's messages, bits and outputs —
for debugging algorithms, for teaching, and for the examples.  Message
payloads are abbreviated so tables stay scannable.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.labeled_graph import _sort_key
from repro.runtime.trace import ExecutionTrace


def _abbreviate(value: Any, width: int = 18) -> str:
    text = repr(value)
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


def render_trace(trace: ExecutionTrace, max_rounds: int | None = None) -> str:
    """A table with one row per (round, node): message sent, bits drawn,
    and the output if it became set that round."""
    lines: list[str] = [f"execution of {trace.algorithm_name!r}"]
    rounds = trace.rounds if max_rounds is None else trace.rounds[:max_rounds]
    if not rounds:
        lines.append("(no rounds executed)")
        return "\n".join(lines)
    nodes = sorted({v for record in rounds for v in record.sent}, key=_sort_key)
    node_width = max(4, max(len(repr(v)) for v in nodes))
    header = f"{'round':>5}  {'node':<{node_width}}  {'bits':<4}  {'sent':<20}  output"
    lines.append(header)
    lines.append("-" * len(header))
    for record in rounds:
        for v in nodes:
            if v not in record.sent:
                continue
            output = (
                _abbreviate(record.new_outputs[v])
                if v in record.new_outputs
                else ""
            )
            lines.append(
                f"{record.round_number:>5}  {repr(v):<{node_width}}  "
                f"{record.bits.get(v, ''):<4}  "
                f"{_abbreviate(record.sent[v], 20):<20}  {output}"
            )
    if max_rounds is not None and len(trace.rounds) > max_rounds:
        lines.append(f"... ({len(trace.rounds) - max_rounds} more rounds)")
    return "\n".join(lines)


def render_output_timeline(trace: ExecutionTrace) -> str:
    """One line per node: the round its irrevocable output was set."""
    decided = []
    for record in trace.rounds:
        for v, value in record.new_outputs.items():
            decided.append((record.round_number, v, value))
    if not decided:
        return "(no outputs set)"
    lines = ["output timeline:"]
    for round_number, v, value in sorted(
        decided, key=lambda item: (item[0], _sort_key(item[1]))
    ):
        lines.append(f"  round {round_number:>3}: node {v!r} -> {_abbreviate(value, 40)}")
    return "\n".join(lines)
