"""The k-hop coloring boundary: k = 2 is in GRAN, k > 2 is not.

Section 1.2 notes that the 2-hop variant of coloring is solvable by
randomized anonymous algorithms while every k-hop variant with ``k > 2``
is not.  The obstruction is the lifting lemma: take a factor pair such
as the uniform ``C3 ⪯ C6``; any Las-Vegas algorithm must succeed on the
factor ``C3``, its successful execution lifts to ``C6`` with positive
probability, and in the lifted execution antipodal nodes (distance 3)
output the *same* color — violating 3-hop validity.  Crucially, the
2-hop constraint survives lifting (fibers of a simple-quotient cover are
never within 2 hops of themselves... they are at distance >= 3), which
is exactly why the boundary sits at ``k = 2``.

:func:`lifted_khop_violation` performs the construction for a concrete
algorithm and reports at which ``k`` the lifted output breaks, letting
the experiment sweep exhibit the boundary empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import lift_assignment
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.coloring import is_k_hop_coloring
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute


@dataclass(frozen=True)
class KHopViolation:
    """Outcome of lifting a coloring execution from a factor to a product.

    ``valid_up_to`` is the largest ``k`` for which the lifted output is a
    valid k-hop coloring of the product (0 if even 1-hop fails, which the
    lifting lemma forbids for a correct algorithm).
    """

    factor_nodes: int
    product_nodes: int
    valid_up_to: int

    def violates(self, k: int) -> bool:
        return self.valid_up_to < k


def uniform_cycle_cover(factor_size: int, multiplier: int) -> FactorizingMap:
    """The uniform cycle cover ``C_factor ⪯ C_{factor*multiplier}`` with
    the modular projection — the canonical lifting-lemma obstruction."""
    factor = with_uniform_input(cycle_graph(factor_size))
    product = with_uniform_input(cycle_graph(factor_size * multiplier))
    mapping = {v: v % factor_size for v in product.nodes}
    return FactorizingMap(product, factor, mapping)


def lifted_khop_violation(
    covering: FactorizingMap,
    algorithm: AnonymousAlgorithm | None = None,
    seed: int = 0,
    max_k: int = 6,
) -> KHopViolation:
    """Run a coloring algorithm on the factor, lift the execution to the
    product, and measure up to which ``k`` the lifted coloring is valid.

    For the 2-hop coloring algorithm on a cycle cover with fibers at
    distance ``>= 3``, the lifted output stays a valid 2-hop coloring of
    the product but collides at distance equal to the factor's size —
    demonstrating why no Las-Vegas anonymous algorithm can promise k-hop
    coloring for ``k > 2``.
    """
    if algorithm is None:
        algorithm = TwoHopColoringAlgorithm()
    factor_run = execute(algorithm, covering.factor, seed=seed, require_decided=True)
    lifted = lift_assignment(factor_run.trace.assignment(), covering)
    product_result = execute(algorithm, covering.product, assignment=lifted)
    if not product_result.successful:
        raise AssertionError(
            "lifted simulation was unsuccessful; the lifting lemma is broken"
        )
    outputs: dict = product_result.outputs
    valid_up_to = 0
    for k in range(1, max_k + 1):
        if is_k_hop_coloring(covering.product, outputs, k):
            valid_up_to = k
        else:
            break
    return KHopViolation(
        factor_nodes=covering.factor.num_nodes,
        product_nodes=covering.product.num_nodes,
        valid_up_to=valid_up_to,
    )
