"""Run statistics for experiment tables.

:class:`RunStats` condenses one execution into the numbers our
experiment tables report: rounds, random bits consumed, and message
volume.  :func:`aggregate` summarizes repetitions (mean / min / max).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.scheduler import ExecutionResult


@dataclass(frozen=True)
class RunStats:
    """Cost summary of one execution.

    ``max_message_chars`` approximates the model's message-size notion
    (the paper demands finite messages per round) by the largest
    serialized payload observed; 0 when no trace was recorded.
    """

    rounds: int
    total_bits: int
    total_messages: int
    max_message_chars: int
    decided: bool

    @staticmethod
    def of(graph: LabeledGraph, result: ExecutionResult, bits_per_round: int) -> "RunStats":
        messages = 0
        max_chars = 0
        if result.trace is not None:
            messages = sum(len(record.sent) for record in result.trace.rounds)
            for record in result.trace.rounds:
                for payload in record.sent.values():
                    max_chars = max(max_chars, len(repr(payload)))
        else:
            messages = result.rounds * graph.num_nodes
        return RunStats(
            rounds=result.rounds,
            total_bits=result.rounds * graph.num_nodes * bits_per_round,
            total_messages=messages,
            max_message_chars=max_chars,
            decided=result.all_decided,
        )


@dataclass(frozen=True)
class Aggregate:
    """Mean / min / max over repeated runs."""

    mean_rounds: float
    min_rounds: int
    max_rounds: int
    mean_bits: float
    runs: int

    def __str__(self) -> str:
        return (
            f"rounds {self.mean_rounds:.1f} [{self.min_rounds}, {self.max_rounds}] "
            f"bits {self.mean_bits:.1f} over {self.runs} runs"
        )


def collect_run_stats(
    graph: LabeledGraph, results: Iterable[ExecutionResult], bits_per_round: int
) -> list[RunStats]:
    return [RunStats.of(graph, result, bits_per_round) for result in results]


def aggregate(stats: Iterable[RunStats]) -> Aggregate:
    items = list(stats)
    if not items:
        raise ValueError("aggregate needs at least one run")
    rounds = [s.rounds for s in items]
    bits = [s.total_bits for s in items]
    return Aggregate(
        mean_rounds=sum(rounds) / len(rounds),
        min_rounds=min(rounds),
        max_rounds=max(rounds),
        mean_bits=sum(bits) / len(bits),
        runs=len(items),
    )


def round_distribution(
    rounds: Iterable[int],
) -> dict[str, float]:
    """Percentile summary of round counts across repeated runs."""
    values = sorted(rounds)
    if not values:
        raise ValueError("round_distribution needs at least one run")

    def percentile(q: float) -> float:
        if len(values) == 1:
            return float(values[0])
        position = q * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] * (1 - fraction) + values[high] * fraction

    return {
        "min": float(values[0]),
        "p50": percentile(0.5),
        "p90": percentile(0.9),
        "max": float(values[-1]),
        "mean": sum(values) / len(values),
    }
