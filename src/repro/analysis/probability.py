"""Empirical success-probability curves for bit assignments.

The cost of every search in :mod:`repro.core.assignment_search` is
governed by one quantity: the probability ``p_t`` that a *uniformly
random* assignment of length ``t`` induces a successful simulation.
The lexicographic search expects ``~1/p_t`` trials at the first feasible
``t`` (where ``p_t`` may be astronomically small); the PRG order expects
``~1/p_t`` at a *comfortable* ``t`` (where ``p_t`` is near 1).  This
module measures the curve so the ablation experiments can explain the
orders-of-magnitude gap rather than just exhibit it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute


@dataclass(frozen=True)
class SuccessCurve:
    """Measured success probabilities by assignment length.

    ``points`` maps ``t`` to the fraction of sampled random assignments
    of length ``t`` whose induced simulation succeeds.
    """

    algorithm_name: str
    graph_nodes: int
    samples_per_length: int
    points: tuple[tuple[int, float], ...]

    def probability_at(self, t: int) -> float:
        for length, probability in self.points:
            if length == t:
                return probability
        raise KeyError(f"length {t} not measured; have {[p[0] for p in self.points]}")

    @property
    def first_feasible_length(self) -> int:
        """The smallest measured ``t`` with a nonzero success rate."""
        for length, probability in self.points:
            if probability > 0:
                return length
        return -1

    def expected_trials(self, t: int) -> float:
        """``1 / p_t`` (``inf`` when no sampled assignment succeeded)."""
        probability = self.probability_at(t)
        return float("inf") if probability == 0 else 1.0 / probability


def measure_success_curve(
    algorithm: AnonymousAlgorithm,
    graph: LabeledGraph,
    lengths: Sequence[int],
    samples_per_length: int = 200,
    seed: int = 0,
) -> SuccessCurve:
    """Sample random assignments per length and measure success rates."""
    rng = random.Random(seed)
    points: list[tuple[int, float]] = []
    for t in lengths:
        successes = 0
        for _ in range(samples_per_length):
            assignment = {
                v: "".join(str(rng.getrandbits(1)) for _ in range(t))
                for v in graph.nodes
            }
            if execute(algorithm, graph, assignment=assignment).successful:
                successes += 1
        points.append((t, successes / samples_per_length))
    return SuccessCurve(
        algorithm_name=algorithm.name,
        graph_nodes=graph.num_nodes,
        samples_per_length=samples_per_length,
        points=tuple(points),
    )
