"""The universal cover ``U(G)`` (paper Section 1.3).

The paper relates ``U(G)`` to local views: the (un-rooted) universal
cover is obtained from ``L_∞(v)`` by pruning, at every non-root vertex,
the child corresponding to that vertex's parent — i.e. ``U(G)`` is the
tree of *non-backtracking* walks, whereas ``L_d`` is the tree of all
walks.  We expose finite balls of ``U(G)`` and the pruning operation
itself; tests confirm the stated relationship
``prune(L_d(v)) = ball(G, v, d - 1)``.
"""

from __future__ import annotations


from repro.exceptions import ViewError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views.view_tree import ViewTree


def universal_cover_ball(graph: LabeledGraph, base: Node, radius: int) -> ViewTree:
    """The radius-``radius`` ball of ``U(G)`` around a lift of ``base``,
    as a rooted marked tree (vertices = non-backtracking walks from
    ``base`` of length at most ``radius``)."""
    if not graph.has_node(base):
        raise ViewError(f"unknown node {base!r}")
    if radius < 0:
        raise ViewError(f"radius must be nonnegative, got {radius}")
    return _ball(graph, base, parent=None, remaining=radius)


def _ball(
    graph: LabeledGraph, node: Node, parent: Node | None, remaining: int
) -> ViewTree:
    if remaining == 0:
        return ViewTree.leaf(graph.label(node))
    children = [
        _ball(graph, neighbor, parent=node, remaining=remaining - 1)
        for neighbor in graph.neighbors(node)
        if neighbor != parent
    ]
    return ViewTree.make(graph.label(node), children)


def view_to_cover_ball(view_tree: ViewTree) -> ViewTree:
    """Prune a local view ``L_d(v)`` into the universal-cover ball of
    radius ``d - 1``.

    In a view, the children of a vertex representing node ``u`` reached
    from parent node ``w`` are the views ``L_{k-1}`` of *all* of ``u``'s
    neighbors — including ``w`` itself.  The child corresponding to the
    parent is therefore exactly the parent's own view truncated one level
    below the child depth, which the recursion carries along and removes.
    If two children tie structurally, removing either yields the same
    canonical tree, so the choice is immaterial.
    """
    return _prune(view_tree, back=None)


def _prune(tree: ViewTree, back: ViewTree | None) -> ViewTree:
    children = list(tree.children)
    if back is not None:
        for i, child in enumerate(children):
            if child is back:
                del children[i]
                break
        else:
            raise ViewError(
                "view tree has no child matching its parent; "
                "input is not a local view of a graph"
            )
    pruned = []
    for child in children:
        if child.depth == 1:
            pruned.append(child)
        else:
            pruned.append(_prune(child, back=tree.truncate(child.depth - 1)))
    return ViewTree.make(tree.mark, pruned)
