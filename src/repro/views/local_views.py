"""Computing the local views ``L_d(v, G)`` of the paper's Section 1.1.

The construction is the paper's inductive definition: ``L_1(v)`` is a
single vertex marked ``l(v)``; ``L_{d+1}(v)`` connects the root of
``L_d(u)`` as a child of a fresh ``l(v)``-marked root for every neighbor
``u``.  Views are built bottom-up across the whole graph so the interning
in :mod:`repro.views.view_tree` shares every repeated subtree — a single
``all_views(G, d)`` call allocates ``O(n · d)`` tree objects.

Deepening is *incremental*: a :class:`ViewBuilder` caches the per-depth
frontier maps for a graph, so ``all_views(g, d + 1)`` extends the cached
depth-``d`` result with one more round instead of recomputing ``d``
rounds from scratch.  Builders also watch the view partition: once two
consecutive depths induce the same partition it is stable forever
(Norris's theorem territory — the same early-exit criterion color
refinement uses), and every deeper level is built with one
``ViewTree.make`` per *class* instead of per node; nodes in one stable
class provably share their view at every depth, so the produced trees
are identical to the per-node construction.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ViewError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views import view_tree
from repro.views.view_tree import ViewTree


class ViewBuilder:
    """Incrementally deepening view construction for one graph.

    ``builder.views(d)`` returns ``{v: L_d(v)}``; successive calls with
    growing depth reuse all previously built levels.  Use
    :func:`all_views` for the module-level cached entry point.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self._levels: list[dict[Node, ViewTree]] = []
        self._counts: list[int] = []
        # Labels and their interned mark ids never change across levels;
        # resolve them once and use the pre-ranked intern fast path.
        self._marks: dict[Node, object] = {v: graph.label(v) for v in graph.nodes}
        self._mark_ids: dict[Node, int] = {
            v: view_tree._mark_id_of(mark) for v, mark in self._marks.items()
        }
        # Once the partition is stable: members and a representative per
        # class, in a fixed order, for per-class level extension.
        self._class_members: list[list[Node]] | None = None
        self._class_reps: list[Node] | None = None

    # -- construction ---------------------------------------------------

    def _extend(self) -> None:
        graph = self.graph
        marks, mark_ids = self._marks, self._mark_ids
        make = view_tree._make_ranked
        if not self._levels:
            level = {v: make(marks[v], mark_ids[v], ()) for v in graph.nodes}
            self._levels.append(level)
            self._counts.append(len({id(t) for t in level.values()}))
            return
        prev = self._levels[-1]
        if self._class_reps is not None:
            # Stable partition: one make() per class; every member of a
            # class has the same view at every depth (class signatures no
            # longer split), so assigning the representative's tree to
            # all members reproduces the per-node result exactly.
            level = {}
            for rep, members in zip(self._class_reps, self._class_members):
                tree = make(
                    marks[rep], mark_ids[rep], [prev[u] for u in graph.neighbors(rep)]
                )
                for v in members:
                    level[v] = tree
            self._levels.append(level)
            self._counts.append(self._counts[-1])
            return
        level = {
            v: make(marks[v], mark_ids[v], [prev[u] for u in graph.neighbors(v)])
            for v in graph.nodes
        }
        count = len({id(t) for t in level.values()})
        self._levels.append(level)
        self._counts.append(count)
        if count == self._counts[-2]:
            # The new level split nothing: the view partition is stable
            # (deepening only refines), so freeze the classes.
            groups: dict[int, list[Node]] = {}
            for v in graph.nodes:
                groups.setdefault(id(level[v]), []).append(v)
            # groups is keyed by first occurrence along graph.nodes (a
            # deterministic tuple), so .values() order is the canonical
            # class enumeration order — sorting would change the
            # class-index contract all_views clients rely on.
            self._class_members = list(groups.values())  # repro-lint: disable=DET002
            self._class_reps = [members[0] for members in self._class_members]

    def _ensure(self, depth: int) -> None:
        if depth < 1:
            raise ViewError(f"view depth must be at least 1, got {depth}")
        while len(self._levels) < depth:
            self._extend()

    # -- queries --------------------------------------------------------

    def views(self, depth: int) -> dict[Node, ViewTree]:
        """The views ``L_depth(v)`` for every node (a fresh dict)."""
        self._ensure(depth)
        return dict(self._levels[depth - 1])

    def stable_depth(self) -> int:
        """The smallest depth whose view partition equals the ``L_∞``
        partition (the Norris depth; at most ``n``)."""
        depth = 1
        while True:
            self._ensure(depth + 1)
            if self._counts[depth] == self._counts[depth - 1]:
                return depth
            depth += 1

    def partition(self, depth: int) -> list[tuple[Node, ...]]:
        """Nodes grouped by equal depth-``depth`` views, groups ordered by
        the structural view order of their representative trees."""
        views = self.views(depth)
        groups: dict[int, list[Node]] = {}
        representative: dict[int, ViewTree] = {}
        for v in self.graph.nodes:
            tree = views[v]
            groups.setdefault(id(tree), []).append(v)
            representative[id(tree)] = tree
        ordered = sorted(groups, key=lambda key: representative[key].sort_key())
        return [tuple(groups[key]) for key in ordered]


# Builder registry: a small LRU keyed by graph identity.  Entries pin
# their graph (so ids stay valid) and are evicted oldest-first; the
# registry is emptied by ``repro.views.view_tree.clear_caches`` because
# cached levels hold interned trees.
_BUILDERS: "OrderedDict[int, tuple[LabeledGraph, ViewBuilder]]" = OrderedDict()
_BUILDER_CACHE_SIZE = 8

view_tree.register_cache_clearer(_BUILDERS.clear)


def view_builder(graph: LabeledGraph) -> ViewBuilder:
    """The cached :class:`ViewBuilder` for ``graph`` (creating it on first
    use).  Repeated ``all_views`` calls on the same graph share it."""
    key = id(graph)
    entry = _BUILDERS.get(key)
    if entry is not None:
        _BUILDERS.move_to_end(key)
        return entry[1]
    builder = ViewBuilder(graph)
    _BUILDERS[key] = (graph, builder)
    if len(_BUILDERS) > _BUILDER_CACHE_SIZE:
        _BUILDERS.popitem(last=False)
    return builder


def all_views(graph: LabeledGraph, depth: int) -> dict[Node, ViewTree]:
    """The views ``L_depth(v, graph)`` for every node ``v``."""
    return view_builder(graph).views(depth)


def view(graph: LabeledGraph, v: Node, depth: int) -> ViewTree:
    """The view ``L_depth(v, graph)`` of a single node."""
    if not graph.has_node(v):
        raise ViewError(f"unknown node {v!r}")
    return all_views(graph, depth)[v]


def view_partition(graph: LabeledGraph, depth: int) -> list[tuple[Node, ...]]:
    """Nodes grouped by equal depth-``depth`` views, each group sorted,
    groups ordered by the view order.

    At ``depth = n`` (the node count) this is the ``L_∞`` partition by
    Norris's theorem — the fibers of the infinite view map ``f_∞``.
    """
    return view_builder(graph).partition(depth)
