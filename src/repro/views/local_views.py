"""Computing the local views ``L_d(v, G)`` of the paper's Section 1.1.

The construction is the paper's inductive definition: ``L_1(v)`` is a
single vertex marked ``l(v)``; ``L_{d+1}(v)`` connects the root of
``L_d(u)`` as a child of a fresh ``l(v)``-marked root for every neighbor
``u``.  Views are built bottom-up across the whole graph so the interning
in :mod:`repro.views.view_tree` shares every repeated subtree — a single
``all_views(G, d)`` call allocates ``O(n · d)`` tree objects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import ViewError
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views.view_tree import ViewTree


def all_views(graph: LabeledGraph, depth: int) -> Dict[Node, ViewTree]:
    """The views ``L_depth(v, graph)`` for every node ``v``."""
    if depth < 1:
        raise ViewError(f"view depth must be at least 1, got {depth}")
    current: Dict[Node, ViewTree] = {
        v: ViewTree.leaf(graph.label(v)) for v in graph.nodes
    }
    for _ in range(depth - 1):
        current = {
            v: ViewTree.make(graph.label(v), [current[u] for u in graph.neighbors(v)])
            for v in graph.nodes
        }
    return current


def view(graph: LabeledGraph, v: Node, depth: int) -> ViewTree:
    """The view ``L_depth(v, graph)`` of a single node."""
    if not graph.has_node(v):
        raise ViewError(f"unknown node {v!r}")
    return all_views(graph, depth)[v]


def view_partition(graph: LabeledGraph, depth: int) -> List[Tuple[Node, ...]]:
    """Nodes grouped by equal depth-``depth`` views, each group sorted,
    groups ordered by the view order.

    At ``depth = n`` (the node count) this is the ``L_∞`` partition by
    Norris's theorem — the fibers of the infinite view map ``f_∞``.
    """
    views = all_views(graph, depth)
    groups: Dict[int, List[Node]] = {}
    representative: Dict[int, ViewTree] = {}
    for v in graph.nodes:
        tree = views[v]
        groups.setdefault(id(tree), []).append(v)
        representative[id(tree)] = tree
    ordered = sorted(groups, key=lambda key: representative[key].sort_key())
    return [tuple(groups[key]) for key in ordered]
