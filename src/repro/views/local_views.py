"""Computing the local views ``L_d(v, G)`` of the paper's Section 1.1.

The construction is the paper's inductive definition: ``L_1(v)`` is a
single vertex marked ``l(v)``; ``L_{d+1}(v)`` connects the root of
``L_d(u)`` as a child of a fresh ``l(v)``-marked root for every neighbor
``u``.  Views are built bottom-up across the whole graph so the interning
in :mod:`repro.views.view_tree` shares every repeated subtree — a single
``all_views(G, d)`` call allocates ``O(n · d)`` tree objects.

Construction is *per class*, on the graph's CSR mirror: a level stores
one interned tree per view class plus a flat int list assigning each
node its class, and deepening advances the class partition with one
:func:`repro.graphs.csr.refine_step` round — the refinement/view
equivalence (depth ``d + 1`` view classes are exactly the classes after
``d`` refinement rounds) guarantees every member of a class has the same
view at every depth, so one ``ViewTree.make`` per class (with the
lowest-index member as representative) reproduces the per-node
construction exactly, interned trees, mark objects and all.

Deepening is *incremental*: a :class:`ViewBuilder` caches the per-depth
levels for a graph, so ``all_views(g, d + 1)`` extends the cached
depth-``d`` result with one more round instead of recomputing ``d``
rounds from scratch.  Builders also watch the partition: once a round
splits nothing it is stable forever (Norris's theorem territory — the
same early-exit criterion color refinement uses), and every deeper level
skips the refinement round entirely.
"""

from __future__ import annotations

from repro.artifacts.specs import views_spec
from repro.artifacts.store import memory_bucket, note_artifact
from repro.exceptions import ViewError
from repro.graphs.csr import csr_of, refine_step
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.views import view_tree
from repro.views.view_tree import ViewTree


class ViewBuilder:
    """Incrementally deepening view construction for one graph.

    ``builder.views(d)`` returns ``{v: L_d(v)}``; successive calls with
    growing depth reuse all previously built levels.  Use
    :func:`all_views` for the module-level cached entry point.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self.graph = graph
        self._csr = csr_of(graph)
        # One level per depth: the class trees (indexed by class) and the
        # per-node class list.  Post-stability levels share the class
        # list object — classes never change again.
        self._levels: list[tuple[list[ViewTree], list[int]]] = []
        self._counts: list[int] = []
        # Marks and their interned mark ids never change across levels
        # and are constant on each seed label class; resolve them once
        # per distinct label and use the pre-ranked intern fast path.
        self._rank_marks = self._csr.label_values
        self._rank_mark_ids = [
            view_tree._mark_id_of(mark) for mark in self._rank_marks
        ]
        self._stable = False
        # Once stable, the class list stops changing, so the creation
        # order of class representatives is computed once and reused.
        self._rep_order: list[int] | None = None

    # -- construction ---------------------------------------------------

    def _class_level(
        self,
        colors: list[int],
        rep_order: list[int],
        prev: tuple[list[ViewTree], list[int]],
    ) -> list[ViewTree]:
        """Build the class trees of one level: one ``make`` per class,
        children read from the previous level through the CSR rows.

        ``rep_order`` visits classes in order of their lowest-index
        member — the order in which the historical per-node construction
        first created each tree — so intern-table insertion order (and
        with it every rank bookkeeping side effect) is unchanged.
        """
        adjacency = self._csr.adjacency
        label_ranks = self._csr.label_ranks
        rank_marks = self._rank_marks
        rank_mark_ids = self._rank_mark_ids
        prev_trees, prev_colors = prev
        make = view_tree._make_ranked
        trees: list[ViewTree] = [None] * len(rep_order)  # type: ignore[list-item]
        for rep in rep_order:
            rank = label_ranks[rep]
            trees[colors[rep]] = make(
                rank_marks[rank],
                rank_mark_ids[rank],
                [prev_trees[prev_colors[u]] for u in adjacency[rep]],
            )
        return trees

    @staticmethod
    def _first_member_order(colors: list[int], count: int) -> list[int]:
        """Lowest-index member per class, ascending — the creation order."""
        reps = [-1] * count
        for i in range(len(colors) - 1, -1, -1):
            reps[colors[i]] = i
        reps.sort()
        return reps

    def _extend(self) -> None:
        csr = self._csr
        if not self._levels:
            make = view_tree._make_ranked
            trees = [
                make(mark, mark_id, ())
                for mark, mark_id in zip(self._rank_marks, self._rank_mark_ids)
            ]
            self._levels.append((trees, list(csr.label_ranks)))
            self._counts.append(csr.num_labels)
            self._stable = csr.num_labels == csr.num_nodes
            return
        prev = self._levels[-1]
        prev_colors = prev[1]
        count = self._counts[-1]
        if self._stable:
            colors = prev_colors  # shared: the partition no longer moves
            rep_order = self._rep_order
            if rep_order is None:
                rep_order = self._rep_order = self._first_member_order(
                    colors, count
                )
        else:
            new_colors, new_count = refine_step(csr, prev_colors)
            if new_count == count:
                # The round split nothing: the partition is stable (and
                # the renumbering is the identity), so keep the old
                # class list and stop refining at deeper levels too.
                self._stable = True
                colors = prev_colors
            else:
                colors = new_colors
                count = new_count
                self._stable = new_count == csr.num_nodes
            rep_order = self._first_member_order(colors, count)
            if self._stable:
                self._rep_order = rep_order
        self._levels.append((self._class_level(colors, rep_order, prev), colors))
        self._counts.append(count)

    def _ensure(self, depth: int) -> None:
        if depth < 1:
            raise ViewError(f"view depth must be at least 1, got {depth}")
        while len(self._levels) < depth and not self._stable:
            self._extend()
        missing = depth - len(self._levels)
        if missing <= 0:
            return
        # Stable fast path: the class list is frozen, so the remaining
        # levels are a straight chain of one make-per-class rounds.
        # Building them in one loop with hoisted locals keeps the cost
        # per level at a few tree interns, nothing else.
        csr = self._csr
        levels, counts = self._levels, self._counts
        colors = levels[-1][1]
        count = counts[-1]
        rep_order = self._rep_order
        if rep_order is None:
            rep_order = self._rep_order = self._first_member_order(colors, count)
        make = view_tree._make_ranked
        label_ranks = csr.label_ranks
        rep_marks = [self._rank_marks[label_ranks[rep]] for rep in rep_order]
        rep_mark_ids = [self._rank_mark_ids[label_ranks[rep]] for rep in rep_order]
        rep_rows = [[colors[u] for u in csr.adjacency[rep]] for rep in rep_order]
        rep_classes = [colors[rep] for rep in rep_order]
        prev_trees = levels[-1][0]
        enumerated = list(zip(rep_classes, rep_marks, rep_mark_ids, rep_rows))
        for _ in range(missing):
            trees: list[ViewTree] = [None] * count  # type: ignore[list-item]
            for c, mark, mark_id, row in enumerated:
                trees[c] = make(mark, mark_id, [prev_trees[d] for d in row])
            levels.append((trees, colors))
            counts.append(count)
            prev_trees = trees

    # -- queries --------------------------------------------------------

    def views(self, depth: int) -> dict[Node, ViewTree]:
        """The views ``L_depth(v)`` for every node (a fresh dict)."""
        self._ensure(depth)
        trees, colors = self._levels[depth - 1]
        return dict(zip(self._csr.nodes, map(trees.__getitem__, colors)))

    def stable_depth(self) -> int:
        """The smallest depth whose view partition equals the ``L_∞``
        partition (the Norris depth; at most ``n``)."""
        depth = 1
        while True:
            self._ensure(depth + 1)
            if self._counts[depth] == self._counts[depth - 1]:
                return depth
            depth += 1

    def partition(self, depth: int) -> list[tuple[Node, ...]]:
        """Nodes grouped by equal depth-``depth`` views, groups ordered by
        the structural view order of their representative trees."""
        self._ensure(depth)
        trees, colors = self._levels[depth - 1]
        nodes = self._csr.nodes
        groups: list[list[Node]] = [[] for _ in trees]
        for i, c in enumerate(colors):
            groups[c].append(nodes[i])
        ordered = sorted(range(len(trees)), key=lambda c: trees[c].sort_key())
        return [tuple(groups[c]) for c in ordered]


# Builder registry: the "view-builder" bucket of the artifact store's
# memory tier, keyed by the graph itself (equality and hash are
# structural, so equal instances share a builder — their views are
# provably identical).  The bucket is emptied by
# ``repro.views.view_tree.clear_caches`` through the store's memory
# tier because cached levels hold interned trees.
_BUILDERS = memory_bucket("view-builder", capacity=8)


def view_builder(graph: LabeledGraph) -> ViewBuilder:
    """The cached :class:`ViewBuilder` for ``graph`` (creating it on first
    use).  Repeated ``all_views`` calls on the same — or a structurally
    equal — graph share it."""
    builder = _BUILDERS.get(graph)
    if builder is not None:
        return builder
    builder = ViewBuilder(graph)
    _BUILDERS.put(graph, builder)
    return builder


def all_views(graph: LabeledGraph, depth: int) -> dict[Node, ViewTree]:
    """The views ``L_depth(v, graph)`` for every node ``v``."""
    note_artifact(lambda: views_spec(graph, depth))
    return view_builder(graph).views(depth)


def view(graph: LabeledGraph, v: Node, depth: int) -> ViewTree:
    """The view ``L_depth(v, graph)`` of a single node."""
    if not graph.has_node(v):
        raise ViewError(f"unknown node {v!r}")
    return all_views(graph, depth)[v]


def view_partition(graph: LabeledGraph, depth: int) -> list[tuple[Node, ...]]:
    """Nodes grouped by equal depth-``depth`` views, each group sorted,
    groups ordered by the view order.

    At ``depth = n`` (the node count) this is the ``L_∞`` partition by
    Norris's theorem — the fibers of the infinite view map ``f_∞``.
    """
    return view_builder(graph).partition(depth)
