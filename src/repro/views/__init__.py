"""Local views, color refinement and the universal cover.

The *depth-d local view* ``L_d(v, G)`` (paper Section 1.1, Figure 1) is
the rooted marked tree a deterministic anonymous algorithm at ``v`` could
learn in ``d`` rounds.  This package builds views explicitly
(:mod:`repro.views.view_tree`, :mod:`repro.views.local_views`), computes
the view-equivalence partition efficiently by color refinement
(:mod:`repro.views.refinement` — the two are cross-checked in tests), and
exposes the universal cover (:mod:`repro.views.universal_cover`).
"""

from repro.views.view_tree import ViewTree, clear_caches, intern_stats
from repro.views.local_views import (
    ViewBuilder,
    all_views,
    view,
    view_builder,
    view_partition,
)
from repro.views.refinement import (
    RefinementResult,
    color_refinement,
    refinement_partition,
    stabilization_depth,
)
from repro.views.universal_cover import universal_cover_ball, view_to_cover_ball

__all__ = [
    "ViewTree",
    "ViewBuilder",
    "view",
    "view_builder",
    "all_views",
    "view_partition",
    "clear_caches",
    "intern_stats",
    "RefinementResult",
    "color_refinement",
    "refinement_partition",
    "stabilization_depth",
    "universal_cover_ball",
    "view_to_cover_ball",
]
