"""Color refinement — the efficient route to view equivalence.

Explicit depth-``d`` views grow exponentially when expanded; what the
factor machinery actually needs is only the *partition* of nodes by view
equality.  Color refinement (a.k.a. 1-dimensional Weisfeiler-Leman)
computes exactly that partition: seeding every node with its label and
repeatedly re-coloring by (own color, multiset of neighbor colors) yields
after ``d - 1`` rounds the partition by equal ``L_d`` views.  The
equivalence holds because two views are equal iff their root marks agree
and their child *multisets* agree — which is precisely one refinement
step (views are trees with canonically sorted children, so child
sequences are multisets).

Colors are small integers: each round hashes the signature ``(own color,
sorted tuple of neighbor colors)`` through a palette dict that renumbers
signatures densely in sorted order — the classic ``O(m)``-per-round
hashing refinement.  The canonical numbering is unchanged from the
historical string encoding because the palette sorts signatures exactly
as the concatenated strings sorted.  Two early exits stop the loop: a
round that splits nothing (the partition is stable — the same criterion
:class:`repro.views.local_views.ViewBuilder` uses to stop deepening),
and a discrete partition (every node its own class, trivially stable).

Norris's theorem (paper Theorem 3) appears here as the fact that the
partition is stable after at most ``n - 1`` rounds; the measured
stabilization depth is one of our experiment outputs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze
from repro.views import view_tree

# Memoized uncapped runs: id(graph) -> (graph pinned, result).  Same
# LRU discipline as the ViewBuilder registry; cleared with the view
# caches so benchmark sessions stay bounded.
_RESULT_CACHE: "OrderedDict[int, tuple[LabeledGraph, RefinementResult]]" = OrderedDict()
_RESULT_CACHE_SIZE = 16

view_tree.register_cache_clearer(_RESULT_CACHE.clear)


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of running color refinement.

    Attributes
    ----------
    classes:
        Class index per node after the run.  Classes are numbered
        ``0, 1, ...`` in a canonical order (sorted by class signature
        history), so two runs on isomorphic graphs number corresponding
        classes equally.
    rounds_to_stable:
        Number of refinement rounds performed until the partition stopped
        changing — or, when a ``max_rounds`` cap cut the run short, until
        the cap (check :attr:`stable`).  For a stable run,
        ``rounds_to_stable + 1`` is the view depth at which views
        determine ``L_∞`` for this graph (compare with Norris's ``n``).
    history:
        Per-round class counts, starting with the initial (label) round.
    stable:
        Whether the returned partition was *verified* stable: a round
        split nothing, or every node sits in its own class.  Uncapped
        runs are always stable; a run capped by ``max_rounds`` may stop
        while the partition is still refining, in which case ``classes``
        is the partition after exactly ``max_rounds`` rounds.
    """

    classes: dict[Node, int]
    rounds_to_stable: int
    history: tuple[int, ...]
    stable: bool = True

    @property
    def num_classes(self) -> int:
        return len(set(self.classes.values()))


def color_refinement(
    graph: LabeledGraph, max_rounds: int | None = None
) -> RefinementResult:
    """Run color refinement seeded by node labels until stable.

    ``max_rounds`` optionally caps the rounds (used by the benchmarks to
    observe intermediate partitions); by default refinement runs to
    stability, which takes at most ``n - 1`` rounds.  With a cap the
    result's :attr:`RefinementResult.stable` records whether stability
    was actually reached — a capped run is *not* assumed stable merely
    because it used all its rounds.

    Uncapped results are memoized per graph object (graphs are
    immutable), so repeated partition queries — quotients, stabilization
    depths, benchmarks — pay for refinement once.
    """
    if max_rounds is None:
        cached = _RESULT_CACHE.get(id(graph))
        if cached is not None:
            _RESULT_CACHE.move_to_end(id(graph))
            result = cached[1]
            return RefinementResult(
                classes=dict(result.classes),
                rounds_to_stable=result.rounds_to_stable,
                history=result.history,
                stable=result.stable,
            )
    nodes = graph.nodes
    num_nodes = graph.num_nodes
    # Work on dense node indices: adjacency as index tuples, colors as a
    # flat list — every round is then pure small-int tuple hashing.
    index = {v: i for i, v in enumerate(nodes)}
    adjacency = [tuple(index[u] for u in graph.neighbors(v)) for v in nodes]
    # Seed colors canonically: distinct labels ranked by their serialized
    # form, so numbering is deterministic and independent of node ids.
    initial = [repr(_freeze(graph.label(v))) for v in nodes]
    seed_palette = {key: i for i, key in enumerate(sorted(set(initial)))}
    color: list[int] = [seed_palette[key] for key in initial]
    history: list[int] = [len(seed_palette)]
    rounds = 0
    stable = len(seed_palette) == num_nodes  # discrete partitions are stable
    limit = num_nodes if max_rounds is None else max_rounds
    node_range = range(num_nodes)
    while not stable and rounds < limit:
        signature = [
            (color[i], tuple(sorted([color[j] for j in adjacency[i]])))
            for i in node_range
        ]
        palette = {sig: k for k, sig in enumerate(sorted(set(signature)))}
        if len(palette) == history[-1]:
            # A refinement round that does not increase the class count
            # leaves the partition unchanged (refinement only splits).
            stable = True
            break
        color = [palette[sig] for sig in signature]
        rounds += 1
        history.append(len(palette))
        if len(palette) == num_nodes:
            stable = True
    result = RefinementResult(
        classes={v: color[index[v]] for v in nodes},
        rounds_to_stable=rounds,
        history=tuple(history),
        stable=stable,
    )
    if max_rounds is None and stable:
        _RESULT_CACHE[id(graph)] = (graph, result)
        if len(_RESULT_CACHE) > _RESULT_CACHE_SIZE:
            _RESULT_CACHE.popitem(last=False)
    return result


def refinement_partition(graph: LabeledGraph) -> list[tuple[Node, ...]]:
    """Nodes grouped by stable refinement class (= equal ``L_∞`` views)."""
    result = color_refinement(graph)
    groups: dict[int, list[Node]] = {}
    for v in graph.nodes:
        groups.setdefault(result.classes[v], []).append(v)
    return [tuple(groups[c]) for c in sorted(groups)]


def stabilization_depth(graph: LabeledGraph) -> int:
    """The smallest view depth ``d`` with the ``L_d`` partition already
    equal to the ``L_∞`` partition.  Norris's theorem bounds this by
    ``n``; the benches measure how much smaller it typically is."""
    result = color_refinement(graph)
    assert result.stable  # uncapped refinement always reaches stability
    return result.rounds_to_stable + 1
