"""Color refinement — the efficient route to view equivalence.

Explicit depth-``d`` views grow exponentially when expanded; what the
factor machinery actually needs is only the *partition* of nodes by view
equality.  Color refinement (a.k.a. 1-dimensional Weisfeiler-Leman)
computes exactly that partition: seeding every node with its label and
repeatedly re-coloring by (own color, multiset of neighbor colors) yields
after ``d - 1`` rounds the partition by equal ``L_d`` views.  The
equivalence holds because two views are equal iff their root marks agree
and their child *multisets* agree — which is precisely one refinement
step (views are trees with canonically sorted children, so child
sequences are multisets).

The rounds themselves run in :func:`repro.graphs.csr.refine` on the
graph's memoized CSR mirror: colors are a flat int list, each round
gathers neighbor colors through C-level ``map`` over int adjacency rows
and renumbers signatures densely in sorted order.  The canonical
numbering is unchanged from the historical dict-walking implementation
(and from the string encoding before it) — the CSR label ranks seed
exactly like the old ``repr``-sorted palette, and the flattened
signature tuples sort exactly as the old nested pairs.

Two early exits stop the loop: a round that splits nothing (the
partition is stable — the same criterion
:class:`repro.views.local_views.ViewBuilder` uses to stop deepening),
and a discrete partition (every node its own class, trivially stable).

Norris's theorem (paper Theorem 3) appears here as the fact that the
partition is stable after at most ``n - 1`` rounds; the measured
stabilization depth is one of our experiment outputs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from types import MappingProxyType

from repro.artifacts.specs import refinement_spec
from repro.artifacts.store import memory_bucket, note_artifact
from repro.graphs.csr import CSRGraph, csr_of, refine
from repro.graphs.labeled_graph import LabeledGraph, Node

# Memoized uncapped runs: the "refinement" bucket of the artifact
# store's memory tier, keyed by the graph itself — LabeledGraph
# equality/hash delegate to structure_key(), so structurally identical
# instances share one entry (same-instance lookups still short-circuit
# on identity inside the dict) and no id()-pinning tuple is needed.
# Entries also keep the dense color list for array-level consumers
# (quotients, canonical orders).  Same LRU discipline as the ViewBuilder
# registry; emptied by ``repro.views.view_tree.clear_caches`` through
# the store's memory tier, so benchmark sessions stay bounded.
_RESULTS = memory_bucket("refinement", capacity=16)


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of running color refinement.

    Attributes
    ----------
    classes:
        Class index per node after the run, as a **read-only** mapping
        (cache hits return the same result object, so mutating it would
        corrupt the memo — copy it if you must edit).  Classes are
        numbered ``0, 1, ...`` in a canonical order (sorted by class
        signature history), so two runs on isomorphic graphs number
        corresponding classes equally.
    rounds_to_stable:
        Number of refinement rounds performed until the partition stopped
        changing — or, when a ``max_rounds`` cap cut the run short, until
        the cap (check :attr:`stable`).  For a stable run,
        ``rounds_to_stable + 1`` is the view depth at which views
        determine ``L_∞`` for this graph (compare with Norris's ``n``).
    history:
        Per-round class counts, starting with the initial (label) round.
    stable:
        Whether the returned partition was *verified* stable: a round
        split nothing, or every node sits in its own class.  Uncapped
        runs are always stable; a run capped by ``max_rounds`` may stop
        while the partition is still refining, in which case ``classes``
        is the partition after exactly ``max_rounds`` rounds.
    """

    classes: Mapping[Node, int]
    rounds_to_stable: int
    history: tuple[int, ...]
    stable: bool = True

    @property
    def num_classes(self) -> int:
        return len(set(self.classes.values()))


def color_refinement(
    graph: LabeledGraph, max_rounds: int | None = None
) -> RefinementResult:
    """Run color refinement seeded by node labels until stable.

    ``max_rounds`` optionally caps the rounds (used by the benchmarks to
    observe intermediate partitions); by default refinement runs to
    stability, which takes at most ``n - 1`` rounds.  With a cap the
    result's :attr:`RefinementResult.stable` records whether stability
    was actually reached — a capped run is *not* assumed stable merely
    because it used all its rounds.

    Uncapped results are memoized per graph *structure* (graphs are
    immutable and compare structurally), so repeated partition queries —
    quotients, stabilization depths, benchmarks — pay for refinement
    once, even across distinct but equal instances.  The returned result
    is shared between cache hits; its ``classes`` mapping is read-only.
    """
    if max_rounds is None:
        note_artifact(lambda: refinement_spec(graph))
        cached = _RESULTS.get(graph)
        if cached is not None:
            return cached[0]
    csr = csr_of(graph)
    color, rounds, history, stable = refine(csr, max_rounds)
    result = RefinementResult(
        classes=MappingProxyType(dict(zip(graph.nodes, color))),
        rounds_to_stable=rounds,
        history=tuple(history),
        stable=stable,
    )
    if max_rounds is None and stable:
        _RESULTS.put(graph, (result, color))
    return result


def refinement_indices(graph: LabeledGraph) -> tuple[CSRGraph, list[int]]:
    """Stable refinement classes in index space: the graph's CSR mirror
    plus the dense color list (``colors[i]`` is the class of
    ``csr.nodes[i]``).  Shares the :func:`color_refinement` memo; array
    consumers (quotient construction, canonical node orders) use this to
    stay in flat-int land."""
    cached = _RESULTS.get(graph)
    if cached is None:
        result = color_refinement(graph)
        cached = _RESULTS.get(graph)
        if cached is None:  # cache tiny or disabled: rebuild from classes
            return csr_of(graph), [result.classes[v] for v in graph.nodes]
    return csr_of(graph), cached[1]


def refinement_partition(graph: LabeledGraph) -> list[tuple[Node, ...]]:
    """Nodes grouped by stable refinement class (= equal ``L_∞`` views)."""
    csr, colors = refinement_indices(graph)
    groups: list[list[Node]] = [[] for _ in range(max(colors) + 1)]
    nodes = csr.nodes
    for i, c in enumerate(colors):
        groups[c].append(nodes[i])
    return [tuple(group) for group in groups]


def stabilization_depth(graph: LabeledGraph) -> int:
    """The smallest view depth ``d`` with the ``L_d`` partition already
    equal to the ``L_∞`` partition.  Norris's theorem bounds this by
    ``n``; the benches measure how much smaller it typically is."""
    result = color_refinement(graph)
    assert result.stable  # uncapped refinement always reaches stability
    return result.rounds_to_stable + 1
