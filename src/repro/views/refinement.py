"""Color refinement — the efficient route to view equivalence.

Explicit depth-``d`` views grow exponentially when expanded; what the
factor machinery actually needs is only the *partition* of nodes by view
equality.  Color refinement (a.k.a. 1-dimensional Weisfeiler-Leman)
computes exactly that partition: seeding every node with its label and
repeatedly re-coloring by (own color, multiset of neighbor colors) yields
after ``d - 1`` rounds the partition by equal ``L_d`` views.  The
equivalence holds because two views are equal iff their root marks agree
and their child *multisets* agree — which is precisely one refinement
step (views are trees with canonically sorted children, so child
sequences are multisets).

Norris's theorem (paper Theorem 3) appears here as the fact that the
partition is stable after at most ``n - 1`` rounds; the measured
stabilization depth is one of our experiment outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of running color refinement to stability.

    Attributes
    ----------
    classes:
        Stable class index per node.  Classes are numbered ``0, 1, ...``
        in a canonical order (sorted by class signature history), so two
        runs on isomorphic graphs number corresponding classes equally.
    rounds_to_stable:
        Number of refinement rounds until the partition stopped changing.
        ``rounds_to_stable + 1`` is the view depth at which views
        determine ``L_∞`` for this graph (compare with Norris's ``n``).
    history:
        Per-round class counts, starting with the initial (label) round.
    """

    classes: Dict[Node, int]
    rounds_to_stable: int
    history: Tuple[int, ...]

    @property
    def num_classes(self) -> int:
        return len(set(self.classes.values()))


def color_refinement(
    graph: LabeledGraph, max_rounds: int | None = None
) -> RefinementResult:
    """Run color refinement seeded by node labels until stable.

    ``max_rounds`` optionally caps the rounds (used by the benchmarks to
    observe intermediate partitions); by default refinement runs to
    stability, which takes at most ``n - 1`` rounds.
    """
    # Colors are canonical strings so that renumbering is deterministic
    # and independent of node ids.
    color: Dict[Node, str] = {v: repr(_freeze(graph.label(v))) for v in graph.nodes}
    history: List[int] = [len(set(color.values()))]
    rounds = 0
    limit = graph.num_nodes if max_rounds is None else max_rounds
    while rounds < limit:
        new_color = {
            v: color[v] + "|" + ",".join(sorted(color[u] for u in graph.neighbors(v)))
            for v in graph.nodes
        }
        # Compress to keep strings short: canonical renumbering by sorted
        # signature.  The compressed color preserves the partition and the
        # cross-round refinement order because refinement only ever splits.
        palette = {sig: i for i, sig in enumerate(sorted(set(new_color.values())))}
        compressed = {v: f"{palette[new_color[v]]:06d}" for v in graph.nodes}
        rounds += 1
        history.append(len(palette))
        if len(palette) == history[-2]:
            # A refinement round that does not increase the class count
            # leaves the partition unchanged (refinement only splits).
            color = compressed
            rounds -= 1  # the last round changed nothing
            history.pop()
            break
        color = compressed
    classes = _canonical_class_numbers(graph, color)
    return RefinementResult(
        classes=classes, rounds_to_stable=rounds, history=tuple(history)
    )


def _canonical_class_numbers(
    graph: LabeledGraph, color: Dict[Node, str]
) -> Dict[Node, int]:
    ordered = sorted(set(color.values()))
    index = {value: i for i, value in enumerate(ordered)}
    return {v: index[color[v]] for v in graph.nodes}


def refinement_partition(graph: LabeledGraph) -> List[Tuple[Node, ...]]:
    """Nodes grouped by stable refinement class (= equal ``L_∞`` views)."""
    result = color_refinement(graph)
    groups: Dict[int, List[Node]] = {}
    for v in graph.nodes:
        groups.setdefault(result.classes[v], []).append(v)
    return [tuple(groups[c]) for c in sorted(groups)]


def stabilization_depth(graph: LabeledGraph) -> int:
    """The smallest view depth ``d`` with the ``L_d`` partition already
    equal to the ``L_∞`` partition.  Norris's theorem bounds this by
    ``n``; the benches measure how much smaller it typically is."""
    return color_refinement(graph).rounds_to_stable + 1
