"""Immutable, hash-consed rooted marked trees representing local views.

A :class:`ViewTree` is the tree object of the paper's ``L_d(v, G)``: a
root *vertex* carrying a *mark* (the node label) with one child subtree
per neighbor.  Three design points matter:

* **Hash-consing.**  The same subtree (``L_{d-1}(u)``) appears in the
  views of all of ``u``'s neighbors, so trees are interned: structurally
  equal trees are the *same* Python object, equality is identity, and a
  depth-``d`` view over an ``n``-node graph costs ``O(n · d)`` distinct
  tree objects even though its expanded size is exponential.

* **Canonical child order.**  Children are stored sorted under the
  structural total order below.  The paper (Section 2.1) canonicalizes by
  fixing a total order among the children of each vertex — possible there
  because 2-hop coloring makes sibling marks distinct; our order is
  defined for arbitrary trees and coincides with any mark-based order on
  2-hop colored graphs.  Sorting makes tree equality equal to view
  equality (children are a multiset, not a sequence, because a node does
  not know which neighbor is "first").

* **Structural total order.**  ``ViewTree.compare`` orders trees by
  depth, then root mark (serialized), then children lexicographically.
  It is construction-order independent, so every node of a distributed
  algorithm computes the *same* order — the property Lemma 1 needs.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import _freeze

_INTERN: Dict[Tuple, "ViewTree"] = {}
_COMPARE_CACHE: Dict[Tuple[int, int], int] = {}
_TRUNCATE_CACHE: Dict[Tuple[int, int], "ViewTree"] = {}


class ViewTree:
    """A hash-consed rooted marked tree.  Use :meth:`make`, not ``__init__``."""

    __slots__ = ("mark", "children", "depth", "size", "_mark_key", "__weakref__")

    mark: Any
    children: Tuple["ViewTree", ...]
    depth: int
    size: int

    def __init__(self, mark: Any, children: Tuple["ViewTree", ...], _token: object) -> None:
        if _token is not _MAKE_TOKEN:
            raise TypeError("use ViewTree.make(mark, children) — trees are interned")
        self.mark = mark
        self.children = children
        self.depth = 1 + (max(c.depth for c in children) if children else 0)
        self.size = 1 + sum(c.size for c in children)
        self._mark_key = repr(_freeze(mark))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def make(mark: Any, children: Sequence["ViewTree"] = ()) -> "ViewTree":
        """The interned tree with the given root mark and child multiset."""
        ordered = tuple(sorted(children, key=functools.cmp_to_key(ViewTree.compare)))
        key = (repr(_freeze(mark)), tuple(id(c) for c in ordered))
        tree = _INTERN.get(key)
        if tree is None:
            tree = ViewTree(mark, ordered, _MAKE_TOKEN)
            _INTERN[key] = tree
        return tree

    @staticmethod
    def leaf(mark: Any) -> "ViewTree":
        """The single-vertex tree ``L_1`` with the given mark."""
        return ViewTree.make(mark, ())

    # ------------------------------------------------------------------
    # Total order
    # ------------------------------------------------------------------

    @staticmethod
    def compare(a: "ViewTree", b: "ViewTree") -> int:
        """Structural three-way comparison; negative when ``a`` precedes ``b``.

        Order: by depth, then by serialized root mark, then by the child
        lists compared lexicographically (shorter list first on ties).
        Depth-first ordering matches the paper's convention that shorter
        objects precede longer ones (cf. the assignment order in §2.2).
        """
        if a is b:
            return 0
        key = (id(a), id(b))
        cached = _COMPARE_CACHE.get(key)
        if cached is not None:
            return cached
        result = ViewTree._compare_uncached(a, b)
        _COMPARE_CACHE[key] = result
        _COMPARE_CACHE[(id(b), id(a))] = -result
        return result

    @staticmethod
    def _compare_uncached(a: "ViewTree", b: "ViewTree") -> int:
        if a.depth != b.depth:
            return -1 if a.depth < b.depth else 1
        if a._mark_key != b._mark_key:
            return -1 if a._mark_key < b._mark_key else 1
        for child_a, child_b in zip(a.children, b.children):
            result = ViewTree.compare(child_a, child_b)
            if result != 0:
                return result
        if len(a.children) != len(b.children):
            return -1 if len(a.children) < len(b.children) else 1
        return 0

    def sort_key(self) -> Any:
        """A key usable with ``sorted`` (wraps :meth:`compare`)."""
        return functools.cmp_to_key(ViewTree.compare)(self)

    def __lt__(self, other: "ViewTree") -> bool:
        return ViewTree.compare(self, other) < 0

    def __le__(self, other: "ViewTree") -> bool:
        return ViewTree.compare(self, other) <= 0

    # Equality is identity thanks to interning; object.__eq__/__hash__ apply.

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def truncate(self, depth: int) -> "ViewTree":
        """The depth-``depth`` truncation (the paper's ``f_n`` on views).

        ``truncate(d)`` of a depth-``k`` view, ``k >= d``, is the depth-``d``
        view of the same node.  Requesting more depth than available
        returns the tree unchanged.
        """
        if depth < 1:
            raise ValueError(f"truncation depth must be at least 1, got {depth}")
        if self.depth <= depth:
            return self
        key = (id(self), depth)
        cached = _TRUNCATE_CACHE.get(key)
        if cached is not None:
            return cached
        if depth == 1:
            result = ViewTree.leaf(self.mark)
        else:
            result = ViewTree.make(
                self.mark, [child.truncate(depth - 1) for child in self.children]
            )
        _TRUNCATE_CACHE[key] = result
        return result

    def subtrees(self) -> Iterator["ViewTree"]:
        """All distinct subtrees (including self), each yielded once."""
        seen: set = set()
        stack: List[ViewTree] = [self]
        while stack:
            tree = stack.pop()
            if id(tree) in seen:
                continue
            seen.add(id(tree))
            yield tree
            stack.extend(tree.children)

    def level_marks(self, level: int) -> Tuple[Any, ...]:
        """The marks at tree depth ``level`` (root is level 1), in canonical
        child order — the per-level data the paper compares views by."""
        if level < 1:
            raise ValueError(f"level must be at least 1, got {level}")
        current: List[ViewTree] = [self]
        for _ in range(level - 1):
            current = [child for tree in current for child in tree.children]
        return tuple(tree.mark for tree in current)

    def render(self, max_depth: Optional[int] = None, indent: str = "") -> str:
        """Human-readable multi-line rendering (used to print Figure 1)."""
        lines = [f"{indent}{self.mark!r}"]
        if max_depth is None or max_depth > 1:
            next_depth = None if max_depth is None else max_depth - 1
            for child in self.children:
                lines.append(child.render(next_depth, indent + "  "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ViewTree(mark={self.mark!r}, depth={self.depth}, size={self.size})"


_MAKE_TOKEN = object()


def intern_stats() -> Dict[str, int]:
    """Sizes of the intern and comparison caches (for perf diagnostics)."""
    return {"trees": len(_INTERN), "comparisons": len(_COMPARE_CACHE)}


def view_to_dict(tree: ViewTree) -> dict:
    """A JSON-compatible description of a view tree.

    Marks must be JSON-representable (the same constraint as
    :mod:`repro.graphs.io`, whose encoding is reused); shared subtrees
    are expanded, so this is meant for figure-sized views, not for
    depth-n views of large graphs.
    """
    from repro.graphs.io import _encode

    return {
        "mark": _encode(tree.mark),
        "children": [view_to_dict(child) for child in tree.children],
    }


def view_from_dict(data: dict) -> ViewTree:
    """Rebuild an interned view tree from :func:`view_to_dict` output."""
    from repro.graphs.io import _decode

    children = [view_from_dict(child) for child in data["children"]]
    return ViewTree.make(_decode(data["mark"]), children)
