"""Immutable, hash-consed rooted marked trees representing local views.

A :class:`ViewTree` is the tree object of the paper's ``L_d(v, G)``: a
root *vertex* carrying a *mark* (the node label) with one child subtree
per neighbor.  Three design points matter:

* **Hash-consing.**  The same subtree (``L_{d-1}(u)``) appears in the
  views of all of ``u``'s neighbors, so trees are interned: structurally
  equal trees are the *same* Python object, equality is identity, and a
  depth-``d`` view over an ``n``-node graph costs ``O(n · d)`` distinct
  tree objects even though its expanded size is exponential.

* **Canonical child order.**  Children are stored sorted under the
  structural total order below.  The paper (Section 2.1) canonicalizes by
  fixing a total order among the children of each vertex — possible there
  because 2-hop coloring makes sibling marks distinct; our order is
  defined for arbitrary trees and coincides with any mark-based order on
  2-hop colored graphs.  Sorting makes tree equality equal to view
  equality (children are a multiset, not a sequence, because a node does
  not know which neighbor is "first").

* **Structural total order, ranked.**  ``ViewTree.compare`` orders trees
  by depth, then root mark (serialized), then children lexicographically.
  It is construction-order independent, so every node of a distributed
  algorithm computes the *same* order — the property Lemma 1 needs.
  Rather than comparing trees pairwise, every interned tree is assigned a
  **canonical rank** at intern time: the triple ``(depth, mark rank,
  bucket rank)`` compared as plain integers realizes exactly the
  structural order, so ``compare`` is O(1) and ``make`` sorts children by
  an integer key instead of a comparator.  Ranks are dense integers
  maintained per ``(depth, mark)`` bucket; interning a tree in the middle
  of a bucket renumbers only that bucket's suffix, and interning a new
  mark key in the middle of the mark order renumbers only the (small)
  mark-rank table.  See ``docs/PERFORMANCE.md`` for the cost model.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.graphs.labeled_graph import _freeze

# Interned trees: (mark id, child object ids) -> tree.  Children are
# already canonically ordered when the key is formed, so structural
# equality coincides with key equality.
_INTERN: dict[tuple[int, tuple[int, ...]], "ViewTree"] = {}
_TRUNCATE_CACHE: dict[tuple[int, int], "ViewTree"] = {}

# Mark-key table: each distinct serialized mark (``repr(_freeze(mark))``)
# gets a *mark id* (arbitrary, stable) and a *mark rank* (dense, ordered
# like the key strings).  The expensive ``repr`` runs once per distinct
# mark; every later intern is a dict hit.
_MARK_ID_BY_FROZEN: dict[Any, int] = {}
_MARK_ID_BY_KEY: dict[str, int] = {}
_MARK_KEYS: list[str] = []  # mark id -> serialized key
_MARK_RANK: list[int] = []  # mark id -> dense rank, ordered like the keys
_MARK_SORTED_KEYS: list[str] = []  # keys in sorted order
_MARK_SORTED_IDS: list[int] = []  # ids in key-sorted order

# Rank buckets: (depth, mark id) -> trees sorted by the lexicographic
# order of their child rank sequences.  A tree's ``_bucket_rank`` is its
# index in its bucket, so (depth, mark rank, bucket rank) compared as an
# integer triple realizes the structural total order.
_BUCKETS: dict[tuple[int, int], list["ViewTree"]] = {}

_STATS = {"mark_renumbers": 0, "bucket_shifts": 0}

# Caches elsewhere (e.g. the ViewBuilder registry in local_views) hold
# interned trees; clear_caches() must empty them too or stale trees with
# dangling ranks would leak into fresh interning epochs.
_CACHE_CLEAR_HOOKS: list[Callable[[], None]] = []


def register_cache_clearer(hook: Callable[[], None]) -> None:
    """Register a callback run by :func:`clear_caches` (for caches outside
    this module that hold interned trees)."""
    _CACHE_CLEAR_HOOKS.append(hook)


def _mark_id_of(mark: Any) -> int:
    frozen = _freeze(mark)
    try:
        mark_id = _MARK_ID_BY_FROZEN.get(frozen)
        hashable = True
    except TypeError:  # exotic unhashable mark: fall back to repr only
        mark_id = None
        hashable = False
    if mark_id is not None:
        return mark_id
    key = repr(frozen)
    mark_id = _MARK_ID_BY_KEY.get(key)
    if mark_id is None:
        mark_id = len(_MARK_KEYS)
        _MARK_KEYS.append(key)
        _MARK_ID_BY_KEY[key] = mark_id
        _MARK_RANK.append(0)
        position = bisect_left(_MARK_SORTED_KEYS, key)
        _MARK_SORTED_KEYS.insert(position, key)
        _MARK_SORTED_IDS.insert(position, mark_id)
        if position == len(_MARK_SORTED_IDS) - 1:
            _MARK_RANK[mark_id] = position
        else:
            # A key landed in the middle of the order: renumber.  Rare
            # (once per distinct mark at most) and O(#marks).
            _STATS["mark_renumbers"] += 1
            for rank, mid in enumerate(_MARK_SORTED_IDS):
                _MARK_RANK[mid] = rank
    if hashable:
        _MARK_ID_BY_FROZEN[frozen] = mark_id
    return mark_id


def _rank_key(tree: "ViewTree") -> tuple[int, int, int]:
    return (tree.depth, _MARK_RANK[tree._mark_id], tree._bucket_rank)


def _children_key(tree: "ViewTree") -> tuple[tuple[int, int, int], ...]:
    return tuple(
        (c.depth, _MARK_RANK[c._mark_id], c._bucket_rank) for c in tree.children
    )


def _make_ranked(mark: Any, mark_id: int, children: Sequence["ViewTree"]) -> "ViewTree":
    """Intern a tree given a pre-resolved mark id.

    ``ViewTree.make`` resolves the id from the mark; builders that apply
    the same mark level after level (see
    :class:`repro.views.local_views.ViewBuilder`) resolve it once and
    call this directly, skipping the per-call mark serialization.
    """
    if len(children) == 2:
        # The dominant case on bounded-degree graphs: order the pair by
        # direct rank comparison instead of a keyed sort (same order,
        # no key tuples, no sort machinery).
        a, b = children
        if a is b or a.depth < b.depth:
            ordered = (a, b)
        elif a.depth > b.depth:
            ordered = (b, a)
        else:
            rank_a, rank_b = _MARK_RANK[a._mark_id], _MARK_RANK[b._mark_id]
            if rank_a != rank_b:
                ordered = (a, b) if rank_a < rank_b else (b, a)
            else:
                ordered = (a, b) if a._bucket_rank < b._bucket_rank else (b, a)
        key = (mark_id, (id(ordered[0]), id(ordered[1])))
        tree = _INTERN.get(key)
        if tree is None:
            tree = ViewTree(mark, ordered, _MAKE_TOKEN)
            tree._mark_id = mark_id
            _register_rank(tree)
            _INTERN[key] = tree
        return tree
    if len(children) > 2:
        ordered = tuple(sorted(children, key=_rank_key))
    else:
        ordered = tuple(children)
    key = (mark_id, tuple(map(id, ordered)))
    tree = _INTERN.get(key)
    if tree is None:
        tree = ViewTree(mark, ordered, _MAKE_TOKEN)
        tree._mark_id = mark_id
        _register_rank(tree)
        _INTERN[key] = tree
    return tree


def _register_rank(tree: "ViewTree") -> None:
    """Insert a freshly interned tree into its (depth, mark) bucket.

    Bucket members are kept sorted by the lexicographic order of their
    child rank sequences (ties impossible: equal children would have hit
    the intern table).  Appending at the end is O(1); a middle insert
    renumbers the bucket suffix — dense ranks stay dense.
    """
    bucket_id = (tree.depth, tree._mark_id)
    bucket = _BUCKETS.get(bucket_id)
    if bucket is None:
        _BUCKETS[bucket_id] = [tree]
        tree._bucket_rank = 0
        return
    key = _children_key(tree)
    lo, hi = 0, len(bucket)
    while lo < hi:
        mid = (lo + hi) // 2
        if _children_key(bucket[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    bucket.insert(lo, tree)
    if lo != len(bucket) - 1:
        _STATS["bucket_shifts"] += 1
    for i in range(lo, len(bucket)):
        bucket[i]._bucket_rank = i


class ViewTree:
    """A hash-consed rooted marked tree.  Use :meth:`make`, not ``__init__``."""

    __slots__ = ("mark", "children", "depth", "size", "_mark_id", "_bucket_rank", "__weakref__")

    mark: Any
    children: tuple["ViewTree", ...]
    depth: int
    size: int

    def __init__(self, mark: Any, children: tuple["ViewTree", ...], _token: object) -> None:
        if _token is not _MAKE_TOKEN:
            raise TypeError("use ViewTree.make(mark, children) — trees are interned")
        self.mark = mark
        self.children = children
        # A plain loop, not max()/sum() over generators: trees intern at
        # a few per node per level, and two generator frames per intern
        # dominate the cold-build profile on bounded-degree graphs.
        depth = 0
        size = 1
        for c in children:
            if c.depth > depth:
                depth = c.depth
            size += c.size
        self.depth = depth + 1
        self.size = size

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def make(mark: Any, children: Sequence["ViewTree"] = ()) -> "ViewTree":
        """The interned tree with the given root mark and child multiset."""
        return _make_ranked(mark, _mark_id_of(mark), children)

    @staticmethod
    def leaf(mark: Any) -> "ViewTree":
        """The single-vertex tree ``L_1`` with the given mark."""
        return ViewTree.make(mark, ())

    # ------------------------------------------------------------------
    # Total order
    # ------------------------------------------------------------------

    @staticmethod
    def compare(a: "ViewTree", b: "ViewTree") -> int:
        """Structural three-way comparison; negative when ``a`` precedes ``b``.

        Order: by depth, then by serialized root mark, then by the child
        lists compared lexicographically (shorter list first on ties).
        Depth-first ordering matches the paper's convention that shorter
        objects precede longer ones (cf. the assignment order in §2.2).
        Implemented as an O(1) comparison of canonical ranks.
        """
        if a is b:
            return 0
        if a.depth != b.depth:
            return -1 if a.depth < b.depth else 1
        rank_a = _MARK_RANK[a._mark_id]
        rank_b = _MARK_RANK[b._mark_id]
        if rank_a != rank_b:
            return -1 if rank_a < rank_b else 1
        # Same depth and mark: distinct interned trees in one bucket
        # always have distinct bucket ranks.
        return -1 if a._bucket_rank < b._bucket_rank else 1

    def sort_key(self) -> tuple[int, int, int]:
        """A key usable with ``sorted``: the canonical rank triple.

        Keys are valid for comparisons among trees alive now; interning
        *new* trees may shift ranks (order-preservingly), so do not store
        keys across interning and compare them later.
        """
        return (self.depth, _MARK_RANK[self._mark_id], self._bucket_rank)

    def __lt__(self, other: "ViewTree") -> bool:
        return ViewTree.compare(self, other) < 0

    def __le__(self, other: "ViewTree") -> bool:
        return ViewTree.compare(self, other) <= 0

    # Equality is identity thanks to interning; object.__eq__/__hash__ apply.

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def truncate(self, depth: int) -> "ViewTree":
        """The depth-``depth`` truncation (the paper's ``f_n`` on views).

        ``truncate(d)`` of a depth-``k`` view, ``k >= d``, is the depth-``d``
        view of the same node.  Requesting more depth than available
        returns the tree unchanged.
        """
        if depth < 1:
            raise ValueError(f"truncation depth must be at least 1, got {depth}")
        if self.depth <= depth:
            return self
        key = (id(self), depth)
        cached = _TRUNCATE_CACHE.get(key)
        if cached is not None:
            return cached
        if depth == 1:
            result = ViewTree.leaf(self.mark)
        else:
            result = ViewTree.make(
                self.mark, [child.truncate(depth - 1) for child in self.children]
            )
        _TRUNCATE_CACHE[key] = result
        return result

    def subtrees(self) -> Iterator["ViewTree"]:
        """All distinct subtrees (including self), each yielded once."""
        seen: set = set()
        stack: list[ViewTree] = [self]
        while stack:
            tree = stack.pop()
            if id(tree) in seen:
                continue
            seen.add(id(tree))
            yield tree
            stack.extend(tree.children)

    def level_marks(self, level: int) -> tuple[Any, ...]:
        """The marks at tree depth ``level`` (root is level 1), in canonical
        child order — the per-level data the paper compares views by."""
        if level < 1:
            raise ValueError(f"level must be at least 1, got {level}")
        current: list[ViewTree] = [self]
        for _ in range(level - 1):
            current = [child for tree in current for child in tree.children]
        return tuple(tree.mark for tree in current)

    def render(self, max_depth: int | None = None, indent: str = "") -> str:
        """Human-readable multi-line rendering (used to print Figure 1)."""
        lines = [f"{indent}{self.mark!r}"]
        if max_depth is None or max_depth > 1:
            next_depth = None if max_depth is None else max_depth - 1
            for child in self.children:
                lines.append(child.render(next_depth, indent + "  "))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ViewTree(mark={self.mark!r}, depth={self.depth}, size={self.size})"


_MAKE_TOKEN = object()


def clear_caches() -> None:
    """Empty the intern/rank tables, then delegate every producer memo
    (refinement results, view builders, quotients, encoded payloads) to
    the artifact store's memory tier — one eviction path for everything
    that may hold interned trees (plus any legacy hooks).

    Intended for long benchmark sessions so parametrized cases don't
    accumulate unbounded interned trees.  Trees created *before* a clear
    must not be mixed with trees created after it (their ranks refer to
    the discarded tables); clear only between independent workloads.

    The one cache deliberately *not* cleared is the per-instance CSR
    mirror (``LabeledGraph._csr``): it is identity-keyed on the graph
    instance, holds flat int arrays and no interned trees (so it cannot
    dangle across an interning epoch), and is garbage-collected with its
    graph — clearing it would only force rebuilds.  See
    ``docs/PERFORMANCE.md``.
    """
    _INTERN.clear()
    _TRUNCATE_CACHE.clear()
    _MARK_ID_BY_FROZEN.clear()
    _MARK_ID_BY_KEY.clear()
    _MARK_KEYS.clear()
    _MARK_RANK.clear()
    _MARK_SORTED_KEYS.clear()
    _MARK_SORTED_IDS.clear()
    _BUCKETS.clear()
    _STATS["mark_renumbers"] = 0
    _STATS["bucket_shifts"] = 0
    # Lazy import: this module loads before the artifact layer does.
    from repro.artifacts.store import clear_memory_tier

    clear_memory_tier()
    for hook in _CACHE_CLEAR_HOOKS:
        hook()


def intern_stats() -> dict[str, int]:
    """Sizes of the intern/rank tables (for perf diagnostics)."""
    return {
        "trees": len(_INTERN),
        "marks": len(_MARK_KEYS),
        "buckets": len(_BUCKETS),
        "max_bucket": max((len(b) for b in _BUCKETS.values()), default=0),
        "truncations": len(_TRUNCATE_CACHE),
        "mark_renumbers": _STATS["mark_renumbers"],
        "bucket_shifts": _STATS["bucket_shifts"],
    }


def view_to_dict(tree: ViewTree) -> dict:
    """A JSON-compatible description of a view tree.

    Marks must be JSON-representable (the same constraint as
    :mod:`repro.graphs.io`, whose encoding is reused); shared subtrees
    are expanded, so this is meant for figure-sized views, not for
    depth-n views of large graphs.
    """
    from repro.graphs.io import _encode

    return {
        "mark": _encode(tree.mark),
        "children": [view_to_dict(child) for child in tree.children],
    }


def view_from_dict(data: dict) -> ViewTree:
    """Rebuild an interned view tree from :func:`view_to_dict` output."""
    from repro.graphs.io import _decode

    children = [view_from_dict(child) for child in data["children"]]
    return ViewTree.make(_decode(data["mark"]), children)
