"""Artifact keys: ``sha256(code fingerprint ␟ canonical spec JSON)``.

The key discipline is the experiment fabric's (:mod:`repro.experiments.
fabric`): material fields joined with the unit separator ``\\x1f`` and
digested with SHA-256, with the PR-7 code fingerprint as the leading
component.  A spec is a plain JSON object that *must* carry a ``kind``
and fully describes the question (graphs are embedded via
:func:`repro.graphs.io.graph_to_dict`, so keys depend on structure, not
on instance identity).  Because the fingerprint covers every source file
of the package, any code change — even a comment — rotates every key:
stale store entries degrade to cache misses, never to wrong answers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.exceptions import ArtifactError

__all__ = ["artifact_key", "canonical_spec", "payload_digest"]

_SEP = "\x1f"


def canonical_spec(spec: "dict[str, Any]") -> str:
    """One canonical JSON line for a spec (sorted keys, no whitespace) —
    byte-identical to the fabric's spec canonicalization."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def artifact_key(spec: "dict[str, Any]", fingerprint: "str | None" = None) -> str:
    """The content address of the artifact described by ``spec``.

    ``fingerprint`` defaults to the current tree's
    :func:`repro.experiments.fingerprint.code_fingerprint` (imported
    lazily: this module is loaded during the view layer's own import).
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ArtifactError(f"artifact spec must be a dict with a 'kind': {spec!r}")
    if fingerprint is None:
        from repro.experiments.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
    material = _SEP.join([fingerprint, canonical_spec(spec)])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def payload_digest(payload: bytes) -> str:
    """SHA-256 hex digest of an encoded payload (stored alongside it so
    ``verify`` can detect byte rot independently of re-encoding)."""
    return hashlib.sha256(payload).hexdigest()
