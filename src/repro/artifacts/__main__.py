"""``python -m repro.artifacts`` — operate on artifact stores.

Subcommands:

* ``status``  — tier sizes and hit/miss counters, persistent record
  counts by kind, and how many records carry the *current* code
  fingerprint (stale records are reachable only as cache misses).
* ``gc``      — drop persistent records whose fingerprint differs from
  ``--keep-fingerprint`` (default: the current tree's), via an atomic
  rewrite (:func:`repro.experiments.store.rewrite_store`).
* ``verify``  — decode and re-encode a deterministic sample of records
  and compare payload bytes and digests; exit 1 on any mismatch.
* ``gate``    — the artifacts-smoke differential gate (see
  :mod:`repro.artifacts.gate`).

All output lines are stable and grep-friendly (CI parses ``status`` and
the gate summary).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.artifacts.keys import payload_digest
from repro.artifacts.store import memory_stats
from repro.exceptions import ReproError

_STATUS_USES_PRODUCERS = (
    "repro.artifacts.producers"  # imported for bucket registration, see _cmd_status
)


def _scan(path: str) -> "dict[str, dict[str, Any]]":
    from repro.experiments.store import scan_store

    return scan_store(path)


def _cmd_status(args: "argparse.Namespace") -> int:
    # Importing the producers registers every library bucket, so the
    # memory-tier listing shows the full kind set (counters are
    # process-local and therefore zero in a fresh CLI process; the
    # long-lived service reports live ones through its stats()).
    import importlib

    importlib.import_module(_STATUS_USES_PRODUCERS)
    from repro.experiments.fingerprint import code_fingerprint

    records = _scan(args.store)
    fingerprint = code_fingerprint()
    current = sum(1 for r in records.values() if r.get("fingerprint") == fingerprint)
    by_kind: "dict[str, int]" = {}
    for record in records.values():
        kind = record.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    print(
        f"artifacts-status store={args.store} records={len(records)} "
        f"current={current} stale={len(records) - current} "
        f"fingerprint={fingerprint[:12]}"
    )
    for kind in sorted(by_kind):
        print(f"  kind {kind}: {by_kind[kind]} record(s)")
    for kind, stats in memory_stats().items():
        print(
            f"  memory {kind}: size={stats['size']}/{stats['capacity']} "
            f"hits={stats['hits']} misses={stats['misses']} "
            f"evictions={stats['evictions']}"
        )
    return 0


def _cmd_gc(args: "argparse.Namespace") -> int:
    from repro.experiments.fingerprint import code_fingerprint
    from repro.experiments.store import rewrite_store

    keep = args.keep_fingerprint or code_fingerprint()
    records = _scan(args.store)
    kept = {
        key: record
        for key, record in records.items()
        if record.get("fingerprint") == keep
    }
    dropped = len(records) - len(kept)
    if dropped and not args.dry_run:
        rewrite_store(args.store, kept)
    print(
        f"artifacts-gc store={args.store} kept={len(kept)} dropped={dropped} "
        f"keep_fingerprint={keep[:12]}{' (dry run)' if args.dry_run else ''}"
    )
    return 0


def _cmd_verify(args: "argparse.Namespace") -> int:
    from repro.artifacts.encoders import encoder_for

    records = _scan(args.store)
    keys = sorted(records)
    if args.sample and args.sample < len(keys):
        # Deterministic sample: every k-th key of the sorted order.
        step = len(keys) // args.sample
        keys = keys[:: max(step, 1)][: args.sample]
    mismatches = 0
    for key in keys:
        record = records[key]
        payload = record["payload"].encode("utf-8")
        if payload_digest(payload) != record.get("digest"):
            mismatches += 1
            print(f"artifacts-verify MISMATCH digest key={key[:12]}…")
            continue
        try:
            encoder = encoder_for(record["kind"])
            reencoded = encoder.encode(encoder.decode(payload))
        except ReproError as exc:
            mismatches += 1
            print(f"artifacts-verify MISMATCH decode key={key[:12]}…: {exc}")
            continue
        if reencoded != payload:
            mismatches += 1
            print(f"artifacts-verify MISMATCH re-encode key={key[:12]}…")
    print(
        f"artifacts-verify store={args.store} checked={len(keys)} "
        f"of={len(records)} mismatches={mismatches}"
    )
    return 1 if mismatches else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.artifacts")
    commands = parser.add_subparsers(dest="command", required=True)

    status = commands.add_parser("status", help="tier sizes and counters")
    status.add_argument("--store", default="benchmarks/out/ARTIFACTS_store.jsonl")

    gc = commands.add_parser("gc", help="drop records from other fingerprints")
    gc.add_argument("--store", default="benchmarks/out/ARTIFACTS_store.jsonl")
    gc.add_argument(
        "--keep-fingerprint",
        nargs="?",
        const="",
        default="",
        help="fingerprint to keep (default: the current tree's)",
    )
    gc.add_argument("--dry-run", action="store_true")

    verify = commands.add_parser("verify", help="re-encode a sample, compare digests")
    verify.add_argument("--store", default="benchmarks/out/ARTIFACTS_store.jsonl")
    verify.add_argument(
        "--sample", type=int, default=0, help="check only N records (0 = all)"
    )

    gate = commands.add_parser("gate", help="artifacts-smoke differential gate")
    gate.add_argument("--store", default="benchmarks/out/ARTIFACTS_store.jsonl")
    gate.add_argument("--out", default="benchmarks/out")

    args = parser.parse_args(argv)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "gc":
        return _cmd_gc(args)
    if args.command == "verify":
        return _cmd_verify(args)
    from repro.artifacts.gate import run_gate

    return run_gate(args.store, args.out)


if __name__ == "__main__":
    sys.exit(main())
