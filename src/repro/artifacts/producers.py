"""Producers: the ``spec -> live object`` compute side of the store.

One producer per artifact kind, each a thin adapter from a spec (see
:mod:`repro.artifacts.specs`) onto the library function that actually
computes the object — so a cache miss runs exactly the code a direct
call would, including the library's own memory-tier memos.

:func:`compute_payload` composes a producer with its canonical encoder;
it is the single compute entry point shared by the synchronous store,
the asyncio service's fan-out workers and the artifacts-smoke gate's
direct-computation reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.artifacts.encoders import encoder_for, project_pipeline
from repro.exceptions import ArtifactError
from repro.factor.quotient import infinite_view_graph
from repro.graphs.io import _decode, graph_from_dict
from repro.views.local_views import all_views, view
from repro.views.refinement import color_refinement

__all__ = [
    "ArtifactProducer",
    "compute_artifact",
    "compute_payload",
    "producer_for",
]


@dataclass(frozen=True)
class ArtifactProducer:
    kind: str
    compute: "Callable[[dict[str, Any]], Any]"


def _graph_of(spec: "dict[str, Any]"):
    try:
        return graph_from_dict(spec["graph"])
    except KeyError:
        raise ArtifactError(f"spec for kind {spec.get('kind')!r} lacks a 'graph'") from None


def _compute_refinement(spec: "dict[str, Any]") -> Any:
    return color_refinement(_graph_of(spec))


def _compute_views(spec: "dict[str, Any]") -> Any:
    return all_views(_graph_of(spec), spec["depth"])


def _compute_view_tree(spec: "dict[str, Any]") -> Any:
    return view(_graph_of(spec), _decode(spec["node"]), spec["depth"])


def _compute_quotient(spec: "dict[str, Any]") -> Any:
    return infinite_view_graph(_graph_of(spec), with_views=spec["with_views"])


def _compute_dynamic_views(spec: "dict[str, Any]") -> Any:
    # Lazy import: the dynamic subsystem sits above the artifact layer.
    from repro.dynamic.delta import Delta
    from repro.dynamic.maintain import replay_views

    try:
        base = graph_from_dict(spec["base"])
    except KeyError:
        raise ArtifactError("spec for kind 'dynamic-views' lacks a 'base'") from None
    deltas = [Delta.from_dict(payload) for payload in spec.get("deltas", ())]
    return replay_views(base, deltas, spec["depth"])


def _compute_derandomized_run(spec: "dict[str, Any]") -> Any:
    # Bundles live behind the experiment registry; import lazily so the
    # artifact layer does not pull the whole experiments package in for
    # view/quotient traffic.
    from repro.core.derandomize import derandomize_pipeline
    from repro.experiments.theorems import _bundles

    bundles = _bundles()
    problem = spec["problem"]
    if problem not in bundles:
        raise ArtifactError(
            f"unknown GRAN bundle {problem!r}; known: {', '.join(sorted(bundles))}"
        )
    instance = _graph_of(spec)
    result = derandomize_pipeline(
        bundles[problem],
        instance,
        seed=spec["seed"],
        strategy=spec.get("strategy", "lexicographic"),
        max_assignment_length=spec.get("max_assignment_length", 64),
    )
    return project_pipeline(instance, result)


_PRODUCERS: "dict[str, ArtifactProducer]" = {
    "refinement": ArtifactProducer("refinement", _compute_refinement),
    "views": ArtifactProducer("views", _compute_views),
    "view-tree": ArtifactProducer("view-tree", _compute_view_tree),
    "quotient": ArtifactProducer("quotient", _compute_quotient),
    "dynamic-views": ArtifactProducer("dynamic-views", _compute_dynamic_views),
    "derandomized-run": ArtifactProducer(
        "derandomized-run", _compute_derandomized_run
    ),
}


def producer_for(kind: str) -> ArtifactProducer:
    try:
        return _PRODUCERS[kind]
    except KeyError:
        raise ArtifactError(
            f"no producer for artifact kind {kind!r}; known: "
            f"{', '.join(sorted(_PRODUCERS))}"
        ) from None


def compute_artifact(spec: "dict[str, Any]") -> Any:
    """The live object a spec describes (runs the library function)."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ArtifactError(f"artifact spec must be a dict with a 'kind': {spec!r}")
    return producer_for(spec["kind"]).compute(spec)


def compute_payload(spec: "dict[str, Any]") -> bytes:
    """The canonical payload bytes for a spec: compute, then encode."""
    return encoder_for(spec["kind"]).encode(compute_artifact(spec))
