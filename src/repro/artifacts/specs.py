"""Spec builders: the JSON descriptions behind artifact keys.

A spec fully describes one canonical question: the kind, the instance
(embedded with :func:`repro.graphs.io.graph_to_dict`, so the address
depends on graph *structure*, never on instance identity) and the
question's parameters.  Producers answer specs; keys digest them.  Keep
these builders in sync with :mod:`repro.artifacts.producers` — every
spec field is key material, so renaming one rotates addresses exactly
like a code change would (harmless, but deliberate-only).
"""

from __future__ import annotations

from typing import Any

from repro.graphs.io import _encode, graph_to_dict
from repro.graphs.labeled_graph import LabeledGraph, Node

__all__ = [
    "derandomized_run_spec",
    "dynamic_views_spec",
    "quotient_spec",
    "refinement_spec",
    "view_tree_spec",
    "views_spec",
]


def refinement_spec(graph: LabeledGraph) -> "dict[str, Any]":
    """Stable color refinement of ``graph`` (uncapped runs only: capped
    runs observe transient partitions and are not artifacts)."""
    return {"kind": "refinement", "graph": graph_to_dict(graph)}


def views_spec(graph: LabeledGraph, depth: int) -> "dict[str, Any]":
    """All depth-``depth`` views ``L_depth(v, graph)``."""
    return {"kind": "views", "depth": int(depth), "graph": graph_to_dict(graph)}


def view_tree_spec(graph: LabeledGraph, node: Node, depth: int) -> "dict[str, Any]":
    """The single view ``L_depth(node, graph)``."""
    return {
        "kind": "view-tree",
        "node": _encode(node),
        "depth": int(depth),
        "graph": graph_to_dict(graph),
    }


def quotient_spec(graph: LabeledGraph, with_views: bool = False) -> "dict[str, Any]":
    """The view quotient ``G_∞`` (``with_views`` adds the canonical
    depth-``n`` node aliases, i.e. ``G_*``)."""
    return {
        "kind": "quotient",
        "with_views": bool(with_views),
        "graph": graph_to_dict(graph),
    }


def dynamic_views_spec(
    base: LabeledGraph, deltas: "Any", depth: int
) -> "dict[str, Any]":
    """The depth-``depth`` views after replaying a delta log over a base
    graph (see :mod:`repro.dynamic`).  The log is key material: every
    applied delta rotates the address, so incremental view state is
    invalidated by churn exactly like a code change would invalidate a
    stale store."""
    return {
        "kind": "dynamic-views",
        "depth": int(depth),
        "base": graph_to_dict(base),
        "deltas": [delta.as_dict() for delta in deltas],
    }


def derandomized_run_spec(
    problem: str,
    graph: LabeledGraph,
    seed: int,
    strategy: str = "lexicographic",
    max_assignment_length: int = 64,
) -> "dict[str, Any]":
    """One two-stage derandomization pipeline run.  ``problem`` names a
    GRAN bundle from the experiment registry (``mis``, ``coloring``,
    ``2-hop-coloring``, ``matching``); ``seed`` drives stage 1 only."""
    return {
        "kind": "derandomized-run",
        "problem": problem,
        "seed": int(seed),
        "strategy": strategy,
        "max_assignment_length": int(max_assignment_length),
        "graph": graph_to_dict(graph),
    }
