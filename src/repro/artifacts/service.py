"""The asyncio artifact service: batched, deduplicated canonical serving.

This is the "millions of users" front-end from the ROADMAP: most traffic
is cache hits on content keys (memory bucket, then the persistent JSONL
tier); identical in-flight requests collapse onto one pending future;
misses are collected into batches and fanned out to the PR-2 experiment
executor (:func:`repro.experiments.runner.execute_tasks` — process pool
with graceful serial degradation) off the event-loop thread.

Concurrency story: the event loop is single-threaded, so every tier
check, in-flight registration and batch hand-off happens without locks;
the only work leaving the loop thread is the compute itself, via
``run_in_executor``.  That is what makes the dedup contract exact: N
concurrent ``get``\\ s of one key perform exactly one compute, because
the key's future is registered before the loop ever yields.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from typing import Any, Callable

from repro.artifacts.keys import artifact_key, canonical_spec
from repro.artifacts.store import ArtifactStore
from repro.exceptions import ArtifactError, ReproError

__all__ = ["ArtifactService", "serve_all"]

# Prepared-request memo size: clients that resubmit the same spec object
# (retry loops, steady-state pollers, the perf suite's warm phase) skip
# re-canonicalizing and re-hashing it — key derivation is O(spec bytes),
# which for embedded graphs dominates a memory hit.  Entries hold the
# spec strongly, so an id cannot be recycled while its memo entry lives.
_KEY_MEMO_CAPACITY = 256


def _service_worker(payload: "tuple[str, str]") -> "tuple[str, dict[str, str]]":
    """Process-pool entry point: compute one payload from its spec JSON.

    Top-level (picklable); errors are returned as data so one poisoned
    spec fails its own future, not the whole batch.
    """
    key, spec_json = payload
    from repro.artifacts.producers import compute_payload

    try:
        return key, {"ok": compute_payload(json.loads(spec_json)).decode("utf-8")}
    except ReproError as exc:
        return key, {"error": f"{type(exc).__name__}: {exc}"}


class ArtifactService:
    """Serve artifact payloads by spec, with batching and in-flight dedup.

    ``jobs=1`` computes batches serially on a worker thread (the default:
    view/refinement computes are far cheaper than process spin-up);
    ``jobs>1`` fans each batch out through ``execute_tasks``.  ``compute``
    overrides the serial compute function (tests inject counters).
    """

    def __init__(
        self,
        store: "ArtifactStore | None" = None,
        *,
        jobs: int = 1,
        max_batch: int = 32,
        compute: "Callable[[dict[str, Any]], bytes] | None" = None,
    ) -> None:
        if jobs < 1:
            raise ArtifactError(f"service jobs must be >= 1, got {jobs}")
        if max_batch < 1:
            raise ArtifactError(f"service max_batch must be >= 1, got {max_batch}")
        self.store = store if store is not None else ArtifactStore()
        self.jobs = jobs
        self.max_batch = max_batch
        self._compute = compute
        self._spec_keys: "OrderedDict[int, tuple[dict[str, Any], str]]" = OrderedDict()
        self._inflight: "dict[str, asyncio.Future[bytes]]" = {}
        self._pending: "list[tuple[str, dict[str, Any], asyncio.Future[bytes]]]" = []
        self._draining = False
        self.counters = {
            "requests": 0,
            "hits": 0,
            "dedup_hits": 0,
            "computes": 0,
            "batches": 0,
            "errors": 0,
        }

    # -- front-end ------------------------------------------------------

    def _key_of(self, spec: "dict[str, Any]") -> str:
        """``artifact_key``, memoized per spec *object* (prepared
        requests): resubmitting the same dict skips canonicalization."""
        memo = self._spec_keys
        entry = memo.get(id(spec))
        if entry is not None and entry[0] is spec:
            memo.move_to_end(id(spec))
            return entry[1]
        key = artifact_key(spec)
        memo[id(spec)] = (spec, key)
        if len(memo) > _KEY_MEMO_CAPACITY:
            memo.popitem(last=False)
        return key

    async def get(self, spec: "dict[str, Any]") -> bytes:
        """The canonical payload for ``spec`` (hit, join, or compute)."""
        self.counters["requests"] += 1
        key = self._key_of(spec)
        payload = self.store.lookup(key)
        if payload is not None:
            self.counters["hits"] += 1
            return payload
        pending = self._inflight.get(key)
        if pending is not None:
            self.counters["dedup_hits"] += 1
            return await asyncio.shield(pending)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[bytes]" = loop.create_future()
        self._inflight[key] = future
        self._pending.append((key, spec, future))
        if not self._draining:
            self._draining = True
            loop.create_task(self._drain())
        return await asyncio.shield(future)

    async def get_many(self, specs: "list[dict[str, Any]]") -> "list[bytes]":
        """All payloads, in request order (the batching entry point: the
        whole list enqueues before the first batch is cut)."""
        return list(await asyncio.gather(*(self.get(spec) for spec in specs)))

    def stats(self) -> "dict[str, Any]":
        return {"service": dict(self.counters), "store": self.store.stats()}

    # -- batch back-end -------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while self._pending:
                # Yield once so every request already scheduled on this
                # loop tick lands in the queue before the batch is cut.
                await asyncio.sleep(0)
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
                self.counters["batches"] += 1
                outcomes = await loop.run_in_executor(
                    None, self._compute_batch, batch
                )
                for (key, spec, future), outcome in zip(batch, outcomes):
                    self._inflight.pop(key, None)
                    if future.cancelled():
                        continue
                    if "ok" in outcome:
                        future.set_result(outcome["ok"].encode("utf-8"))
                    else:
                        self.counters["errors"] += 1
                        future.set_exception(ArtifactError(outcome["error"]))
        finally:
            self._draining = False

    def _compute_batch(
        self, batch: "list[tuple[str, dict[str, Any], Any]]"
    ) -> "list[dict[str, str]]":
        """Compute one batch on the executor thread; persist as results
        land so a crash mid-batch keeps its completed members."""
        self.counters["computes"] += len(batch)
        outcomes: "dict[str, dict[str, str]]" = {}
        if self.jobs == 1:
            compute = self._compute
            if compute is None:
                from repro.artifacts.producers import compute_payload

                compute = compute_payload
            for key, spec, _future in batch:
                try:
                    outcomes[key] = {"ok": compute(spec).decode("utf-8")}
                except ReproError as exc:
                    outcomes[key] = {"error": f"{type(exc).__name__}: {exc}"}
        else:
            payloads = [(key, canonical_spec(spec)) for key, spec, _ in batch]
            results, _modes, _fallback = _execute(payloads, self.jobs)
            outcomes = dict(results)
        specs = {key: spec for key, spec, _ in batch}
        for key, outcome in outcomes.items():
            if "ok" in outcome:
                self.store.persist(key, specs[key], outcome["ok"].encode("utf-8"))
        return [
            outcomes.get(key, {"error": f"no outcome for key {key[:12]}…"})
            for key, _spec, _future in batch
        ]


def _execute(payloads: "list[tuple[str, str]]", jobs: int):
    from repro.experiments.runner import execute_tasks

    return execute_tasks(payloads, _service_worker, jobs=jobs, ordered=False)


def serve_all(
    specs: "list[dict[str, Any]]",
    store: "ArtifactStore | None" = None,
    *,
    jobs: int = 1,
    max_batch: int = 32,
) -> "tuple[list[bytes], dict[str, Any]]":
    """Synchronous convenience: run one service over ``specs`` on a fresh
    event loop, returning payloads in request order plus the service
    stats (the gate and the perf suite drive this)."""
    service = ArtifactService(store, jobs=jobs, max_batch=max_batch)

    async def _run() -> "list[bytes]":
        return await service.get_many(specs)

    payloads = asyncio.run(_run())
    return payloads, service.stats()
