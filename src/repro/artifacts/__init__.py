"""Content-addressed artifacts: one cache discipline for every canonical object.

Every canonical object this library produces — view trees, per-node view
maps, refinement partitions, quotients (``G_∞``/``G_*``), derandomized
pipeline runs — is a pure function of ``(code, spec)``: the source tree
plus a JSON description of the question.  This package gives all of them
one SHA-256-keyed address space and one cache story:

* :mod:`repro.artifacts.keys` — ``sha256(code fingerprint ␟ canonical
  spec JSON)`` keys, the same discipline as the experiment fabric's task
  keys, so any source change rotates every key and a stale entry is a
  cache miss, never a wrong answer.
* :mod:`repro.artifacts.encoders` — canonical byte encoders per artifact
  kind (integer/string arithmetic only; lint rule ``WALL001`` covers
  them).
* :mod:`repro.artifacts.store` — the memory tier (the per-kind LRU
  buckets that back the library's own memos) plus an optional fsync'd
  JSONL persistent tier built on :mod:`repro.experiments.store`.
* :mod:`repro.artifacts.producers` — ``spec -> live object`` compute
  functions, one per kind, used by cache misses and direct computation.
* :mod:`repro.artifacts.service` — the asyncio front-end: request
  batching, in-flight dedup of identical keys, miss fan-out to the
  experiment executor.

This module stays import-light on purpose: the view/factor producers
import :mod:`repro.artifacts.store` at module load, so nothing here may
pull in the heavier layers (encoders, producers, experiments).
"""

from repro.artifacts.keys import artifact_key, payload_digest
from repro.artifacts.store import (
    ArtifactStore,
    MemoryBucket,
    clear_memory_tier,
    memory_bucket,
    memory_stats,
    note_artifact,
    record_artifact_keys,
)

__all__ = [
    "ArtifactStore",
    "MemoryBucket",
    "artifact_key",
    "clear_memory_tier",
    "memory_bucket",
    "memory_stats",
    "note_artifact",
    "payload_digest",
    "record_artifact_keys",
]
