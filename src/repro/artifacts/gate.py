"""The artifacts-smoke gate: cold/warm serving vs direct computation.

CI's differential contract for the artifact layer, mirroring the fault
subsystem's zero-fault gate: build the registry-wide view/quotient
query mix (three queries per experiment id), compute every payload
*directly* (library calls, no store),
then serve the same mix through the asyncio service twice against one
persistent store file —

* **cold**: fresh store file, cleared memory tier → every *distinct*
  key must miss and compute exactly once (duplicate queries in the mix
  hit the just-stored payload — that is the cache working, and the
  payloads still have to match the direct reference byte for byte);
* **warm**: the store file reopened in a logically fresh process state
  (memory tier cleared again) → every query must be served from the
  persistent tier (``computes == 0``, hit rate 100%).

All three payload sets are written as canonical JSON files so CI can
``cmp`` them byte for byte; any divergence, or a warm compute, fails the
gate.  Exit codes: 0 ok, 1 differential or hit-rate failure.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.artifacts.keys import artifact_key
from repro.artifacts.producers import compute_payload
from repro.artifacts.service import serve_all
from repro.artifacts.specs import quotient_spec, refinement_spec, views_spec
from repro.artifacts.store import ArtifactStore
from repro.views.view_tree import clear_caches

__all__ = ["build_query_mix", "main", "run_gate"]

# Family pool the experiments draw from; each experiment id picks one
# deterministically (seed-derived, position-independent).
_GATE_SIZES = (4, 6, 8)
_GATE_SEED = 7
_VIEW_DEPTH_CAP = 6


def build_query_mix() -> "list[dict[str, Any]]":
    """Three queries (refinement, views, quotient) per registry
    experiment, on a 2-hop colored family instance chosen per experiment
    id — the registry's full breadth without its full cost."""
    from repro.analysis.sweeps import standard_family_specs
    from repro.experiments import all_experiment_ids
    from repro.experiments.runner import derive_seed
    from repro.graphs.coloring import apply_two_hop_coloring, greedy_two_hop_coloring

    pool = standard_family_specs(
        sizes=_GATE_SIZES, include_random=True, seed=_GATE_SEED
    )
    queries: "list[dict[str, Any]]" = []
    for experiment_id in all_experiment_ids():
        family = pool[derive_seed(experiment_id) % len(pool)]
        graph = family.build()
        graph = apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))
        queries.append(refinement_spec(graph))
        queries.append(views_spec(graph, min(graph.num_nodes, _VIEW_DEPTH_CAP)))
        queries.append(quotient_spec(graph, with_views=False))
    return queries


def _write_payloads(
    path: Path, queries: "list[dict[str, Any]]", payloads: "list[bytes]"
) -> None:
    """One canonical JSON file per serving mode, ``cmp``-able across
    modes because entries are (key, payload) in request order."""
    entries = [
        {"key": artifact_key(spec), "kind": spec["kind"], "payload": payload.decode("utf-8")}
        for spec, payload in zip(queries, payloads)
    ]
    text = json.dumps(
        {"format": 1, "queries": entries}, sort_keys=True, separators=(",", ":")
    )
    path.write_text(text + "\n", encoding="utf-8")


def run_gate(store_path: "str | Path", out_dir: "str | Path" = ".") -> int:
    """Run the gate; returns a process exit code and prints the stable
    ``artifacts-smoke`` summary line CI greps."""
    store_file = Path(store_path)
    store_file.parent.mkdir(parents=True, exist_ok=True)
    output = Path(out_dir)
    output.mkdir(parents=True, exist_ok=True)
    queries = build_query_mix()

    # Direct reference: library calls only, no store in the path.
    clear_caches()
    direct = [compute_payload(spec) for spec in queries]
    _write_payloads(output / "ARTIFACTS_direct.json", queries, direct)

    # Cold: fresh store file, cleared memory — every query computes.
    if store_file.exists():
        store_file.unlink()
    clear_caches()
    cold, cold_stats = serve_all(queries, ArtifactStore(store_file))
    _write_payloads(output / "ARTIFACTS_cold.json", queries, cold)

    # Warm: reopen the same file with a cleared memory tier — every
    # query must land in the persistent tier, zero computes.
    clear_caches()
    warm, warm_stats = serve_all(queries, ArtifactStore(store_file))
    _write_payloads(output / "ARTIFACTS_warm.json", queries, warm)

    failures: "list[str]" = []
    if cold != direct:
        failures.append("cold payloads diverge from direct computation")
    if warm != direct:
        failures.append("warm payloads diverge from direct computation")
    distinct = len({artifact_key(spec) for spec in queries})
    cold_computes = cold_stats["service"]["computes"]
    if cold_computes != distinct:
        failures.append(
            f"cold run computed {cold_computes}, expected one per distinct "
            f"key ({distinct})"
        )
    warm_computes = warm_stats["service"]["computes"]
    warm_hits = warm_stats["service"]["hits"]
    if warm_computes != 0 or warm_hits != len(queries):
        failures.append(
            f"warm run hit {warm_hits}/{len(queries)} with {warm_computes} computes"
        )
    for failure in failures:
        print(f"artifacts-smoke FAIL: {failure}")
    print(
        f"artifacts-smoke {'ok' if not failures else 'FAILED'}: "
        f"queries={len(queries)} distinct={distinct} "
        f"cold_computes={cold_computes} warm_hits={warm_hits} "
        f"warm_computes={warm_computes} store={store_file}"
    )
    return 1 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.artifacts gate", description=__doc__
    )
    parser.add_argument(
        "--store",
        default="benchmarks/out/ARTIFACTS_store.jsonl",
        help="persistent store file",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/out",
        help="directory for the three payload JSON files",
    )
    args = parser.parse_args(argv)
    return run_gate(args.store, args.out)
