"""Canonical byte encoders, one per artifact kind.

Every payload is one canonical JSON line (sorted keys, no whitespace,
UTF-8) so equality of artifacts is byte equality of payloads — the same
property the A* total order and the golden differential suite rest on.
Lint rule ``WALL001`` covers this module: integer and string arithmetic
only, no clocks, no floats, no true division.

View trees are hash-consed DAGs whose expanded size is exponential, so
the tree encoders serialize the *DAG*: a pool of ``[mark, [child pool
indices]]`` entries in first-completed postorder (children always
precede parents) plus root indices.  Decoding rebuilds bottom-up through
:meth:`ViewTree.make`, which re-interns — so decode∘encode is the
identity on payload bytes, the property ``verify`` checks.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Callable

from repro.exceptions import ArtifactError
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.quotient import QuotientResult
from repro.graphs.io import _decode, _encode, graph_from_dict, graph_to_dict
from repro.graphs.labeled_graph import Node, _sort_key
from repro.views.refinement import RefinementResult
from repro.views.view_tree import ViewTree

__all__ = [
    "ArtifactEncoder",
    "PAYLOAD_FORMAT",
    "artifact_kinds",
    "canonical_bytes",
    "encoder_for",
    "project_pipeline",
]

PAYLOAD_FORMAT = 1


def canonical_bytes(record: "dict[str, Any]") -> bytes:
    """One canonical JSON line, encoded — the only byte producer here."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _record_of(payload: bytes, kind: str) -> "dict[str, Any]":
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ArtifactError(f"undecodable {kind} payload: {exc}") from None
    if not isinstance(record, dict) or record.get("kind") != kind:
        raise ArtifactError(
            f"payload is not a {kind!r} record: kind={record.get('kind')!r}"
            if isinstance(record, dict)
            else "payload is not a record object"
        )
    if record.get("format") != PAYLOAD_FORMAT:
        raise ArtifactError(
            f"unsupported {kind} payload format {record.get('format')!r}; "
            f"expected {PAYLOAD_FORMAT}"
        )
    return record


# -- view-tree DAG pools ------------------------------------------------


def _pool_of(roots: "Sequence[ViewTree]") -> "tuple[list[list[Any]], list[int]]":
    """Serialize interned trees as a shared pool.

    Entries are ``[encoded mark, [child indices]]`` with every child
    index smaller than its parent's (postorder).  Interning makes the
    pool duplicate-free, and the traversal order is a pure function of
    the root sequence and the canonical child order — so re-encoding a
    decoded payload reproduces the pool exactly.
    """
    index: "dict[int, int]" = {}
    pool: "list[list[Any]]" = []
    for root in roots:
        stack: "list[tuple[ViewTree, bool]]" = [(root, False)]
        while stack:
            tree, ready = stack.pop()
            if id(tree) in index:
                continue
            if ready:
                entry = [_encode(tree.mark), [index[id(child)] for child in tree.children]]
                index[id(tree)] = len(pool)
                pool.append(entry)
            else:
                stack.append((tree, True))
                for child in reversed(tree.children):
                    if id(child) not in index:
                        stack.append((child, False))
    return pool, [index[id(root)] for root in roots]


def _trees_of(pool: "Sequence[Sequence[Any]]") -> "list[ViewTree]":
    """Rebuild (and re-intern) the pool bottom-up."""
    trees: "list[ViewTree]" = []
    for position, entry in enumerate(pool):
        try:
            mark_encoded, child_indices = entry
            children = [trees[child] for child in child_indices]
        except (ValueError, TypeError, IndexError) as exc:
            raise ArtifactError(f"malformed view pool entry {position}: {exc}") from None
        trees.append(ViewTree.make(_decode(mark_encoded), children))
    return trees


# -- kind encoders ------------------------------------------------------


def encode_view_tree(tree: ViewTree) -> bytes:
    pool, roots = _pool_of([tree])
    return canonical_bytes(
        {"format": PAYLOAD_FORMAT, "kind": "view-tree", "pool": pool, "root": roots[0]}
    )


def decode_view_tree(payload: bytes) -> ViewTree:
    record = _record_of(payload, "view-tree")
    return _trees_of(record["pool"])[record["root"]]


def _encode_node_views(views: "Mapping[Node, ViewTree]", kind: str) -> bytes:
    nodes = sorted(views, key=_sort_key)
    pool, roots = _pool_of([views[v] for v in nodes])
    return canonical_bytes(
        {
            "format": PAYLOAD_FORMAT,
            "kind": kind,
            "nodes": [_encode(v) for v in nodes],
            "pool": pool,
            "roots": roots,
        }
    )


def _decode_node_views(payload: bytes, kind: str) -> "dict[Node, ViewTree]":
    record = _record_of(payload, kind)
    trees = _trees_of(record["pool"])
    return {
        _decode(node): trees[root]
        for node, root in zip(record["nodes"], record["roots"])
    }


def encode_views(views: "Mapping[Node, ViewTree]") -> bytes:
    return _encode_node_views(views, "views")


def decode_views(payload: bytes) -> "dict[Node, ViewTree]":
    return _decode_node_views(payload, "views")


def encode_dynamic_views(views: "Mapping[Node, ViewTree]") -> bytes:
    """Churn-replayed view maps share the per-node DAG-pool layout of
    plain ``views`` payloads; only the kind tag differs (their specs —
    and so their addresses — embed the delta log, see
    :func:`repro.artifacts.specs.dynamic_views_spec`)."""
    return _encode_node_views(views, "dynamic-views")


def decode_dynamic_views(payload: bytes) -> "dict[Node, ViewTree]":
    return _decode_node_views(payload, "dynamic-views")


def encode_refinement(result: RefinementResult) -> bytes:
    nodes = sorted(result.classes, key=_sort_key)
    return canonical_bytes(
        {
            "format": PAYLOAD_FORMAT,
            "kind": "refinement",
            "nodes": [_encode(v) for v in nodes],
            "colors": [result.classes[v] for v in nodes],
            "rounds": result.rounds_to_stable,
            "history": list(result.history),
            "stable": result.stable,
        }
    )


def decode_refinement(payload: bytes) -> RefinementResult:
    record = _record_of(payload, "refinement")
    classes = dict(
        zip((_decode(v) for v in record["nodes"]), record["colors"])
    )
    return RefinementResult(
        classes=MappingProxyType(classes),
        rounds_to_stable=record["rounds"],
        history=tuple(record["history"]),
        stable=record["stable"],
    )


def encode_quotient(result: QuotientResult) -> bytes:
    source = result.map.product
    mapping = result.map.as_dict()
    record: "dict[str, Any]" = {
        "format": PAYLOAD_FORMAT,
        "kind": "quotient",
        "source": graph_to_dict(source),
        "graph": graph_to_dict(result.graph),
        "map": [[_encode(v), mapping[v]] for v in source.nodes],
        "views": None,
    }
    if result.views is not None:
        # Quotient nodes are 0..k-1, so the roots list is positional.
        pool, roots = _pool_of([result.views[c] for c in range(len(result.views))])
        record["views"] = {"pool": pool, "roots": roots}
    return canonical_bytes(record)


def decode_quotient(payload: bytes) -> QuotientResult:
    record = _record_of(payload, "quotient")
    source = graph_from_dict(record["source"])
    quotient = graph_from_dict(record["graph"])
    mapping = {_decode(v): c for v, c in record["map"]}
    # FactorizingMap re-verifies the three factor properties on decode,
    # so a tampered payload cannot produce an invalid quotient object.
    factorizing = FactorizingMap(source, quotient, mapping)
    views: "dict[int, ViewTree] | None" = None
    if record["views"] is not None:
        trees = _trees_of(record["views"]["pool"])
        views = {c: trees[root] for c, root in enumerate(record["views"]["roots"])}
    return QuotientResult(graph=quotient, map=factorizing, views=views)


def project_pipeline(instance: Any, result: Any) -> "dict[str, Any]":
    """The canonical projection of a :class:`repro.core.derandomize.
    PipelineResult` (annotated loosely to keep this module's imports in
    the encoder layer).  Node order is the instance's canonical order."""
    return {
        "outputs": [
            [_encode(v), _encode(result.outputs[v])] for v in instance.nodes
        ],
        "coloring": [[_encode(v), result.coloring[v]] for v in instance.nodes],
        "stage1_rounds": result.stage1_rounds,
        "stage1_bits": result.stage1_bits,
        "quotient_size": result.quotient_size,
        "simulation_rounds": result.stage2.simulation_rounds,
    }


def encode_derandomized_run(record: "dict[str, Any]") -> bytes:
    payload = dict(record)
    payload["format"] = PAYLOAD_FORMAT
    payload["kind"] = "derandomized-run"
    return canonical_bytes(payload)


def decode_derandomized_run(payload: bytes) -> "dict[str, Any]":
    return _record_of(payload, "derandomized-run")


# -- registry -----------------------------------------------------------


@dataclass(frozen=True)
class ArtifactEncoder:
    """One kind's codec: ``encode(live) -> bytes``, ``decode(bytes) ->
    live`` with decode∘encode byte-identity."""

    kind: str
    encode: "Callable[[Any], bytes]"
    decode: "Callable[[bytes], Any]"


_ENCODERS: "dict[str, ArtifactEncoder]" = {}


def register_encoder(encoder: ArtifactEncoder) -> None:
    if encoder.kind in _ENCODERS:
        raise ArtifactError(f"artifact kind {encoder.kind!r} already registered")
    _ENCODERS[encoder.kind] = encoder


def encoder_for(kind: str) -> ArtifactEncoder:
    try:
        return _ENCODERS[kind]
    except KeyError:
        raise ArtifactError(
            f"unknown artifact kind {kind!r}; known: {', '.join(sorted(_ENCODERS))}"
        ) from None


def artifact_kinds() -> "tuple[str, ...]":
    return tuple(sorted(_ENCODERS))


register_encoder(ArtifactEncoder("view-tree", encode_view_tree, decode_view_tree))
register_encoder(ArtifactEncoder("views", encode_views, decode_views))
register_encoder(
    ArtifactEncoder("dynamic-views", encode_dynamic_views, decode_dynamic_views)
)
register_encoder(ArtifactEncoder("refinement", encode_refinement, decode_refinement))
register_encoder(ArtifactEncoder("quotient", encode_quotient, decode_quotient))
register_encoder(
    ArtifactEncoder(
        "derandomized-run", encode_derandomized_run, decode_derandomized_run
    )
)
