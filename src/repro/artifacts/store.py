"""The keyed artifact store: memory tier + optional persistent tier.

**Memory tier.**  One process-wide registry of per-kind LRU *buckets*.
The library's own memos (refinement results, view builders, quotients)
are buckets in this registry, keyed by live graph objects — structural
hash, no serialization on the hot path — with the same capacities and
eviction order they had as private module dicts.  Eviction is uniform:
:func:`clear_memory_tier` (reached through
:func:`repro.views.view_tree.clear_caches`) empties every bucket, and
each bucket counts hits/misses/evictions for the CLI and the service.

The one deliberate exception is the per-instance CSR mirror
(``LabeledGraph._csr``): it is identity-keyed on the instance, holds no
interned trees (so it cannot dangle across an interning epoch), and dies
with its graph — clearing it would only force rebuilds.  See
``docs/PERFORMANCE.md``.

**Persistent tier.**  An :class:`ArtifactStore` optionally opens an
fsync'd append-only JSONL file (the fabric's
:class:`repro.experiments.store.ResultStore` — same torn-tail repair,
same corruption policy) holding one encoded payload per content key.
Because keys embed the code fingerprint, a stale file is all misses.

**Recording.**  The experiment fabric wraps task execution in
:func:`record_artifact_keys`; producers call :func:`note_artifact` on
every fetch, so sweep records end up naming the artifact keys they
touched — sweeps and served queries share one address space.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.artifacts.keys import artifact_key, payload_digest
from repro.exceptions import ArtifactError, ReproError

__all__ = [
    "ArtifactStore",
    "MemoryBucket",
    "clear_memory_tier",
    "memory_bucket",
    "memory_stats",
    "note_artifact",
    "record_artifact_keys",
]


class MemoryBucket:
    """One kind's LRU memo: an :class:`OrderedDict` with counters.

    Keys are whatever the producer finds cheapest — live graph objects
    (structural equality/hash) for the library memos, content-key
    strings for decoded payloads.  ``get`` refreshes recency; ``put``
    evicts the least recently used entry beyond ``capacity``.
    """

    __slots__ = ("kind", "capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, kind: str, capacity: int) -> None:
        if capacity < 1:
            raise ArtifactError(f"bucket {kind!r}: capacity must be >= 1, got {capacity}")
        self.kind = kind
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any) -> Any:
        """The cached value, refreshed as most recent — or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> "dict[str, int]":
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


# The process-wide memory tier: one bucket per artifact kind.
_MEMORY: "dict[str, MemoryBucket]" = {}


def memory_bucket(kind: str, capacity: int = 16) -> MemoryBucket:
    """The memory-tier bucket for ``kind``, created on first use.

    The first caller fixes the capacity; later callers share the same
    bucket (producers register theirs at import time, so capacities are
    stable for the life of the process).
    """
    bucket = _MEMORY.get(kind)
    if bucket is None:
        bucket = MemoryBucket(kind, capacity)
        _MEMORY[kind] = bucket
    return bucket


def clear_memory_tier() -> None:
    """Empty every bucket (counters survive: they describe the process,
    not the current contents).  Reached through
    :func:`repro.views.view_tree.clear_caches`, which also resets the
    view intern tables — the buckets hold interned trees, so the two
    must clear together."""
    for bucket in _MEMORY.values():
        bucket.clear()


def memory_stats() -> "dict[str, dict[str, int]]":
    """Per-kind bucket statistics, kinds sorted for stable output."""
    return {kind: _MEMORY[kind].stats() for kind in sorted(_MEMORY)}


# -- fetch recording ----------------------------------------------------

# Active recorders (normally zero or one: the fabric worker).  Producers
# pay one truthiness test per fetch when nothing records.
_RECORDERS: "list[set[str]]" = []


def note_artifact(spec_factory: "Callable[[], dict[str, Any]]") -> None:
    """Tell active recorders an artifact was fetched.

    ``spec_factory`` defers spec construction (serializing a graph) to
    the rare recording case.  Instances whose nodes or labels are not
    JSON-representable have no content address; their fetches are
    deliberately not recorded rather than failing the computation.
    """
    if not _RECORDERS:
        return
    try:
        key = artifact_key(spec_factory())
    except ReproError:
        return
    for recorder in _RECORDERS:
        recorder.add(key)


@contextmanager
def record_artifact_keys() -> "Iterator[set[str]]":
    """Collect the keys of every artifact fetched inside the block."""
    keys: "set[str]" = set()
    _RECORDERS.append(keys)
    try:
        yield keys
    finally:
        _RECORDERS.remove(keys)


# -- the two-tier store -------------------------------------------------

# Encoded payloads cached by content key (both tiers' fast path).
_PAYLOAD_BUCKET_CAPACITY = 256


class ArtifactStore:
    """Encoded artifacts by content key: memory bucket over JSONL file.

    ``path=None`` gives a memory-only store (the default for library
    use); with a path, every computed payload is durably appended as
    ``{"key", "kind", "fingerprint", "spec", "digest", "payload"}`` and
    every complete record is served on reopen — the warm-start story of
    the artifacts-smoke gate.
    """

    def __init__(self, path: "str | Path | None" = None) -> None:
        self._payloads = memory_bucket("payload", _PAYLOAD_BUCKET_CAPACITY)
        self._persistent = None
        self.persistent_hits = 0
        self.stores = 0
        if path is not None:
            from repro.experiments.store import ResultStore

            self._persistent = ResultStore.open(path)

    @property
    def path(self) -> "Path | None":
        return self._persistent.path if self._persistent is not None else None

    def lookup(self, key: str) -> "bytes | None":
        """The encoded payload for ``key`` from the fastest tier holding
        it (promoting persistent hits into the memory tier), or ``None``."""
        payload = self._payloads.get(key)
        if payload is not None:
            return payload
        if self._persistent is not None:
            record = self._persistent.records.get(key)
            if record is not None:
                payload = record["payload"].encode("utf-8")
                if payload_digest(payload) != record["digest"]:
                    raise ArtifactError(
                        f"{self.path}: payload digest mismatch for key {key[:12]}…"
                    )
                self.persistent_hits += 1
                self._payloads.put(key, payload)
                return payload
        return None

    def persist(
        self,
        key: str,
        spec: "dict[str, Any]",
        payload: bytes,
        fingerprint: "str | None" = None,
    ) -> None:
        """Admit a computed payload to both tiers (append-once: a key
        already in the persistent tier is not rewritten)."""
        self._payloads.put(key, payload)
        self.stores += 1
        if self._persistent is not None and key not in self._persistent:
            if fingerprint is None:
                from repro.experiments.fingerprint import code_fingerprint

                fingerprint = code_fingerprint()
            self._persistent.append(
                {
                    "key": key,
                    "kind": spec["kind"],
                    "fingerprint": fingerprint,
                    "spec": spec,
                    "digest": payload_digest(payload),
                    "payload": payload.decode("utf-8"),
                }
            )

    def fetch(self, spec: "dict[str, Any]") -> bytes:
        """Synchronous read-through: lookup, else compute and persist.
        (The asyncio service adds batching and in-flight dedup on top.)"""
        key = artifact_key(spec)
        payload = self.lookup(key)
        if payload is None:
            from repro.artifacts.producers import compute_payload

            payload = compute_payload(spec)
            self.persist(key, spec, payload)
        return payload

    def records(self) -> "dict[str, dict[str, Any]]":
        """The persistent records by key (empty for memory-only stores)."""
        return dict(self._persistent.records) if self._persistent is not None else {}

    def stats(self) -> "dict[str, Any]":
        """Both tiers' counters (the CLI ``status`` payload)."""
        persistent: "dict[str, Any]" = {"enabled": self._persistent is not None}
        if self._persistent is not None:
            by_kind: "dict[str, int]" = {}
            for record in self._persistent.records.values():
                by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
            persistent.update(
                {
                    "path": str(self.path),
                    "records": len(self._persistent),
                    "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
                    "hits": self.persistent_hits,
                }
            )
        return {
            "memory": memory_stats(),
            "persistent": persistent,
            "stores": self.stores,
        }

    def close(self) -> None:
        if self._persistent is not None:
            self._persistent.close()
            self._persistent = None

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
