"""repro — a reproduction of "Anonymous Networks: Randomization = 2-Hop
Coloring" (Emek, Pfister, Seidel, Wattenhofer; PODC 2014).

The library provides, as independently usable layers:

* :mod:`repro.graphs` — labeled graphs, builders, lifts, colorings;
* :mod:`repro.views` — local views ``L_d(v)``, color refinement, the
  universal cover;
* :mod:`repro.factor` — factor/product graphs, the view quotient
  ``G_∞``/``G_*``, primality, the lifting lemma, fibrations;
* :mod:`repro.runtime` — the synchronous anonymous message-passing model
  with explicit random-bit tapes;
* :mod:`repro.problems` / :mod:`repro.algorithms` — distributed problems
  and the randomized anonymous algorithms that solve them;
* :mod:`repro.core` — the paper's contribution: A_∞ (Theorem 2), the
  faithful A_* (Theorem 1 / Figure 3), the practical derandomizer, and
  the two-stage randomized-coloring + deterministic-solve pipeline.

Quickstart::

    from repro import (
        GranBundle, MISProblem, AnonymousMISAlgorithm,
        WellFormedInputDecider, cycle_graph, with_uniform_input,
        derandomize_pipeline,
    )

    bundle = GranBundle(MISProblem(), AnonymousMISAlgorithm(), WellFormedInputDecider())
    graph = with_uniform_input(cycle_graph(6))
    result = derandomize_pipeline(bundle, graph, seed=1)
    print(result.outputs)
"""

from repro.exceptions import (
    CandidateError,
    DerandomizationError,
    FactorError,
    GraphError,
    LabelingError,
    OutputAlreadySetError,
    ProblemError,
    ReproError,
    RuntimeModelError,
    SimulationError,
    ViewError,
)
from repro.graphs import (
    LabeledGraph,
    canonical_encoding,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    is_two_hop_coloring,
    lift_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.builders import with_uniform_input
from repro.graphs.coloring import greedy_two_hop_coloring, apply_two_hop_coloring
from repro.views import ViewTree, all_views, color_refinement, view
from repro.factor import (
    FactorizingMap,
    finite_view_graph,
    infinite_view_graph,
    is_prime,
    prime_factors,
)
from repro.runtime import (
    AnonymousAlgorithm,
    execute,
    run_deterministic,
    run_randomized,
    simulate_with_assignment,
)
from repro.problems import (
    ColoringProblem,
    DecisionProblem,
    GranBundle,
    KHopColoringProblem,
    MaximalMatchingProblem,
    MISProblem,
    TwoHopColoredVariant,
)
from repro.algorithms import (
    AnonymousMatchingAlgorithm,
    AnonymousMISAlgorithm,
    GreedyMISByColor,
    TwoHopColoringAlgorithm,
    VertexColoringAlgorithm,
    WellFormedInputDecider,
)
from repro.core import (
    AInfinitySolver,
    AStarSolver,
    PracticalDerandomizer,
    derandomize_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "LabelingError",
    "FactorError",
    "ViewError",
    "RuntimeModelError",
    "OutputAlreadySetError",
    "SimulationError",
    "ProblemError",
    "DerandomizationError",
    "CandidateError",
    "LabeledGraph",
    "canonical_encoding",
    "complete_graph",
    "cycle_graph",
    "grid_graph",
    "hypercube_graph",
    "is_two_hop_coloring",
    "lift_graph",
    "path_graph",
    "petersen_graph",
    "random_connected_graph",
    "star_graph",
    "torus_graph",
    "with_uniform_input",
    "greedy_two_hop_coloring",
    "apply_two_hop_coloring",
    "ViewTree",
    "all_views",
    "color_refinement",
    "view",
    "FactorizingMap",
    "finite_view_graph",
    "infinite_view_graph",
    "is_prime",
    "prime_factors",
    "AnonymousAlgorithm",
    "execute",
    "run_deterministic",
    "run_randomized",
    "simulate_with_assignment",
    "ColoringProblem",
    "DecisionProblem",
    "GranBundle",
    "KHopColoringProblem",
    "MaximalMatchingProblem",
    "MISProblem",
    "TwoHopColoredVariant",
    "AnonymousMatchingAlgorithm",
    "AnonymousMISAlgorithm",
    "GreedyMISByColor",
    "TwoHopColoringAlgorithm",
    "VertexColoringAlgorithm",
    "WellFormedInputDecider",
    "AInfinitySolver",
    "AStarSolver",
    "PracticalDerandomizer",
    "derandomize_pipeline",
    "__version__",
]
