"""The :class:`LabeledGraph` core data structure.

A labeled graph is a finite connected simple graph ``(V, E)`` together
with one or more *label layers*.  A layer is a named total function from
nodes to labels; the effective label of a node, in the sense of the
paper's single labeling function ``l(v) = <l_1(v), ..., l_k(v)>``, is the
tuple of its per-layer values in layer order (:meth:`LabeledGraph.label`).

Every node also carries a *port numbering*: its incident edges are
numbered ``0 .. deg(v) - 1``.  Port numbers are local — the two endpoints
of an edge number it independently — exactly as in the port-numbering
message-passing model.  By default ports are assigned in sorted neighbor
order, which keeps constructions deterministic; callers may supply an
explicit numbering.

Instances are immutable: all mutating-style operations (adding a layer,
relabeling) return a new graph.  Immutability is what makes it safe for
views, quotients and simulations to share graphs freely.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.exceptions import GraphError, LabelingError

Node = Hashable
Label = Any
Edge = tuple[Node, Node]


class _SortKey:
    """Total order on arbitrary node ids: by type name, then the natural
    order within a type when values are comparable, else by repr.

    Node ids are usually homogeneous (all ints or all strings), in which
    case this reduces to the natural order; mixing or non-orderable types
    stays deterministic instead of raising ``TypeError``.
    """

    __slots__ = ("value", "type_name")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.type_name = type(value).__name__

    def __lt__(self, other: "_SortKey") -> bool:
        if self.type_name != other.type_name:
            return self.type_name < other.type_name
        try:
            if self.value == other.value:
                return False
            result = self.value < other.value
            if isinstance(result, bool):
                return result
        except TypeError:
            pass
        return repr(self.value) < repr(other.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _sort_key(value: Any) -> _SortKey:
    return _SortKey(value)


class LabeledGraph:
    """A finite connected simple graph with label layers and port numbers.

    Parameters
    ----------
    edges:
        Iterable of undirected edges ``(u, v)``.  Loops and duplicate
        edges are rejected (the model only considers simple graphs).
    nodes:
        Optional explicit node set; must be a superset of the endpoints.
        A single isolated node is permitted only for the 1-node graph
        (any larger graph must be connected, hence has no isolated node).
    layers:
        Mapping from layer name to a node->label mapping.  Every layer
        must label every node.
    ports:
        Optional explicit port numbering: ``ports[v]`` is a sequence of
        ``deg(v)`` distinct neighbors, listed in port order.  When
        omitted, neighbors are numbered in sorted order.
    check_connected:
        Validate connectivity (default ``True``).  Factor/quotient code
        always produces connected graphs, but tests may want fragments.
    """

    __slots__ = (
        "_nodes",
        "_adjacency",
        "_edges",
        "_layers",
        "_ports",
        "_port_of",
        "_hash",
        "_csr",
    )

    def __init__(
        self,
        edges: Iterable[Edge],
        nodes: Iterable[Node] | None = None,
        layers: Mapping[str, Mapping[Node, Label]] | None = None,
        ports: Mapping[Node, Sequence[Node]] | None = None,
        check_connected: bool = True,
    ) -> None:
        adjacency: dict[Node, list] = {}
        edge_set: set = set()
        for u, v in edges:
            if u == v:
                raise GraphError(f"loop edge ({u!r}, {u!r}) is not allowed in a simple graph")
            key = frozenset((u, v))
            if key in edge_set:
                raise GraphError(f"parallel edge ({u!r}, {v!r}) is not allowed in a simple graph")
            edge_set.add(key)
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)

        if nodes is not None:
            for node in nodes:
                adjacency.setdefault(node, [])
        if not adjacency:
            raise GraphError("a labeled graph must have at least one node")

        self._nodes: tuple[Node, ...] = tuple(sorted(adjacency, key=_sort_key))
        self._adjacency: dict[Node, tuple[Node, ...]] = {
            v: tuple(sorted(neighbors, key=_sort_key)) for v, neighbors in adjacency.items()
        }
        self._edges: frozenset[frozenset[Node]] = frozenset(edge_set)

        if check_connected and not self._connected():
            raise GraphError(
                f"graph with {len(self._nodes)} nodes and {len(self._edges)} edges is not connected"
            )

        self._layers: dict[str, dict[Node, Label]] = {}
        if layers is not None:
            for name, mapping in layers.items():
                self._layers[name] = self._validate_layer(name, mapping)

        self._ports: dict[Node, tuple[Node, ...]] = {}
        self._port_of: dict[Node, dict[Node, int]] = {}
        if ports is None:
            for v in self._nodes:
                self._ports[v] = self._adjacency[v]
        else:
            for v in self._nodes:
                if v not in ports:
                    raise GraphError(f"port numbering missing for node {v!r}")
                ordering = tuple(ports[v])
                if sorted(ordering, key=_sort_key) != list(self._adjacency[v]):
                    raise GraphError(
                        f"port numbering of node {v!r} must be a permutation of its "
                        f"neighbors {self._adjacency[v]!r}, got {ordering!r}"
                    )
                self._ports[v] = ordering
        for v in self._nodes:
            self._port_of[v] = {u: port for port, u in enumerate(self._ports[v])}
        self._hash: int | None = None
        self._csr = None  # lazily built CSR mirror (repro.graphs.csr)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes, in the deterministic sorted order."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge once, as a sorted pair, in sorted order."""
        pairs = [tuple(sorted(edge, key=_sort_key)) for edge in self._edges]
        for u, v in sorted(pairs, key=lambda p: (_sort_key(p[0]), _sort_key(p[1]))):
            yield (u, v)

    def has_node(self, v: Node) -> bool:
        return v in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        return frozenset((u, v)) in self._edges

    def neighbors(self, v: Node) -> tuple[Node, ...]:
        """Neighbors of ``v`` in sorted order (the set Γ(v))."""
        try:
            return self._adjacency[v]
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None

    def degree(self, v: Node) -> int:
        return len(self.neighbors(v))

    def _connected(self) -> bool:
        start = self._nodes[0]
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def ports(self, v: Node) -> tuple[Node, ...]:
        """Neighbors of ``v`` in port order: ``ports(v)[i]`` sits on port ``i``."""
        try:
            return self._ports[v]
        except KeyError:
            raise GraphError(f"unknown node {v!r}") from None

    def port_to_neighbor(self, v: Node, port: int) -> Node:
        neighbors = self.ports(v)
        if not 0 <= port < len(neighbors):
            raise GraphError(
                f"node {v!r} has ports 0..{len(neighbors) - 1}, got port {port}"
            )
        return neighbors[port]

    def neighbor_to_port(self, v: Node, u: Node) -> int:
        self.ports(v)
        try:
            return self._port_of[v][u]
        except KeyError:
            raise GraphError(f"{u!r} is not a neighbor of {v!r}") from None

    # ------------------------------------------------------------------
    # Label layers
    # ------------------------------------------------------------------

    def _validate_layer(self, name: str, mapping: Mapping[Node, Label]) -> dict[Node, Label]:
        missing = [v for v in self._nodes if v not in mapping]
        if missing:
            raise LabelingError(
                f"layer {name!r} does not label nodes {missing!r}"
            )
        extra = [v for v in mapping if v not in self._adjacency]
        if extra:
            raise LabelingError(f"layer {name!r} labels unknown nodes {extra!r}")
        return {v: mapping[v] for v in self._nodes}

    @property
    def layer_names(self) -> tuple[str, ...]:
        return tuple(self._layers)

    def has_layer(self, name: str) -> bool:
        return name in self._layers

    def layer(self, name: str) -> dict[Node, Label]:
        """The node->label mapping of one layer (a fresh dict)."""
        try:
            return dict(self._layers[name])
        except KeyError:
            raise LabelingError(
                f"no layer named {name!r}; available: {self.layer_names!r}"
            ) from None

    def label_of(self, v: Node, name: str) -> Label:
        try:
            layer = self._layers[name]
        except KeyError:
            raise LabelingError(
                f"no layer named {name!r}; available: {self.layer_names!r}"
            ) from None
        if v not in layer:
            raise GraphError(f"unknown node {v!r}")
        return layer[v]

    def label(self, v: Node) -> tuple[Label, ...]:
        """The composed label ``<l_1(v), ..., l_k(v)>`` over all layers."""
        if v not in self._adjacency:
            raise GraphError(f"unknown node {v!r}")
        return tuple(self._layers[name][v] for name in self._layers)

    def with_layer(self, name: str, mapping: Mapping[Node, Label]) -> "LabeledGraph":
        """A new graph with layer ``name`` added or replaced."""
        layers = {n: dict(m) for n, m in self._layers.items()}
        layers[name] = dict(mapping)
        return self._replace(layers=layers)

    def without_layer(self, name: str) -> "LabeledGraph":
        """A new graph with layer ``name`` removed."""
        if name not in self._layers:
            raise LabelingError(
                f"no layer named {name!r}; available: {self.layer_names!r}"
            )
        layers = {n: dict(m) for n, m in self._layers.items() if n != name}
        return self._replace(layers=layers)

    def with_only_layers(self, names: Sequence[str]) -> "LabeledGraph":
        """A new graph keeping exactly the given layers, in the given order."""
        for name in names:
            if name not in self._layers:
                raise LabelingError(
                    f"no layer named {name!r}; available: {self.layer_names!r}"
                )
        layers = {name: dict(self._layers[name]) for name in names}
        return self._replace(layers=layers)

    def map_layer(self, name: str, fn: Callable[[Node, Label], Label]) -> "LabeledGraph":
        """A new graph with ``fn(v, old_label)`` applied across one layer."""
        old = self.layer(name)
        return self.with_layer(name, {v: fn(v, old[v]) for v in self._nodes})

    def _replace(
        self,
        layers: dict[str, dict[Node, Label]] | None = None,
        ports: Mapping[Node, Sequence[Node]] | None = None,
    ) -> "LabeledGraph":
        return LabeledGraph(
            edges=[tuple(edge) for edge in self._edges],
            nodes=self._nodes,
            layers=self._layers if layers is None else layers,
            ports=self._ports if ports is None else ports,
            check_connected=False,
        )

    def with_ports(self, ports: Mapping[Node, Sequence[Node]]) -> "LabeledGraph":
        """A new graph with an explicit port numbering."""
        return self._replace(ports=ports)

    def relabel_nodes(self, mapping: Mapping[Node, Node]) -> "LabeledGraph":
        """A new graph with node ids renamed by a bijection."""
        if sorted(mapping, key=_sort_key) != list(self._nodes):
            raise GraphError("relabeling must cover exactly the node set")
        if len(set(mapping.values())) != len(self._nodes):
            raise GraphError("relabeling must be injective")
        edges = [(mapping[u], mapping[v]) for u, v in self.edges()]
        layers = {
            name: {mapping[v]: label for v, label in layer.items()}
            for name, layer in self._layers.items()
        }
        ports = {
            mapping[v]: [mapping[u] for u in order] for v, order in self._ports.items()
        }
        return LabeledGraph(
            edges=edges,
            nodes=[mapping[v] for v in self._nodes],
            layers=layers,
            ports=ports,
            check_connected=False,
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def closed_neighborhood(self, v: Node) -> tuple[Node, ...]:
        """The set {v} ∪ Γ(v), sorted."""
        return tuple(sorted((v,) + self.neighbors(v), key=_sort_key))

    def _csr_mirror(self):
        """The memoized flat-array mirror (see :mod:`repro.graphs.csr`)."""
        csr = self._csr
        if csr is None:
            from repro.graphs.csr import CSRGraph

            csr = self._csr = CSRGraph(self)
        return csr

    def nodes_within(self, v: Node, hops: int) -> tuple[Node, ...]:
        """All nodes at distance at most ``hops`` from ``v`` (the set H^hops(v))."""
        if hops < 0:
            raise GraphError(f"hops must be nonnegative, got {hops}")
        if hops == 0:
            return (v,)
        csr = self._csr_mirror()
        nodes = self._nodes
        # Index order is the node sort order, so the ascending index list
        # maps straight to the sorted node tuple.
        return tuple(map(nodes.__getitem__, csr.within_idx(csr.index[v], hops)))

    def distance(self, u: Node, v: Node) -> int:
        """Hop distance between ``u`` and ``v`` (BFS on the CSR mirror)."""
        if not self.has_node(u):
            raise GraphError(f"unknown node {u!r}")
        if not self.has_node(v):
            raise GraphError(f"unknown node {v!r}")
        if u == v:
            return 0
        csr = self._csr_mirror()
        hops = csr.distance_idx(csr.index[u], csr.index[v])
        if hops < 0:
            raise GraphError(f"nodes {u!r} and {v!r} are not connected")
        return hops

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def structure_key(self) -> tuple:
        """A value determining the graph up to *identity* (same node ids,
        edges, layers in order, and ports) — not up to isomorphism."""
        return (
            self._nodes,
            tuple(sorted(self.edges(), key=lambda p: (_sort_key(p[0]), _sort_key(p[1])))),
            # Layer insertion order is part of graph identity by contract
            # (it is the order label() composes layer values in), so
            # iterating .items() here is deliberate, not incidental.
            tuple(  # repro-lint: disable=DET002
                (name, tuple((v, _freeze(layer[v])) for v in self._nodes))
                for name, layer in self._layers.items()
            ),
            tuple((v, self._ports[v]) for v in self._nodes),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self.structure_key() == other.structure_key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.structure_key())
        return self._hash

    def __getstate__(self) -> dict:
        # Caches are dropped: the CSR mirror is rebuilt lazily on demand,
        # and the structure-key hash is salted per process
        # (PYTHONHASHSEED), so neither may travel across pickling.
        return {
            "_nodes": self._nodes,
            "_adjacency": self._adjacency,
            "_edges": self._edges,
            "_layers": self._layers,
            "_ports": self._ports,
            "_port_of": self._port_of,
        }

    def __setstate__(self, state: dict) -> None:
        self._nodes = state["_nodes"]
        self._adjacency = state["_adjacency"]
        self._edges = state["_edges"]
        self._layers = state["_layers"]
        self._ports = state["_ports"]
        self._port_of = state["_port_of"]
        self._hash = None
        self._csr = None

    def __repr__(self) -> str:
        return (
            f"LabeledGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"layers={list(self._layers)!r})"
        )


def _freeze(value: Any) -> Any:
    """Recursively convert a label into a hashable value for keys."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value
