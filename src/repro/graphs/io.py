"""Serialization of labeled graphs to/from JSON-compatible dictionaries.

Instances, colorings and experiment artifacts need to be saved and
reloaded (e.g. to pin a regression fixture or ship a workload).  The
format is deliberately plain: node ids and labels must themselves be
JSON-representable (ints, strings, lists/tuples, dicts); tuples are
round-tripped as lists and restored as tuples because labels in this
library are tuple-shaped.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import GraphError
from repro.graphs.labeled_graph import LabeledGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: LabeledGraph) -> dict[str, Any]:
    """A JSON-compatible description of the graph (nodes, edges, layers,
    ports)."""
    return {
        "format": FORMAT_VERSION,
        "nodes": [_encode(v) for v in graph.nodes],
        "edges": [[_encode(u), _encode(v)] for u, v in graph.edges()],
        # Layers are an ordered *list* of [name, mapping] pairs: layer
        # order is semantic (it defines the composed label) and JSON
        # object key order is not reliable under re-serialization.
        "layers": [
            [
                name,
                {
                    json.dumps(_encode(v)): _encode(graph.label_of(v, name))
                    for v in graph.nodes
                },
            ]
            for name in graph.layer_names
        ],
        "ports": {
            json.dumps(_encode(v)): [_encode(u) for u in graph.ports(v)]
            for v in graph.nodes
        },
    }


def graph_from_dict(data: dict[str, Any]) -> LabeledGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format {data.get('format')!r}; expected {FORMAT_VERSION}"
        )
    nodes = [_decode(v) for v in data["nodes"]]
    edges = [(_decode(u), _decode(v)) for u, v in data["edges"]]
    layers = {
        name: {
            _decode(json.loads(key)): _decode(value)
            for key, value in mapping.items()
        }
        for name, mapping in data["layers"]
    }
    ports = {
        _decode(json.loads(key)): [_decode(u) for u in order]
        for key, order in data["ports"].items()
    }
    return LabeledGraph(edges, nodes=nodes, layers=layers, ports=ports)


def graph_to_json(graph: LabeledGraph) -> str:
    """Serialize to a JSON string."""
    return json.dumps(graph_to_dict(graph), sort_keys=True)


def graph_from_json(text: str) -> LabeledGraph:
    """Deserialize from :func:`graph_to_json` output."""
    return graph_from_dict(json.loads(text))


def _encode(value: Any) -> Any:
    """Tuples become tagged lists so they survive the JSON round trip."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(item) for item in value]}
    if isinstance(value, list):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {"__dict__": [[_encode(k), _encode(v)] for k, v in value.items()]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise GraphError(f"value {value!r} of type {type(value).__name__} is not serializable")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(_decode(item) for item in value["__tuple__"])
        if "__dict__" in value:
            return {_decode(k): _decode(v) for k, v in value["__dict__"]}
        raise GraphError(f"unrecognized encoded object {value!r}")
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value
