"""Array-native CSR core: flat int-array kernels behind ``LabeledGraph``.

Every hot loop in this library — color refinement rounds, view-level
extension, quotient construction, BFS distances — iterates edges.  On a
``LabeledGraph`` that means hashing node ids through dicts of tuples and
allocating a Python object per visited neighbor.  :class:`CSRGraph`
removes that overhead: it is a compressed-sparse-row mirror of a graph
built **once per instance** (graphs are immutable, so invalidation is
never) holding nothing but flat ``array('l')`` buffers of dense node
indices plus a per-rank table of the distinct composed labels.  Node
names appear only at the boundary; kernels speak integers.

Memory layout (n nodes, m edges)::

    offsets       array('l'), n+1   CSR row pointers
    targets       array('l'), 2m    neighbor indices, sorted per row
    port_targets  array('l'), 2m    neighbor indices, port order per row
    label_ranks   array('l'), n     composed-label rank per node
    layer_ranks   {name: array}     per-layer label rank per node
    adjacency     list[list[int]]   row slices of ``targets`` as lists

``adjacency`` duplicates ``targets`` as Python lists because CPython
iterates a small list faster than an ``array`` slice; the arrays remain
the canonical storage (and what the memory accounting counts).

Label ranks are seeded exactly like the historical refinement palette:
distinct composed labels ordered by ``repr(_freeze(label))``.  This is
what keeps :func:`refine` byte-identical to the original dict-walking
``color_refinement`` — same seed numbering, same per-round renumbering
(the flattened signature tuples ``(own, *sorted(neighbors))`` sort
exactly as the historical nested ``(own, tuple(sorted(neighbors)))``
pairs, first component first, then the neighbor lists lexicographically
with shorter prefixes first).

The BFS kernels use a preallocated visited-stamp buffer with an epoch
counter, so repeated distance/ball queries allocate only their frontier
lists — no per-call ``set`` churn.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.graphs.labeled_graph import _freeze

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.graphs.labeled_graph import LabeledGraph


def _rank_values(values: list) -> tuple[array, list]:
    """Dense ranks for a node-ordered value list, numbered like the
    historical palette: distinct values ordered by ``repr(_freeze(v))``.

    Returns ``(ranks, distinct)`` where ``ranks[i]`` is node ``i``'s rank
    and ``distinct[r]`` is the (first-seen) value of rank ``r``.
    """
    keys = [repr(_freeze(v)) for v in values]
    palette = {key: rank for rank, key in enumerate(sorted(set(keys)))}
    ranks = array("l", map(palette.__getitem__, keys))
    distinct: list = [None] * len(palette)
    filled = 0
    for i, key in enumerate(keys):
        rank = palette[key]
        if distinct[rank] is None:
            distinct[rank] = values[i]
            filled += 1
            if filled == len(palette):
                break
    return ranks, distinct


class CSRGraph:
    """Immutable flat-array mirror of one :class:`LabeledGraph`.

    Built lazily by :func:`csr_of` and memoized on the graph instance;
    do not construct directly unless you want an unshared copy.
    """

    __slots__ = (
        "nodes",
        "index",
        "num_nodes",
        "offsets",
        "targets",
        "port_targets",
        "adjacency",
        "label_ranks",
        "label_values",
        "num_labels",
        "layer_ranks",
        "layer_values",
        "_visited",
        "_epoch",
    )

    def __init__(self, graph: "LabeledGraph") -> None:
        nodes = graph.nodes
        n = len(nodes)
        index = {v: i for i, v in enumerate(nodes)}

        offsets = array("l", [0])
        targets = array("l")
        port_targets = array("l")
        adjacency: list[list[int]] = []
        ig = index.__getitem__
        for v in nodes:
            row = list(map(ig, graph.neighbors(v)))
            adjacency.append(row)
            targets.extend(row)
            port_targets.extend(map(ig, graph.ports(v)))
            offsets.append(len(targets))

        self.nodes = nodes
        self.index = index
        self.num_nodes = n
        self.offsets = offsets
        self.targets = targets
        self.port_targets = port_targets
        self.adjacency = adjacency

        self.label_ranks, self.label_values = _rank_values(
            [graph.label(v) for v in nodes]
        )
        self.num_labels = len(self.label_values)

        self.layer_ranks: dict[str, array] = {}
        self.layer_values: dict[str, list] = {}
        for name in graph.layer_names:
            layer = graph.layer(name)
            ranks, distinct = _rank_values([layer[v] for v in nodes])
            self.layer_ranks[name] = ranks
            self.layer_values[name] = distinct

        # BFS scratch: a node is visited iff its stamp equals the current
        # epoch, so queries reset state by bumping the counter, not by
        # clearing the buffer.  'q' gives 64-bit stamps — no wraparound.
        self._visited = array("q", bytes(8 * n))
        self._epoch = 0

    # -- structure queries (index space) --------------------------------

    def degree_idx(self, i: int) -> int:
        return self.offsets[i + 1] - self.offsets[i]

    def neighbors_idx(self, i: int) -> list[int]:
        """Neighbor indices of node ``i``, sorted (the CSR row)."""
        return self.adjacency[i]

    def ports_idx(self, i: int) -> array:
        """Neighbor indices of node ``i`` in port order."""
        return self.port_targets[self.offsets[i] : self.offsets[i + 1]]

    # -- BFS kernels -----------------------------------------------------

    def distance_idx(self, source: int, target: int) -> int:
        """Hop distance between two node indices; ``-1`` if unreachable."""
        if source == target:
            return 0
        visited = self._visited
        self._epoch += 1
        epoch = self._epoch
        adjacency = self.adjacency
        visited[source] = epoch
        frontier = [source]
        distance = 0
        while frontier:
            distance += 1
            next_frontier = []
            append = next_frontier.append
            for u in frontier:
                for w in adjacency[u]:
                    if visited[w] != epoch:
                        if w == target:
                            return distance
                        visited[w] = epoch
                        append(w)
            frontier = next_frontier
        return -1

    def within_idx(self, source: int, hops: int) -> list[int]:
        """Indices at distance at most ``hops`` from ``source``, ascending
        (index order is the node sort order, so this matches the sorted
        contract of :meth:`LabeledGraph.nodes_within`)."""
        visited = self._visited
        self._epoch += 1
        epoch = self._epoch
        adjacency = self.adjacency
        visited[source] = epoch
        reached = [source]
        frontier = [source]
        for _ in range(hops):
            next_frontier = []
            append = next_frontier.append
            for u in frontier:
                for w in adjacency[u]:
                    if visited[w] != epoch:
                        visited[w] = epoch
                        append(w)
            if not next_frontier:
                break
            reached.extend(next_frontier)
            frontier = next_frontier
        reached.sort()
        return reached


def csr_of(graph: "LabeledGraph") -> CSRGraph:
    """The memoized :class:`CSRGraph` of ``graph`` (built on first use).

    The mirror lives on the graph instance itself — graphs are immutable,
    so the arrays are valid for the instance's whole lifetime and survive
    :func:`repro.views.view_tree.clear_caches` by design (they hold no
    interned trees, only integers).
    """
    csr = graph._csr
    if csr is None:
        csr = CSRGraph(graph)
        graph._csr = csr
    return csr


# ----------------------------------------------------------------------
# Color refinement kernels
# ----------------------------------------------------------------------


def refine_step(csr: CSRGraph, color: list[int]) -> tuple[list[int], int]:
    """One refinement round on dense colors: renumber nodes by the
    signature ``(own color, sorted neighbor colors)`` in sorted signature
    order.  Returns ``(new colors, class count)``.

    When the count equals the input partition's, the partition did not
    change and the returned numbering equals the input numbering (each
    signature then starts with a distinct own-color, so sorting preserves
    the numbering) — callers may keep the old list.
    """
    adjacency = csr.adjacency
    cg = color.__getitem__
    signature = [
        (color[i], *sorted(map(cg, adjacency[i]))) for i in range(csr.num_nodes)
    ]
    palette = {sig: rank for rank, sig in enumerate(sorted(set(signature)))}
    return list(map(palette.__getitem__, signature)), len(palette)


def refine(
    csr: CSRGraph, max_rounds: int | None = None
) -> tuple[list[int], int, list[int], bool]:
    """Run color refinement to stability (or a round cap) on the arrays.

    Returns ``(colors, rounds, history, stable)`` with exactly the
    semantics of :func:`repro.views.refinement.color_refinement`: seeded
    by label ranks, one dense renumbering per round, early exit when a
    round splits nothing or the partition is discrete.
    """
    num_nodes = csr.num_nodes
    color = list(csr.label_ranks)
    history = [csr.num_labels]
    rounds = 0
    stable = csr.num_labels == num_nodes  # discrete partitions are stable
    limit = num_nodes if max_rounds is None else max_rounds
    adjacency = csr.adjacency
    node_range = range(num_nodes)
    while not stable and rounds < limit:
        cg = color.__getitem__
        signature = [
            (color[i], *sorted(map(cg, adjacency[i]))) for i in node_range
        ]
        palette = {sig: rank for rank, sig in enumerate(sorted(set(signature)))}
        count = len(palette)
        if count == history[-1]:
            # A round that does not increase the class count leaves the
            # partition unchanged (refinement only splits).
            stable = True
            break
        color = list(map(palette.__getitem__, signature))
        rounds += 1
        history.append(count)
        if count == num_nodes:
            stable = True
    return color, rounds, history, stable
