"""k-hop colorings: validation and centralized reference constructions.

A labeling ``c`` is a *k-hop coloring* of ``G`` when any two distinct
nodes at hop distance at most ``k`` receive different colors (paper
Section 1.1).  The 2-hop case is the paper's central object: it makes
every closed neighborhood rainbow, which is exactly what the
derandomization machinery needs (distinct sibling marks in local views,
Lemma 2's injectivity).

The *distributed randomized* 2-hop coloring algorithm lives in
``repro.algorithms.two_hop_coloring``; here we provide centralized
(greedy) constructions used as fixtures and baselines, plus validators.
"""

from __future__ import annotations


from repro.exceptions import LabelingError
from repro.graphs.labeled_graph import Label, LabeledGraph, Node


def k_hop_conflicts(
    graph: LabeledGraph, coloring: dict[Node, Label], k: int
) -> list[tuple[Node, Node]]:
    """All pairs of distinct nodes within ``k`` hops sharing a color.

    An empty result certifies that ``coloring`` is a k-hop coloring.
    """
    if k < 1:
        raise LabelingError(f"k must be at least 1, got {k}")
    missing = [v for v in graph.nodes if v not in coloring]
    if missing:
        raise LabelingError(f"coloring does not cover nodes {missing!r}")
    conflicts = []
    for v in graph.nodes:
        for u in graph.nodes_within(v, k):
            if u != v and coloring[u] == coloring[v]:
                pair = tuple(sorted((u, v), key=repr))
                conflicts.append(pair)
    return sorted(set(conflicts), key=repr)


def is_k_hop_coloring(graph: LabeledGraph, coloring: dict[Node, Label], k: int) -> bool:
    """Whether ``coloring`` is a valid k-hop coloring of ``graph``."""
    return not k_hop_conflicts(graph, coloring, k)


def is_two_hop_coloring(graph: LabeledGraph, coloring: dict[Node, Label]) -> bool:
    """Whether ``coloring`` is a valid 2-hop coloring (the paper's case)."""
    return is_k_hop_coloring(graph, coloring, 2)


def greedy_k_hop_coloring(graph: LabeledGraph, k: int) -> dict[Node, int]:
    """A centralized greedy k-hop coloring with colors ``0, 1, 2, ...``.

    Processes nodes in sorted order and gives each the smallest color not
    used within ``k`` hops.  Uses at most ``Delta^k + 1`` colors.  This is
    a *fixture generator*, not an anonymous algorithm — minimizing colors
    is NP-complete (McCormick, cited in the paper) and irrelevant here:
    the paper explicitly does not care about the number of colors.
    """
    if k < 1:
        raise LabelingError(f"k must be at least 1, got {k}")
    coloring: dict[Node, int] = {}
    for v in graph.nodes:
        taken = {
            coloring[u]
            for u in graph.nodes_within(v, k)
            if u != v and u in coloring
        }
        color = 0
        while color in taken:
            color += 1
        coloring[v] = color
    return coloring


def greedy_two_hop_coloring(graph: LabeledGraph) -> dict[Node, int]:
    """Centralized greedy 2-hop coloring (see :func:`greedy_k_hop_coloring`)."""
    return greedy_k_hop_coloring(graph, 2)


def apply_two_hop_coloring(
    graph: LabeledGraph, coloring: dict[Node, Label], layer: str = "color"
) -> LabeledGraph:
    """Attach ``coloring`` as a layer after validating it is 2-hop proper."""
    conflicts = k_hop_conflicts(graph, coloring, 2)
    if conflicts:
        raise LabelingError(
            f"not a 2-hop coloring; conflicting pairs: {conflicts[:5]!r}"
            + ("..." if len(conflicts) > 5 else "")
        )
    return graph.with_layer(layer, coloring)


def num_colors(coloring: dict[Node, Label]) -> int:
    """Number of distinct colors used."""
    return len(set(coloring.values()))
