"""Constructors for the graph families used throughout the reproduction.

All builders return :class:`~repro.graphs.labeled_graph.LabeledGraph`
instances with integer node ids and no label layers (labels are applied
by the caller — typically an ``input`` layer and later a 2-hop coloring
layer).  Every builder is deterministic; the random builders take an
explicit ``seed``.

The families cover what the paper's figures and our experiment sweeps
need: cycles (Figures 1 and 2), paths, complete and bipartite graphs,
stars, trees, hypercubes, grids/tori (vertex-transitive cases for the
leader-election impossibility experiments), the Petersen graph, random
connected graphs and random regular graphs.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence

from repro.exceptions import GraphError
from repro.graphs.labeled_graph import LabeledGraph


def cycle_graph(n: int) -> LabeledGraph:
    """The cycle C_n on nodes ``0 .. n-1`` (requires ``n >= 3``)."""
    if n < 3:
        raise GraphError(f"a cycle needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return LabeledGraph(edges)


def path_graph(n: int) -> LabeledGraph:
    """The path P_n on nodes ``0 .. n-1`` (requires ``n >= 1``)."""
    if n < 1:
        raise GraphError(f"a path needs at least 1 node, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return LabeledGraph(edges, nodes=range(n))


def complete_graph(n: int) -> LabeledGraph:
    """The complete graph K_n on nodes ``0 .. n-1`` (requires ``n >= 1``)."""
    if n < 1:
        raise GraphError(f"a complete graph needs at least 1 node, got {n}")
    edges = list(itertools.combinations(range(n), 2))
    return LabeledGraph(edges, nodes=range(n))


def star_graph(leaves: int) -> LabeledGraph:
    """The star with center ``0`` and ``leaves`` leaves ``1 .. leaves``."""
    if leaves < 1:
        raise GraphError(f"a star needs at least 1 leaf, got {leaves}")
    return LabeledGraph([(0, i) for i in range(1, leaves + 1)])


def complete_bipartite_graph(a: int, b: int) -> LabeledGraph:
    """K_{a,b} with left part ``0 .. a-1`` and right part ``a .. a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError(f"both parts must be nonempty, got {a} and {b}")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return LabeledGraph(edges)


def binary_tree_graph(depth: int) -> LabeledGraph:
    """The complete binary tree of the given depth (root ``0``; depth 0 is
    the single root)."""
    if depth < 0:
        raise GraphError(f"depth must be nonnegative, got {depth}")
    n = 2 ** (depth + 1) - 1
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return LabeledGraph(edges, nodes=range(n))


def hypercube_graph(dim: int) -> LabeledGraph:
    """The ``dim``-dimensional hypercube; node ``i`` joins ``i ^ (1<<k)``."""
    if dim < 1:
        raise GraphError(f"dimension must be at least 1, got {dim}")
    n = 1 << dim
    edges = []
    for v in range(n):
        for k in range(dim):
            u = v ^ (1 << k)
            if v < u:
                edges.append((v, u))
    return LabeledGraph(edges)


def grid_graph(rows: int, cols: int) -> LabeledGraph:
    """The ``rows x cols`` grid; node ``(r, c)`` is id ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be positive, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return LabeledGraph(edges, nodes=range(rows * cols))


def torus_graph(rows: int, cols: int) -> LabeledGraph:
    """The ``rows x cols`` torus (wrap-around grid).  Both dimensions must
    be at least 3 so the graph stays simple."""
    if rows < 3 or cols < 3:
        raise GraphError(
            f"torus dimensions must be at least 3 to stay simple, got {rows}x{cols}"
        )
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add(frozenset((v, right)))
            edges.add(frozenset((v, down)))
    return LabeledGraph(sorted(tuple(sorted(e)) for e in edges))


def circulant_graph(n: int, offsets: Sequence[int]) -> LabeledGraph:
    """The circulant graph C_n(offsets): node ``i`` joins ``i ± d (mod n)``
    for every offset ``d``.  Circulants are vertex-transitive — the
    systematic source of election-impossible instances (C_n(1) is the
    cycle; C_n(1..k) are the standard "k-th power of a cycle" cases)."""
    if n < 3:
        raise GraphError(f"a circulant needs at least 3 nodes, got {n}")
    cleaned = sorted({d % n for d in offsets} - {0})
    if not cleaned:
        raise GraphError("offsets must contain a nonzero residue")
    edges = set()
    for v in range(n):
        for d in cleaned:
            u = (v + d) % n
            if u != v:
                edges.add(frozenset((v, u)))
    return LabeledGraph(sorted(tuple(sorted(e)) for e in edges), nodes=range(n))


def wheel_graph(rim: int) -> LabeledGraph:
    """The wheel W_rim: a ``rim``-cycle (nodes ``1..rim``) plus a hub
    ``0`` adjacent to every rim node (requires ``rim >= 3``)."""
    if rim < 3:
        raise GraphError(f"a wheel needs a rim of at least 3, got {rim}")
    edges = [(0, i) for i in range(1, rim + 1)]
    edges += [(i, i % rim + 1) for i in range(1, rim + 1)]
    return LabeledGraph(edges)


def caterpillar_graph(spine: int, legs_per_node: int) -> LabeledGraph:
    """A caterpillar: a spine path of ``spine`` nodes, each carrying
    ``legs_per_node`` leaf legs.  Spine nodes are ``0..spine-1``; legs
    get ids ``spine, spine+1, ...``."""
    if spine < 1:
        raise GraphError(f"the spine needs at least 1 node, got {spine}")
    if legs_per_node < 0:
        raise GraphError(f"legs_per_node must be nonnegative, got {legs_per_node}")
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            edges.append((i, next_id))
            next_id += 1
    return LabeledGraph(edges, nodes=range(next_id))


def petersen_graph() -> LabeledGraph:
    """The Petersen graph: outer 5-cycle 0-4, inner 5-star 5-9, spokes."""
    edges = []
    for i in range(5):
        edges.append((i, (i + 1) % 5))          # outer cycle
        edges.append((5 + i, 5 + (i + 2) % 5))  # inner pentagram
        edges.append((i, 5 + i))                # spokes
    return LabeledGraph(edges)


def random_connected_graph(
    n: int,
    extra_edge_probability: float = 0.2,
    seed: int = 0,
) -> LabeledGraph:
    """A random connected simple graph on ``n`` nodes.

    Construction: a uniform random spanning tree (random attachment),
    then each non-tree pair is added independently with
    ``extra_edge_probability``.  Deterministic for a fixed seed.
    """
    if n < 1:
        raise GraphError(f"need at least 1 node, got {n}")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise GraphError(
            f"extra_edge_probability must be in [0, 1], got {extra_edge_probability}"
        )
    rng = random.Random(seed)
    edges = set()
    for v in range(1, n):
        parent = rng.randrange(v)
        edges.add(frozenset((parent, v)))
    for u in range(n):
        for v in range(u + 1, n):
            if frozenset((u, v)) not in edges and rng.random() < extra_edge_probability:
                edges.add(frozenset((u, v)))
    return LabeledGraph(sorted(tuple(sorted(e)) for e in edges), nodes=range(n))


def random_regular_graph(n: int, degree: int, seed: int = 0, max_tries: int = 1000) -> LabeledGraph:
    """A random connected ``degree``-regular simple graph on ``n`` nodes.

    Uses the configuration model with rejection of loops/parallel edges
    and of disconnected outcomes.  ``n * degree`` must be even and
    ``degree < n``.
    """
    if degree < 1 or degree >= n:
        raise GraphError(f"degree must satisfy 1 <= degree < n, got degree={degree}, n={n}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = random.Random(seed)
    for _ in range(max_tries):
        edges = _configuration_model_attempt(n, degree, rng)
        if edges is None:
            continue
        try:
            return LabeledGraph(edges, nodes=range(n))
        except GraphError:
            continue  # disconnected attempt; retry
    raise GraphError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )


def _configuration_model_attempt(
    n: int, degree: int, rng: random.Random
) -> list[tuple] | None:
    stubs = [v for v in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    edges: set = set()
    for i in range(0, len(stubs), 2):
        u, v = stubs[i], stubs[i + 1]
        if u == v or frozenset((u, v)) in edges:
            return None
        edges.add(frozenset((u, v)))
    # Canonical edge order: the sampled *edge set* is the outcome; its
    # set-iteration order is not, and must not leak downstream.
    return sorted(tuple(sorted(e)) for e in edges)


def with_uniform_input(graph: LabeledGraph, value: object = 0) -> LabeledGraph:
    """Attach an ``input`` layer assigning every node the degree plus a
    constant value — the paper assumes every input label includes the
    node's degree (Section 1.1)."""
    return graph.with_layer(
        "input", {v: (graph.degree(v), value) for v in graph.nodes}
    )


FAMILY_BUILDERS = {
    "cycle": cycle_graph,
    "path": path_graph,
    "complete": complete_graph,
    "star": star_graph,
    "hypercube": hypercube_graph,
    "grid": grid_graph,
    "torus": torus_graph,
}
"""Name -> builder map used by the sweep helpers in ``repro.analysis``."""
