"""Labeled-graph substrate for anonymous-network computation.

This package provides the data layer of the model in Section 1.1 of the
paper: finite connected simple graphs whose nodes carry *label layers*
(input labels, 2-hop colorings, evolving bitstrings, ...) and a port
numbering at every node.
"""

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.builders import (
    caterpillar_graph,
    circulant_graph,
    complete_graph,
    cycle_graph,
    wheel_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
    binary_tree_graph,
    complete_bipartite_graph,
)
from repro.graphs.lifts import lift_graph, cyclic_lift
from repro.graphs.coloring import (
    greedy_k_hop_coloring,
    is_k_hop_coloring,
    is_two_hop_coloring,
    k_hop_conflicts,
)
from repro.graphs.encoding import canonical_encoding, encode_ordered_graph
from repro.graphs.properties import (
    diameter,
    degree_profile,
    is_connected,
    is_regular,
)
from repro.graphs.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)
from repro.graphs.isomorphism import (
    are_isomorphic,
    automorphisms,
    find_isomorphism,
    is_vertex_transitive,
)

__all__ = [
    "LabeledGraph",
    "caterpillar_graph",
    "circulant_graph",
    "wheel_graph",
    "complete_graph",
    "cycle_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "petersen_graph",
    "random_connected_graph",
    "random_regular_graph",
    "star_graph",
    "torus_graph",
    "binary_tree_graph",
    "complete_bipartite_graph",
    "lift_graph",
    "cyclic_lift",
    "greedy_k_hop_coloring",
    "is_k_hop_coloring",
    "is_two_hop_coloring",
    "k_hop_conflicts",
    "canonical_encoding",
    "encode_ordered_graph",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "diameter",
    "degree_profile",
    "is_connected",
    "is_regular",
    "are_isomorphic",
    "automorphisms",
    "find_isomorphism",
    "is_vertex_transitive",
]
