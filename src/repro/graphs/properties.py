"""Structural graph properties: connectivity, diameter, regularity.

These are centralized (whole-graph) computations used by builders,
validity checks and the analysis harness — not by the anonymous
algorithms themselves, which only ever see local information.
"""

from __future__ import annotations


from repro.exceptions import GraphError
from repro.graphs.labeled_graph import LabeledGraph, Node


def is_connected(graph: LabeledGraph) -> bool:
    """Whether the graph is connected (always true for graphs built with
    ``check_connected=True``; useful on fragments)."""
    start = graph.nodes[0]
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in graph.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == graph.num_nodes


def eccentricity(graph: LabeledGraph, v: Node) -> int:
    """Largest hop distance from ``v`` to any node."""
    distances = _bfs_distances(graph, v)
    if len(distances) != graph.num_nodes:
        raise GraphError("eccentricity is undefined on a disconnected graph")
    return max(distances.values())


def diameter(graph: LabeledGraph) -> int:
    """Largest hop distance between any two nodes."""
    return max(eccentricity(graph, v) for v in graph.nodes)


def degree_profile(graph: LabeledGraph) -> tuple[int, ...]:
    """The sorted multiset of node degrees."""
    return tuple(sorted(graph.degree(v) for v in graph.nodes))


def is_regular(graph: LabeledGraph) -> bool:
    """Whether all nodes have equal degree."""
    degrees = degree_profile(graph)
    return degrees[0] == degrees[-1]


def max_degree(graph: LabeledGraph) -> int:
    return max(graph.degree(v) for v in graph.nodes)


def _bfs_distances(graph: LabeledGraph, source: Node) -> dict[Node, int]:
    distances = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier = []
        for current in frontier:
            for neighbor in graph.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances
