"""Constructing *products* (lifts / covering graphs) of a labeled graph.

If ``G' ⪯_f G`` then ``G`` is a product of ``G'`` (paper Section 2.3.1).
This module goes the other way: given a base graph ``G'`` it constructs
products, which is how all our factor/product test fixtures and the
lifting-lemma experiments obtain nontrivial covering pairs.

The construction is the standard *permutation voltage* lift: fix a fiber
size ``m`` and assign to every base edge ``(u, v)`` (with ``u < v`` in
node order) a permutation ``π`` of ``{0..m-1}``; the lift has nodes
``(w, i)`` and edges ``((u, i), (v, π(i)))``.  Node labels and port-free
structure lift along the projection ``(w, i) -> w``, which is a
factorizing map by construction.  For example lifting the labeled 3-cycle
``C3`` with cyclic voltages yields the labeled ``C6`` and ``C12`` of the
paper's Figure 2.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.exceptions import GraphError
from repro.graphs.labeled_graph import Edge, LabeledGraph, Node

LiftNode = tuple[Node, int]
Voltage = Mapping[Edge, Sequence[int]]


def lift_graph(
    base: LabeledGraph,
    fiber_size: int,
    voltages: Voltage | None = None,
    seed: int = 0,
) -> tuple[LabeledGraph, dict[LiftNode, Node]]:
    """An ``fiber_size``-lift of ``base`` plus its projection map.

    Parameters
    ----------
    base:
        The base labeled graph ``G'``.
    fiber_size:
        Number of copies ``m >= 1`` of each node in the lift.
    voltages:
        Optional explicit permutation per base edge (keyed by the sorted
        edge pair); each permutation is a sequence of ``m`` distinct
        integers in ``0..m-1``.  When omitted, permutations are sampled
        with ``seed`` and re-sampled until the lift is connected.
    seed:
        RNG seed for sampled voltages.

    Returns
    -------
    (lift, projection):
        ``lift`` is the product graph on nodes ``(v, i)`` carrying the
        same label layers as ``base`` (lifted along the projection), and
        ``projection`` maps each lift node to its base node.  The
        projection is a factorizing map inducing ``base ⪯ lift``.
    """
    if fiber_size < 1:
        raise GraphError(f"fiber_size must be at least 1, got {fiber_size}")
    if fiber_size > 1 and base.num_edges == base.num_nodes - 1:
        raise GraphError(
            "a tree has no connected lift with fiber >= 2 (every voltage "
            "assignment on a tree is trivial); add a cycle to the base"
        )
    if voltages is not None:
        return _build_lift(base, fiber_size, _validated_voltages(base, fiber_size, voltages))

    rng = random.Random(seed)
    for _ in range(1000):
        sampled = {
            edge: tuple(rng.sample(range(fiber_size), fiber_size))
            for edge in base.edges()
        }
        try:
            return _build_lift(base, fiber_size, sampled)
        except GraphError:
            continue  # disconnected lift; resample voltages
    raise GraphError(
        f"failed to sample a connected {fiber_size}-lift of {base!r} in 1000 tries"
    )


def cyclic_lift(
    base: LabeledGraph, fiber_size: int, shift: int = 1
) -> tuple[LabeledGraph, dict[LiftNode, Node]]:
    """A lift where one chosen edge gets the cyclic shift ``i -> i+shift``
    and all other edges the identity permutation.

    On a cycle base this reproduces the paper's Figure 2 tower: the
    cyclic lift of ``C3`` with fiber 2 is ``C6``; with fiber 4, ``C12``.
    Connectivity requires ``gcd(shift, fiber_size)`` compatible with the
    base's cycle structure; a disconnected choice raises ``GraphError``.
    """
    edges = list(base.edges())
    identity = tuple(range(fiber_size))
    shifted = tuple((i + shift) % fiber_size for i in range(fiber_size))
    voltages = {edge: identity for edge in edges}
    voltages[edges[-1]] = shifted
    return lift_graph(base, fiber_size, voltages=voltages)


def _validated_voltages(
    base: LabeledGraph, fiber_size: int, voltages: Voltage
) -> dict[Edge, tuple[int, ...]]:
    validated: dict[Edge, tuple[int, ...]] = {}
    for edge in base.edges():
        if edge not in voltages:
            raise GraphError(f"missing voltage for edge {edge!r}")
        perm = tuple(voltages[edge])
        if sorted(perm) != list(range(fiber_size)):
            raise GraphError(
                f"voltage for edge {edge!r} must be a permutation of "
                f"0..{fiber_size - 1}, got {perm!r}"
            )
        validated[edge] = perm
    return validated


def _build_lift(
    base: LabeledGraph, fiber_size: int, voltages: dict[Edge, tuple[int, ...]]
) -> tuple[LabeledGraph, dict[LiftNode, Node]]:
    lift_edges = []
    for (u, v) in base.edges():
        perm = voltages[(u, v)]
        for i in range(fiber_size):
            lift_edges.append(((u, i), (v, perm[i])))
    nodes = [(v, i) for v in base.nodes for i in range(fiber_size)]
    layers = {
        name: {(v, i): base.label_of(v, name) for (v, i) in nodes}
        for name in base.layer_names
    }
    lift = LabeledGraph(lift_edges, nodes=nodes, layers=layers)
    projection = {(v, i): v for (v, i) in nodes}
    return lift, projection
