"""Canonical bitstring encodings of ordered labeled graphs.

The A* algorithm (paper Section 3.1) totally orders finite view graphs
by ``|V|`` first and then lexicographically on a bitstring representation
``s(G)`` that encodes "the ordinal number and label of every node as well
as every edge".  This module implements that representation for an
arbitrary labeled graph together with an explicit node ordering.

The encoding is a printable string (Python strings compare
lexicographically, which is all the total order needs); it is injective
on (graph, ordering) pairs: two ordered labeled graphs receive equal
encodings if and only if the ordering is a label- and
adjacency-preserving isomorphism between them.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.exceptions import GraphError
from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze


def _serialize_label(label: Any) -> str:
    """Deterministic serialization of one (frozen) label value.

    The value is length-prefixed with a fixed-width decimal so that no
    serialized label is a proper prefix of another.  That guarantees that
    sorting labels lexicographically also minimizes their comma-joined
    concatenation, which :func:`canonical_encoding` relies on when it
    prunes the ordering search to label-sorted orderings.
    """
    body = repr(_freeze(label))
    return f"{len(body):08d}:{body}"


def encode_ordered_graph(graph: LabeledGraph, order: Sequence[Node]) -> str:
    """The encoding ``s(G)`` relative to the node ordering ``order``.

    Layout: ``n=<k>;L=<label_0>,...;E=<i-j>,...`` where labels appear in
    ordinal order and edges as sorted ordinal pairs in sorted order.
    """
    if sorted(order, key=repr) != sorted(graph.nodes, key=repr):
        raise GraphError("order must be a permutation of the node set")
    index = {v: i for i, v in enumerate(order)}
    labels = ",".join(_serialize_label(graph.label(v)) for v in order)
    edge_pairs = sorted(
        tuple(sorted((index[u], index[v]))) for u, v in graph.edges()
    )
    edges = ",".join(f"{i}-{j}" for i, j in edge_pairs)
    return f"n={graph.num_nodes};L={labels};E={edges}"


def canonical_encoding(graph: LabeledGraph) -> str:
    """The minimal encoding over all node orderings — a canonical form.

    Exhaustive over orderings, so intended for the small graphs the
    faithful A* machinery manipulates (quotients are tiny); the practical
    derandomizer orders nodes by their canonical views instead and calls
    :func:`encode_ordered_graph` directly.

    Uses label-class pruning: only orderings consistent with a stable
    partition by (label, degree) can be minimal, which keeps the search
    tractable for the graph sizes A* actually enumerates.
    """
    nodes = list(graph.nodes)
    if len(nodes) > 9:
        raise GraphError(
            f"canonical_encoding is exhaustive and limited to 9 nodes, got {len(nodes)}"
        )
    best: str | None = None
    for order in _orderings_grouped_by_class(graph, nodes):
        encoding = encode_ordered_graph(graph, order)
        if best is None or encoding < best:
            best = encoding
    assert best is not None
    return best


def _orderings_grouped_by_class(graph: LabeledGraph, nodes: list) -> "list[list[Node]]":
    """All orderings in which serialized labels appear in non-decreasing
    order; only permutations within an equal-label class vary.  This is
    sound because the encoding lists labels before edges, so the
    lexicographically minimal encoding necessarily sorts the label
    sequence — restricting the search to label-sorted orderings cannot
    miss the minimum.
    """
    import itertools

    def class_key(v: Node) -> str:
        return _serialize_label(graph.label(v))

    groups: dict = {}
    for v in nodes:
        groups.setdefault(class_key(v), []).append(v)
    keys = sorted(groups)
    class_perms = [list(itertools.permutations(groups[key])) for key in keys]
    orderings = []
    for combo in itertools.product(*class_perms):
        ordering: list = []
        for chunk in combo:
            ordering.extend(chunk)
        orderings.append(ordering)
    return orderings
