"""Labeled-graph isomorphism, automorphisms and vertex-transitivity.

Isomorphism here always means *label-respecting* isomorphism: a bijection
``f`` with ``(u, v) ∈ E ⟺ (f(u), f(v)) ∈ E'`` and ``l(v) = l'(f(v))`` —
i.e. a bijective factorizing map (paper Section 2.3.1, the ``m = 1``
case).  Port numberings are deliberately ignored: factors and products
are port-free notions.

The search is a backtracking matcher with color-refinement pruning,
adequate for the graph sizes the reproduction manipulates (quotients and
candidates are small; experiment graphs are a few hundred nodes and are
only isomorphism-tested in assertions on small cases).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.labeled_graph import LabeledGraph, Node, _freeze


def _refined_classes(graph: LabeledGraph) -> dict[Node, int]:
    """Stable color-refinement classes seeded by (label, degree).

    Two nodes in different classes can never correspond under any
    label-respecting isomorphism, so classes drive the matcher's pruning.
    """
    color: dict[Node, object] = {
        v: (_freeze(graph.label(v)), graph.degree(v)) for v in graph.nodes
    }
    while True:
        signature = {
            v: (color[v], tuple(sorted(repr(color[u]) for u in graph.neighbors(v))))
            for v in graph.nodes
        }
        palette = {sig: i for i, sig in enumerate(sorted({repr(s) for s in signature.values()}))}
        new_color = {v: palette[repr(signature[v])] for v in graph.nodes}
        if len(set(new_color.values())) == len(set(map(repr, color.values()))):
            return new_color
        color = new_color


def _class_signature(graph: LabeledGraph, classes: dict[Node, int]) -> tuple:
    """Multiset of (class size, representative label, degree) — a cheap
    isomorphism invariant used to reject mismatched graphs early."""
    by_class: dict[int, list[Node]] = {}
    for v, c in classes.items():
        by_class.setdefault(c, []).append(v)
    return tuple(
        sorted(
            (
                len(members),
                repr(_freeze(graph.label(members[0]))),
                graph.degree(members[0]),
            )
            for members in by_class.values()
        )
    )


def _isomorphisms(
    graph_a: LabeledGraph, graph_b: LabeledGraph
) -> Iterator[dict[Node, Node]]:
    """Yield all label-respecting isomorphisms from ``graph_a`` to ``graph_b``."""
    if graph_a.num_nodes != graph_b.num_nodes or graph_a.num_edges != graph_b.num_edges:
        return
    if graph_a.layer_names != graph_b.layer_names:
        return
    classes_a = _refined_classes(graph_a)
    classes_b = _refined_classes(graph_b)
    if _class_signature(graph_a, classes_a) != _class_signature(graph_b, classes_b):
        return

    # Candidate targets for each source node: nodes of graph_b with the
    # same (label, degree, class size) fingerprint.
    def fingerprint(graph: LabeledGraph, classes: dict[Node, int], v: Node) -> tuple:
        size = sum(1 for u in classes if classes[u] == classes[v])
        return (repr(_freeze(graph.label(v))), graph.degree(v), size)

    fp_b: dict[tuple, list[Node]] = {}
    for v in graph_b.nodes:
        fp_b.setdefault(fingerprint(graph_b, classes_b, v), []).append(v)
    candidates: dict[Node, list[Node]] = {}
    for v in graph_a.nodes:
        candidates[v] = fp_b.get(fingerprint(graph_a, classes_a, v), [])
        if not candidates[v]:
            return

    # Match nodes in order of fewest candidates first.
    order = sorted(graph_a.nodes, key=lambda v: (len(candidates[v]), repr(v)))
    mapping: dict[Node, Node] = {}
    used: set = set()

    def consistent(v: Node, target: Node) -> bool:
        for u in graph_a.neighbors(v):
            if u in mapping and not graph_b.has_edge(mapping[u], target):
                return False
        for u in graph_a.nodes:
            if u in mapping and not graph_a.has_edge(u, v):
                if graph_b.has_edge(mapping[u], target):
                    return False
        return True

    def extend(position: int) -> Iterator[dict[Node, Node]]:
        if position == len(order):
            yield dict(mapping)
            return
        v = order[position]
        for target in candidates[v]:
            if target in used or not consistent(v, target):
                continue
            mapping[v] = target
            used.add(target)
            yield from extend(position + 1)
            del mapping[v]
            used.discard(target)

    yield from extend(0)


def find_isomorphism(
    graph_a: LabeledGraph, graph_b: LabeledGraph
) -> dict[Node, Node] | None:
    """A label-respecting isomorphism a->b, or ``None`` if none exists."""
    for mapping in _isomorphisms(graph_a, graph_b):
        return mapping
    return None


def are_isomorphic(graph_a: LabeledGraph, graph_b: LabeledGraph) -> bool:
    """Whether the two labeled graphs are isomorphic (``G ≅ G'``)."""
    return find_isomorphism(graph_a, graph_b) is not None


def automorphisms(graph: LabeledGraph) -> list[dict[Node, Node]]:
    """All label-respecting automorphisms of ``graph``."""
    return list(_isomorphisms(graph, graph))


def is_vertex_transitive(graph: LabeledGraph) -> bool:
    """Whether the automorphism group acts transitively on the nodes.

    Vertex-transitive unlabeled graphs are the canonical hard cases for
    anonymous computation: every node looks identical, so deterministic
    leader election is impossible (Angluin).  Used by the impossibility
    experiments.
    """
    nodes = graph.nodes
    orbit = {nodes[0]}
    for auto in _isomorphisms(graph, graph):
        orbit.add(auto[nodes[0]])
        if len(orbit) == graph.num_nodes:
            return True
    return len(orbit) == graph.num_nodes
