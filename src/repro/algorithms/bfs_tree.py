"""Leader + BFS spanning tree on prime 2-hop colored instances.

The paper's related-work discussion notes that electing a leader makes
everything ID-solvable solvable.  On *prime* 2-hop colored instances a
leader exists deterministically (minimal view alias — see
:mod:`repro.problems.election`), and this module completes the classic
follow-up: a BFS spanning tree rooted at the leader, computed by a
deterministic anonymous algorithm.  Colors give nodes addressable
identities within neighborhoods, so each node can output its BFS depth
*and its parent's color* — a globally checkable encoding of the tree.

The algorithm composes two phases in one state machine:

1. the minimal-view election (each node grows its view for ``2n``
   rounds, then knows whether it is the root);
2. BFS flooding: the root announces depth 0; an undecided node adopting
   depth ``d+1`` records the color of (one of) the announcing
   neighbor(s) as its parent.

Input labels must be ``((degree, n, ...), color)`` like the election
algorithm's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.problem import DistributedProblem, OutputLabeling
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.views.view_tree import ViewTree


class BFSTreeProblem(DistributedProblem):
    """Output a BFS tree rooted at a unique root.

    Valid outputs: exactly one node outputs ``("root", 0)``; every other
    node outputs ``("child", depth, parent_color)`` where depth equals
    its true hop distance from the root and some neighbor at depth-1 has
    the named color.  Requires the instance to carry a ``color`` layer
    (parent colors are only meaningful against it).
    """

    name = "bfs-tree"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph) and graph.has_layer("color")

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        roots = [v for v in graph.nodes if outputs[v] == ("root", 0)]
        if len(roots) != 1:
            return False
        root = roots[0]
        colors = graph.layer("color")
        for v in graph.nodes:
            if v == root:
                continue
            value = outputs[v]
            if not (isinstance(value, tuple) and len(value) == 3 and value[0] == "child"):
                return False
            _tag, depth, parent_color = value
            if depth != graph.distance(root, v):
                return False
            parents = [
                u
                for u in graph.neighbors(v)
                if colors[u] == parent_color
                and (outputs[u] == ("root", 0) and depth == 1
                     or outputs[u][:2] == ("child", depth - 1))
            ]
            if not parents:
                return False
        return True


@dataclass(frozen=True)
class _State:
    n: int
    color: Any
    view: ViewTree
    round_number: int
    is_root: bool | None
    depth: int | None
    parent_color: Any
    output: tuple | None


class LeaderBFSTree(AnonymousAlgorithm):
    """Deterministic BFS tree on prime 2-hop colored instances."""

    bits_per_round = 0
    name = "leader-bfs-tree"

    def init_state(self, input_label, degree: int) -> _State:
        real_input, color = input_label
        n = real_input[1]
        return _State(
            n=n,
            color=color,
            view=ViewTree.leaf((real_input, color)),
            round_number=0,
            is_root=None,
            depth=None,
            parent_color=None,
            output=None,
        )

    def message(self, state: _State):
        if state.is_root is None:
            return ("view", state.view)
        return ("bfs", state.color, state.depth)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        if state.output is not None:
            return replace(state, round_number=round_number)

        if state.is_root is None:
            grown = ViewTree.make(state.view.mark, [m[1] for m in received])
            if round_number < 2 * state.n:
                return replace(state, view=grown, round_number=round_number)
            # Election decision (as in MinimalViewElection).
            n = state.n
            my_alias = grown.truncate(n)
            # Truncated views are interned, so equal sort_key means the
            # same object; min() needs no identity-keyed deduplication
            # (and id() would leak node identity into algorithm state).
            minimum = min(
                (sub.truncate(n) for sub in grown.subtrees() if sub.depth >= n),
                key=lambda t: t.sort_key(),
            )
            if my_alias is minimum:
                return replace(
                    state,
                    view=grown,
                    round_number=round_number,
                    is_root=True,
                    depth=0,
                    output=("root", 0),
                )
            return replace(
                state, view=grown, round_number=round_number, is_root=False
            )

        # BFS phase: adopt depth+1 from the smallest-depth announcer.
        announcements = [
            (depth_u, color_u)
            for (tag, color_u, depth_u) in received
            if tag == "bfs" and depth_u is not None
        ]
        if not announcements:
            return replace(state, round_number=round_number)
        best_depth, best_color = min(
            announcements, key=lambda item: (item[0], repr(item[1]))
        )
        depth = best_depth + 1
        return replace(
            state,
            round_number=round_number,
            depth=depth,
            parent_color=best_color,
            output=("child", depth, best_color),
        )

    def output(self, state: _State) -> tuple | None:
        return state.output
