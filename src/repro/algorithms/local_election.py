"""Randomized k-local election (k ∈ {1, 2}).

The paper's related work cites Métivier-Saheb-Zemmari's *k-local
elections*: a node should become a leader that is unique within distance
``k`` — global uniqueness is unattainable anonymously, local uniqueness
is exactly what randomness can buy.  A 1-local leader set is an MIS; a
2-local leader set is an independent set whose members are pairwise more
than 2 hops apart and dominating within 2 hops — structurally the same
cut that makes 2-hop *coloring* the paper's boundary.

Implementation: the priority-stream machinery of the MIS algorithm,
widened to radius 2 by relaying neighbor priorities (exactly like the
2-hop coloring algorithm relays colors).  Outputs ``True`` for k-local
leaders, ``False`` otherwise.  For ``k = 1`` this *is* the MIS
algorithm; the class exists for the ``k = 2`` case.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algorithms.bitstrings import diverged, stream_greater
from repro.runtime.algorithm import AnonymousAlgorithm

ACTIVE = "ACTIVE"
LEADER = "LEADER"
DOMINATED = "DOMINATED"

Entry = tuple[str, str]  # (status, priority)


@dataclass(frozen=True)
class _State:
    status: str
    priority: str
    prev_entry: Entry
    heard: tuple[Entry, ...]
    round_number: int


class TwoLocalElection(AnonymousAlgorithm):
    """Las-Vegas 2-local election: leaders are unique within 2 hops and
    every node is within 2 hops of a leader.

    Output: ``True`` (2-local leader) or ``False``.
    """

    bits_per_round = 1
    name = "two-local-election"

    _FIRST_DECISION_ROUND = 3

    def init_state(self, input_label, degree: int) -> _State:
        return _State(
            status=ACTIVE,
            priority="",
            prev_entry=("", ACTIVE),
            heard=(),
            round_number=0,
        )

    def message(self, state: _State):
        return (state.status, state.priority, state.heard)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        heard_now: tuple[Entry, ...] = tuple(
            (priority, status) for (status, priority, _lists) in received
        )
        if state.status != ACTIVE:
            return replace(
                state,
                round_number=round_number,
                prev_entry=(state.priority, state.status),
                heard=heard_now,
            )

        # A LEADER within 2 hops dominates me.
        two_hop_entries = self._two_hop_entries(state, received)
        if any(status == LEADER for (_priority, status) in two_hop_entries):
            return _State(
                status=DOMINATED,
                priority=state.priority,
                prev_entry=(state.priority, ACTIVE),
                heard=heard_now,
                round_number=round_number,
            )

        active_entries = [
            priority for (priority, status) in two_hop_entries if status == ACTIVE
        ]
        dominates = all(
            diverged(state.priority, other)
            and stream_greater(state.priority, other)
            for other in active_entries
        )
        if dominates and round_number >= self._FIRST_DECISION_ROUND:
            return _State(
                status=LEADER,
                priority=state.priority,
                prev_entry=(state.priority, ACTIVE),
                heard=heard_now,
                round_number=round_number,
            )
        return _State(
            status=ACTIVE,
            priority=state.priority + bits,
            prev_entry=(state.priority, ACTIVE),
            heard=heard_now,
            round_number=round_number,
        )

    def output(self, state: _State) -> bool | None:
        if state.status == LEADER:
            return True
        if state.status == DOMINATED:
            return False
        return None

    # ------------------------------------------------------------------

    def _two_hop_entries(self, state: _State, received):
        """All (priority, status) entries within 2 hops, my own echo
        removed once per neighbor list (as in the coloring algorithm)."""
        entries = []
        for (status_u, priority_u, list_u) in received:
            entries.append((priority_u, status_u))
            relayed = list(list_u)
            if relayed:
                try:
                    relayed.remove(state.prev_entry)
                except ValueError as exc:
                    raise AssertionError(
                        "own echo missing from a neighbor list"
                    ) from exc
            entries.extend(relayed)
        return entries
