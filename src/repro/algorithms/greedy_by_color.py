"""Deterministic algorithms that consume a 2-hop coloring directly.

These are the *baselines* for the derandomization experiments: Theorem 1
derandomizes any GRAN problem generically, but for concrete problems
like MIS and coloring a 2-hop coloring enables simple direct
deterministic algorithms (greedy in color order).  Comparing the generic
A*/A_∞ machinery against these shows what the generality costs.

Both algorithms expect each node's composed label to be the tuple
``(input_label, color)`` — i.e. the graph carries layers
``("input", "color")`` in that order — and rely on colors being distinct
within every closed neighborhood, which a 2-hop coloring guarantees.

Colors are ordered by ``(length, lexicographic)`` on their string form,
matching the bitstring order used everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.runtime.algorithm import AnonymousAlgorithm


def _color_key(color) -> tuple[int, str]:
    text = color if isinstance(color, str) else repr(color)
    return (len(text), text)


@dataclass(frozen=True)
class _MISState:
    color: object
    status: str  # "active" | "in" | "out"
    round_number: int


class GreedyMISByColor(AnonymousAlgorithm):
    """Deterministic MIS by greedy color order.

    A node joins the MIS once every neighbor of smaller color has decided
    and none of its neighbors is in the MIS; it leaves (``OUT``) as soon
    as a neighbor joins.  Colors are locally distinct, so "smaller" is
    well-defined, and in every round the undecided node of locally
    minimal color decides — termination within ``2n`` rounds.
    """

    bits_per_round = 0
    name = "greedy-mis-by-color"

    def init_state(self, input_label, degree: int) -> _MISState:
        _input, color = input_label
        return _MISState(color=color, status="active", round_number=0)

    def message(self, state: _MISState):
        return (state.status, state.color)

    def transition(self, state: _MISState, received, bits: str) -> _MISState:
        round_number = state.round_number + 1
        if state.status != "active":
            return replace(state, round_number=round_number)
        if any(status == "in" for (status, _color) in received):
            return replace(state, status="out", round_number=round_number)
        smaller_undecided = [
            color
            for (status, color) in received
            if status == "active" and _color_key(color) < _color_key(state.color)
        ]
        if not smaller_undecided and round_number >= 2:
            return replace(state, status="in", round_number=round_number)
        return replace(state, round_number=round_number)

    def output(self, state: _MISState) -> bool | None:
        if state.status == "in":
            return True
        if state.status == "out":
            return False
        return None


@dataclass(frozen=True)
class _ColoringState:
    color: object
    output_color: int | None
    neighbor_outputs: tuple
    round_number: int


class GreedyColoringByColor(AnonymousAlgorithm):
    """Deterministic proper coloring by greedy color order.

    Nodes decide in 2-hop color order; each picks the smallest
    nonnegative integer unused by already-decided neighbors.  (The 2-hop
    coloring itself is of course a proper coloring — the point of the
    baseline is to mimic the classic color-*reduction* greedy, producing
    at most ``Δ + 1`` integer colors.)
    """

    bits_per_round = 0
    name = "greedy-coloring-by-color"

    def init_state(self, input_label, degree: int) -> _ColoringState:
        _input, color = input_label
        return _ColoringState(
            color=color, output_color=None, neighbor_outputs=(), round_number=0
        )

    def message(self, state: _ColoringState):
        return (state.color, state.output_color)

    def transition(self, state: _ColoringState, received, bits: str) -> _ColoringState:
        round_number = state.round_number + 1
        if state.output_color is not None:
            return replace(state, round_number=round_number)
        undecided_smaller = [
            color
            for (color, out) in received
            if out is None and _color_key(color) < _color_key(state.color)
        ]
        if not undecided_smaller and round_number >= 2:
            taken = {out for (_color, out) in received if out is not None}
            choice = 0
            while choice in taken:
                choice += 1
            return replace(state, output_color=choice, round_number=round_number)
        return replace(state, round_number=round_number)

    def output(self, state: _ColoringState) -> int | None:
        return state.output_color
