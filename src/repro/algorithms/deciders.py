"""Anonymous deciders — the second half of a GRAN certificate.

The problems in this reproduction (MIS, coloring, matching) accept every
connected graph with well-formed inputs, so their instance decision
problems Δ_Π reduce to *local* checks; the deciders below perform them
anonymously.  Deterministic algorithms are a special case of randomized
ones, so they witness GRAN membership just fine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.problems.decision import NO, YES
from repro.runtime.algorithm import AnonymousAlgorithm


@dataclass(frozen=True)
class _DecState:
    verdict: str | None
    payload: tuple = ()
    round_number: int = 0


class WellFormedInputDecider(AnonymousAlgorithm):
    """Decides Δ_Π for input-format problems: YES iff every node's input
    label is a tuple whose first entry equals its degree.

    Each node checks only itself — a single bad node says NO, which is
    exactly the Δ_Y acceptance rule.  Decides in zero rounds.
    """

    bits_per_round = 0
    name = "decide-well-formed-input"

    def init_state(self, input_label, degree: int) -> _DecState:
        well_formed = (
            isinstance(input_label, tuple)
            and len(input_label) >= 1
            and isinstance(input_label[0], tuple)
            and len(input_label[0]) >= 1
            and input_label[0][0] == degree
        )
        return _DecState(verdict=YES if well_formed else NO)

    def message(self, state: _DecState):
        return ()

    def transition(self, state: _DecState, received, bits: str) -> _DecState:
        return replace(state, round_number=state.round_number + 1)

    def output(self, state: _DecState) -> str | None:
        return state.verdict


class TwoHopColoringDecider(AnonymousAlgorithm):
    """Decides whether the graph's composed label ``(input, color)`` carries
    a valid 2-hop coloring (the instance check of Π^c).

    Two rounds of broadcast: first everyone's color, then everyone's
    received color list.  A node says NO if its input is malformed, if a
    neighbor shares its color, or if removing its own echo once from a
    neighbor's list still leaves an entry equal to its color.
    """

    bits_per_round = 0
    name = "decide-two-hop-coloring"

    def init_state(self, input_label, degree: int) -> _DecState:
        well_formed = (
            isinstance(input_label, tuple)
            and len(input_label) == 2
            and isinstance(input_label[0], tuple)
            and len(input_label[0]) >= 1
            and input_label[0][0] == degree
        )
        color = input_label[1] if well_formed else None
        return _DecState(verdict=None, payload=("fresh", color, well_formed, ()))

    def message(self, state: _DecState):
        stage, color, _well_formed, heard = state.payload
        if stage == "fresh":
            return ("color", color)
        return ("list", color, heard)

    def transition(self, state: _DecState, received, bits: str) -> _DecState:
        stage, color, well_formed, _heard = state.payload
        round_number = state.round_number + 1
        if state.verdict is not None:
            return replace(state, round_number=round_number)
        if stage == "fresh":
            heard = tuple(message[1] for message in received)
            if not well_formed:
                return _DecState(verdict=NO, payload=("done", color, well_formed, heard))
            if any(c == color for c in heard):
                return _DecState(verdict=NO, payload=("done", color, well_formed, heard))
            return _DecState(
                verdict=None,
                payload=("lists", color, well_formed, heard),
                round_number=round_number,
            )
        # Second round: check 2-hop conflicts via neighbor lists.
        verdict = YES
        for message in received:
            if message[0] != "list":
                verdict = NO
                break
            _tag, _color_u, list_u = message
            entries = list(list_u)
            if color in entries:
                entries.remove(color)  # my own echo, exactly once
            if color in entries:
                verdict = NO
                break
        return _DecState(
            verdict=verdict,
            payload=("done", color, well_formed, ()),
            round_number=round_number,
        )

    def output(self, state: _DecState) -> str | None:
        return state.verdict
