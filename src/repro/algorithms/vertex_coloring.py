"""Randomized anonymous (1-hop) vertex coloring.

The 1-hop little sibling of
:class:`~repro.algorithms.two_hop_coloring.TwoHopColoringAlgorithm`:
colors only need to differ between *adjacent* nodes, so no neighbor
lists are relayed — a node commits once every neighbor's (one round
stale) color has visibly diverged from its own, by the same
prefix-permanence argument.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algorithms.bitstrings import prefix_related
from repro.runtime.algorithm import AnonymousAlgorithm


@dataclass(frozen=True)
class _State:
    color: str
    committed: bool
    output: str | None
    round_number: int


class VertexColoringAlgorithm(AnonymousAlgorithm):
    """Las-Vegas anonymous proper coloring (outputs are bitstring colors)."""

    bits_per_round = 1
    name = "vertex-coloring"

    _FIRST_COMMIT_ROUND = 2

    def init_state(self, input_label, degree: int) -> _State:
        return _State(color="", committed=False, output=None, round_number=0)

    def message(self, state: _State):
        return (state.color, state.committed)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        if state.committed:
            return replace(state, round_number=round_number)
        conflict = any(
            self._entry_conflicts(state.color, color_u, committed_u)
            for (color_u, committed_u) in received
        )
        if not conflict and round_number >= self._FIRST_COMMIT_ROUND:
            return _State(
                color=state.color,
                committed=True,
                output=state.color,
                round_number=round_number,
            )
        return _State(
            color=state.color + bits,
            committed=False,
            output=None,
            round_number=round_number,
        )

    def output(self, state: _State):
        return state.output

    @staticmethod
    def _entry_conflicts(my_color: str, other_color: str, other_committed: bool) -> bool:
        if other_committed:
            return other_color == my_color
        return prefix_related(my_color, other_color)
