"""Randomized anonymous maximal independent set.

In the spirit of Luby's algorithm, adapted to the anonymous Las-Vegas
setting: every *active* node grows a random priority bitstring (one bit
per round) and joins the MIS once its priority stream *visibly
dominates* every active neighbor's.  Dominance is decided at the first
differing bit of the two streams; because streams only extend, a visible
divergence orders them permanently (see
:mod:`repro.algorithms.bitstrings`).

Round structure (all broadcast):

* a node's message carries its status (``ACTIVE`` / ``IN`` / ``OUT``)
  and, while active, its priority as of the previous round;
* an active node that sees an ``IN`` neighbor leaves as ``OUT``;
* an active node joins (``IN``) when, for every neighbor that is still
  active, the streams have visibly diverged and its own is greater.

Independence: two adjacent nodes joining in the same round would each
have seen visible strict dominance over the other — impossible.  A node
joining cannot have an already-``IN`` neighbor (it would have gone
``OUT`` on hearing it).  Maximality: ``OUT`` is only ever caused by an
``IN`` neighbor.  Termination: streams of adjacent active nodes diverge
with probability 1, and the maximal visible stream in any active
component dominates its neighbors, so progress is a.s. perpetual.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algorithms.bitstrings import diverged, stream_greater
from repro.runtime.algorithm import AnonymousAlgorithm

ACTIVE = "ACTIVE"
IN = "IN"
OUT = "OUT"


@dataclass(frozen=True)
class _State:
    status: str
    priority: str
    round_number: int

    @property
    def decided(self) -> bool:
        return self.status != ACTIVE


class AnonymousMISAlgorithm(AnonymousAlgorithm):
    """Las-Vegas anonymous MIS (outputs ``True`` for IN, ``False`` for OUT)."""

    bits_per_round = 1
    name = "anonymous-mis"

    # A join needs at least one round of neighbor information.
    _FIRST_JOIN_ROUND = 2

    def init_state(self, input_label, degree: int) -> _State:
        return _State(status=ACTIVE, priority="", round_number=0)

    def message(self, state: _State):
        return (state.status, state.priority)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        if state.decided:
            return replace(state, round_number=round_number)

        if any(status == IN for (status, _priority) in received):
            return _State(status=OUT, priority=state.priority, round_number=round_number)

        active_neighbors = [
            priority for (status, priority) in received if status == ACTIVE
        ]
        dominates_all = all(
            diverged(state.priority, other) and stream_greater(state.priority, other)
            for other in active_neighbors
        )
        if dominates_all and round_number >= self._FIRST_JOIN_ROUND:
            return _State(status=IN, priority=state.priority, round_number=round_number)

        return _State(
            status=ACTIVE,
            priority=state.priority + bits,
            round_number=round_number,
        )

    def output(self, state: _State) -> bool | None:
        if state.status == IN:
            return True
        if state.status == OUT:
            return False
        return None
