"""Bitstring comparison helpers shared by the randomized algorithms.

Every randomized algorithm in this package grows a per-node bitstring by
one random bit per round.  The three predicates here capture the safety
reasoning:

* :func:`prefix_related` — one string is a prefix of the other (possibly
  equal).  While two nodes' visible strings are prefix-related their
  future values may still collide; any commitment must wait.
* :func:`diverged` — the strings differ at some position both possess.
  Extension never erases a divergence, so a visible divergence is a
  *permanent* distinction between the two nodes' streams.
* :func:`stream_greater` — once diverged, the first differing bit orders
  the two infinite streams for good; this is the comparison the MIS
  algorithm uses for its join rule.
"""

from __future__ import annotations



def prefix_related(a: str, b: str) -> bool:
    """Whether one bitstring is a prefix of the other (equality included)."""
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    return longer.startswith(shorter)


def diverged(a: str, b: str) -> bool:
    """Whether the strings differ at a position both have — a permanent
    distinction under extension."""
    return not prefix_related(a, b)


def stream_greater(a: str, b: str) -> bool:
    """Whether stream ``a`` is greater than stream ``b`` at their first
    visible difference.  Only meaningful when ``diverged(a, b)``."""
    if not diverged(a, b):
        raise ValueError(
            f"streams {a!r} and {b!r} are prefix-related; their order is undetermined"
        )
    for bit_a, bit_b in zip(a, b):
        if bit_a != bit_b:
            return bit_a > bit_b
    raise AssertionError("unreachable: diverged strings differ within the overlap")


def bitstring_order_key(s: str) -> tuple[int, str]:
    """The paper's bitstring order: by length first, then lexicographic."""
    return (len(s), s)
