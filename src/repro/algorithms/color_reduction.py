"""Deterministic distance-2 color reduction.

The randomized 2-hop coloring outputs bitstrings whose length grows with
the run; applications (e.g. radio frequency assignment) want colors from
a small fixed palette.  Given *any* 2-hop coloring, this deterministic
anonymous algorithm re-colors greedily in color order so that the result
is again a 2-hop coloring but uses at most ``Δ² + 1`` integer colors —
the distance-2 analogue of the classic greedy palette reduction.

Round structure (broadcast): each round every node sends its original
color, its decision (new color or ``None``), and the decisions it heard
last round (so decisions propagate 2 hops).  A node decides once every
2-hop neighbor with a smaller original color has decided, picking the
smallest integer unused within its 2-hop neighborhood.  Original colors
are distinct within 2 hops, so "smaller" is well-defined and some
undecided node is always locally minimal — termination in at most
``2n`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.runtime.algorithm import AnonymousAlgorithm


def _color_key(color) -> tuple[int, str]:
    text = color if isinstance(color, str) else repr(color)
    return (len(text), text)


@dataclass(frozen=True)
class _State:
    original: object
    decision: int | None
    # (original color, decision) pairs heard in the previous round —
    # re-broadcast so 2-hop neighbors see them one round later.
    heard: tuple
    round_number: int


class TwoHopColorReduction(AnonymousAlgorithm):
    """Reduce a 2-hop coloring to at most ``Δ² + 1`` integer colors.

    Expects the composed node label ``(input_label, color)`` (layers
    ``input`` then ``color``) where the color layer is a valid 2-hop
    coloring.  Outputs integers forming a 2-hop coloring.
    """

    bits_per_round = 0
    name = "two-hop-color-reduction"

    def init_state(self, input_label, degree: int) -> _State:
        _input, color = input_label
        return _State(original=color, decision=None, heard=(), round_number=0)

    def message(self, state: _State):
        return (state.original, state.decision, state.heard)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        heard_now = tuple((orig, dec) for (orig, dec, _lists) in received)
        if state.decision is not None:
            return replace(state, heard=heard_now, round_number=round_number)

        # My 2-hop picture: direct neighbors (fresh) + their neighbors
        # (one round stale).  The stale lists include my own echo; unlike
        # conflict detection, the echo is harmless here — my own original
        # color is never smaller than itself and my decision is None.
        entries: dict[str, tuple] = {}
        for (orig, dec, list_u) in received:
            entries[repr(orig)] = (orig, dec)
            for (orig_w, dec_w) in list_u:
                if repr(orig_w) != repr(state.original):
                    # Keep the freshest seen decision per original color.
                    existing = entries.get(repr(orig_w))
                    if existing is None or (existing[1] is None and dec_w is not None):
                        entries[repr(orig_w)] = (orig_w, dec_w)

        # Wait until full 2-hop info has flowed in (two rounds).
        if round_number < 3:
            return replace(state, heard=heard_now, round_number=round_number)

        my_key = _color_key(state.original)
        undecided_smaller = [
            orig
            for (orig, dec) in entries.values()
            if dec is None and _color_key(orig) < my_key
        ]
        if undecided_smaller:
            return replace(state, heard=heard_now, round_number=round_number)
        taken = {dec for (_orig, dec) in entries.values() if dec is not None}
        choice = 0
        while choice in taken:
            choice += 1
        return _State(
            original=state.original,
            decision=choice,
            heard=heard_now,
            round_number=round_number,
        )

    def output(self, state: _State) -> int | None:
        return state.decision
