"""Monte-Carlo leader election — the contrast class to Las-Vegas GRAN.

Section 1.3 recalls that electing a leader *with a Monte-Carlo
algorithm* (allowed to fail with small probability) is possible, and
that with IDs / an elected leader everything solvable becomes solvable
w.h.p.  This module implements the textbook construction so the
reproduction can *measure* the Las-Vegas/Monte-Carlo gap:

each node draws ``id_bits`` random bits as a tentative identifier and
floods the maximum for ``n - 1`` rounds (the node count ``n`` comes from
the input label — prior knowledge that election provably needs); the
holder of the maximum elects itself.  The algorithm errs exactly when
the maximum identifier collides, i.e. with probability at most
``n^2 / 2^id_bits`` — the failure-rate experiment sweeps ``id_bits`` and
observes that decay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.problems.election import FOLLOWER, LEADER
from repro.runtime.algorithm import AnonymousAlgorithm


@dataclass(frozen=True)
class _State:
    n: int
    my_id: str | None
    best: str | None
    round_number: int
    output: str | None


class MonteCarloElection(AnonymousAlgorithm):
    """Monte-Carlo election by random-ID max-flooding.

    Input label must be ``(degree, n, ...)``.  Uses ``id_bits`` random
    bits (drawn over the first ``ceil(id_bits / bits_per_round)``
    rounds), then floods for ``n - 1`` rounds and decides.  Not
    Las-Vegas: with probability ``<= n^2 / 2^id_bits`` two nodes share
    the maximal ID and *both* elect themselves.
    """

    name = "monte-carlo-election"

    def __init__(self, id_bits: int = 16) -> None:
        if id_bits < 1:
            raise ValueError(f"id_bits must be positive, got {id_bits}")
        self.id_bits = id_bits
        self.bits_per_round = id_bits  # draw the whole ID in round 1

    def init_state(self, input_label, degree: int) -> _State:
        # The composed label is a tuple of layer values; the input layer
        # comes first and is itself the tuple (degree, n, ...).
        n = input_label[0][1]
        return _State(n=n, my_id=None, best=None, round_number=0, output=None)

    def message(self, state: _State):
        return state.best

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        if state.output is not None:
            return replace(state, round_number=round_number)
        if state.my_id is None:
            # Round 1: adopt the drawn ID; flooding starts next round.
            return _State(
                n=state.n,
                my_id=bits,
                best=bits,
                round_number=round_number,
                output=None,
            )
        best = state.best
        for other in received:
            if other is not None and other > best:
                best = other
        # Flooding rounds 2 .. n: after n - 1 exchanges the maximum has
        # reached everyone (diameter <= n - 1).
        if round_number >= state.n + 1 or state.n == 1:
            verdict = LEADER if best == state.my_id else FOLLOWER
            return _State(
                n=state.n,
                my_id=state.my_id,
                best=best,
                round_number=round_number,
                output=verdict,
            )
        return _State(
            n=state.n,
            my_id=state.my_id,
            best=best,
            round_number=round_number,
            output=None,
        )

    def output(self, state: _State) -> str | None:
        return state.output


def failure_probability_bound(n: int, id_bits: int) -> float:
    """The union bound ``n^2 / 2^id_bits`` on the collision probability."""
    return min(1.0, n * n / float(2 ** id_bits))
