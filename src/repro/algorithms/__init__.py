"""Anonymous algorithms: the randomized solvers the paper derandomizes,
plus deterministic baselines and deciders.

All randomized algorithms here share one design: every node grows a
random bitstring (one bit per round) and compares it against the *stale*
bitstrings it hears from its neighborhood.  Because bitstrings only ever
extend, a visible prefix divergence is permanent — which is what lets
nodes commit irrevocable outputs safely while information is one or two
rounds out of date.  All are Las-Vegas: outputs are valid with
probability 1 and termination has probability 1.
"""

from repro.algorithms.bitstrings import (
    bitstring_order_key,
    diverged,
    prefix_related,
    stream_greater,
)
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.greedy_by_color import GreedyMISByColor, GreedyColoringByColor
from repro.algorithms.deciders import (
    WellFormedInputDecider,
    TwoHopColoringDecider,
)
from repro.algorithms.monte_carlo_election import (
    MonteCarloElection,
    failure_probability_bound,
)
from repro.algorithms.color_reduction import TwoHopColorReduction
from repro.algorithms.bfs_tree import BFSTreeProblem, LeaderBFSTree
from repro.algorithms.local_election import TwoLocalElection

__all__ = [
    "TwoLocalElection",
    "TwoHopColorReduction",
    "BFSTreeProblem",
    "LeaderBFSTree",
    "MonteCarloElection",
    "failure_probability_bound",
    "bitstring_order_key",
    "diverged",
    "prefix_related",
    "stream_greater",
    "TwoHopColoringAlgorithm",
    "VertexColoringAlgorithm",
    "AnonymousMISAlgorithm",
    "AnonymousMatchingAlgorithm",
    "GreedyMISByColor",
    "GreedyColoringByColor",
    "WellFormedInputDecider",
    "TwoHopColoringDecider",
]
