"""Randomized anonymous maximal matching.

Broadcast-only matching must solve an addressing problem: a proposal
cannot name its target.  The paper's remark that "by including the
sender's color in every message missing port numbers can be emulated"
is realized here with *growing random tokens* in place of colors:

* every active node grows a random token (one bit per round) and
  broadcasts ``(status, token, proposal)``;
* a node proposes only when the tokens of all its active neighbors are
  visibly pairwise diverged and diverged from its own — from then on
  prefixes identify neighbors unambiguously and permanently;
* the proposal value is the (stale) token of the chosen target: the
  maximum active-neighbor token stream.  Because stream order is stable
  and candidate sets only shrink (matched neighbors leave), a proposal
  only ever moves to smaller streams, and once two nodes target each
  other they are locked;
* on seeing mutual proposals a node freezes its token (``PENDING``) and
  waits for the partner's frozen token, then outputs
  ``("matched", own_token, partner_token)`` — the reciprocal pair the
  validity checker of
  :class:`~repro.problems.matching.MaximalMatchingProblem` verifies;
* a node outputs ``("unmatched",)`` once it has no possible partner
  left: every neighbor is matched or pending with someone else.

Progress: once tokens have pairwise diverged (probability 1), the
globally maximal active token and its maximal active neighbor propose
to each other and match.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algorithms.bitstrings import diverged, prefix_related, stream_greater
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.problems.matching import MATCHED, UNMATCHED

ACTIVE = "ACTIVE"
PENDING = "PENDING"


@dataclass(frozen=True)
class _State:
    status: str
    token: str
    proposal: str | None
    output: tuple | None
    round_number: int


class AnonymousMatchingAlgorithm(AnonymousAlgorithm):
    """Las-Vegas anonymous maximal matching with token-pair outputs."""

    bits_per_round = 1
    name = "anonymous-matching"

    _FIRST_DECISION_ROUND = 2

    def init_state(self, input_label, degree: int) -> _State:
        return _State(
            status=ACTIVE, token="", proposal=None, output=None, round_number=0
        )

    def message(self, state: _State):
        return (state.status, state.token, state.proposal)

    def output(self, state: _State) -> tuple | None:
        return state.output

    # ------------------------------------------------------------------

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        if state.status in (MATCHED, UNMATCHED):
            return replace(state, round_number=round_number)

        if state.status == PENDING:
            return self._pending_step(state, received, round_number)
        return self._active_step(state, received, bits, round_number)

    # ------------------------------------------------------------------

    def _pending_step(self, state: _State, received, round_number: int) -> _State:
        # The partner's token is frozen once it is PENDING; it may already
        # have moved on to MATCHED if it saw my PENDING message first.
        partner = self._find_partner_entry(state, received)
        if partner is not None and partner[0] in (PENDING, MATCHED):
            _status, partner_token, _proposal = partner
            return _State(
                status=MATCHED,
                token=state.token,
                proposal=state.proposal,
                output=(MATCHED, state.token, partner_token),
                round_number=round_number,
            )
        return replace(state, round_number=round_number)

    def _find_partner_entry(self, state: _State, received):
        """The unique entry whose token extends my target prefix and whose
        proposal is a prefix of my token — my handshake partner."""
        assert state.proposal is not None
        for entry in received:
            status_u, token_u, proposal_u = entry
            if status_u not in (ACTIVE, PENDING, MATCHED):
                continue
            if proposal_u is None:
                continue
            if prefix_related(state.proposal, token_u) and len(
                state.proposal
            ) <= len(token_u):
                if prefix_related(proposal_u, state.token) and len(proposal_u) <= len(
                    state.token
                ):
                    return entry
        return None

    # ------------------------------------------------------------------

    def _active_step(self, state: _State, received, bits: str, round_number: int) -> _State:
        # Partition the neighborhood by status.
        candidates = []  # tokens of neighbors I could still match with
        for (status_u, token_u, proposal_u) in received:
            if status_u == ACTIVE:
                candidates.append(token_u)
            elif status_u == PENDING:
                # Pending toward me: still my candidate.  Pending toward
                # another node: will become matched, not a candidate.
                if proposal_u is not None and len(proposal_u) <= len(
                    state.token
                ) and prefix_related(proposal_u, state.token):
                    candidates.append(token_u)

        if not candidates and round_number >= self._FIRST_DECISION_ROUND:
            if not received or all(
                status_u in (MATCHED, UNMATCHED, PENDING) for (status_u, _t, _p) in received
            ):
                return _State(
                    status=UNMATCHED,
                    token=state.token,
                    proposal=None,
                    output=(UNMATCHED,),
                    round_number=round_number,
                )

        # Propose only when every candidate has visibly diverged from me
        # and candidates are pairwise visibly diverged — from then on
        # token prefixes are unambiguous addresses.
        can_propose = bool(candidates) and all(
            diverged(state.token, other) for other in candidates
        )
        if can_propose:
            for i, a in enumerate(candidates):
                for b in candidates[i + 1 :]:
                    if not diverged(a, b):
                        can_propose = False
                        break
                if not can_propose:
                    break

        proposal: str | None = None
        if can_propose:
            target = candidates[0]
            for other in candidates[1:]:
                if stream_greater(other, target):
                    target = other
            proposal = target

        if proposal is not None:
            # Mutuality check uses my *current* (this round's) target.  The
            # partner's proposal toward me is enough: its target is locked
            # on me (I am its maximal candidate and I only leave its
            # candidate set by matching with it).
            probe = replace(state, proposal=proposal)
            partner = self._find_partner_entry(probe, received)
            if partner is not None:
                status_u, token_u, _proposal_u = partner
                if status_u in (PENDING, MATCHED):
                    # The partner's token is already frozen: match outright.
                    return _State(
                        status=MATCHED,
                        token=state.token,
                        proposal=token_u,
                        output=(MATCHED, state.token, token_u),
                        round_number=round_number,
                    )
                return _State(
                    status=PENDING,
                    token=state.token,  # frozen from now on
                    proposal=token_u,  # freshest stale token of my partner
                    output=None,
                    round_number=round_number,
                )

        return _State(
            status=ACTIVE,
            token=state.token + bits,
            proposal=proposal,
            output=None,
            round_number=round_number,
        )
