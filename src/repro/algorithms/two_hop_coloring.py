"""The randomized anonymous 2-hop coloring algorithm — the paper's
"generic preprocessing randomized stage".

Every node grows a random bitstring (its *candidate color*) by one bit
per round and commits it as output once it is certain that no node
within two hops can ever end up with the same color.  Certainty comes
from the prefix argument: colors only extend, so once the visible prefix
of another node's color has diverged from mine, our colors differ
forever.

Information flow (everything by broadcast):

* a node's round-``r`` message carries its color as of round ``r-1``
  (one round stale at the receiver) and the colors of *its* neighbors as
  of round ``r-2`` (two rounds stale) — giving every receiver its full
  2-hop color picture;
* a receiver hears its own (2-rounds-stale) color once inside every
  neighbor's list — it removes exactly one matching occurrence per list
  before looking for conflicts (it cannot *identify* itself, but it
  knows it appears exactly once, and if a removal leaves another equal
  entry then a genuine conflicting node exists);
* a node commits when every surviving 1-hop and 2-hop entry from a
  still-growing (uncommitted) node has visibly diverged from its own
  color.  Entries from *committed* nodes never conflict: a committed
  color is strictly shorter than the committing node's current color
  (lengths equal rounds), so the two final colors differ by length.

Safety of simultaneous commits: if two nodes within two hops commit in
the same round, each saw the other's stale color diverged, so their
final colors differ; commits in different rounds differ by length.
Liveness: adjacent-in-2-hops streams diverge with probability 1, and a
divergence becomes visible within two rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.algorithms.bitstrings import prefix_related
from repro.runtime.algorithm import AnonymousAlgorithm

ColorEntry = tuple[str, bool]  # (bitstring color, committed flag)


@dataclass(frozen=True)
class _State:
    color: str
    committed: bool
    output: str | None
    round_number: int
    # My (color, committed) one round ago — what neighbors echo back at me.
    prev_entry: ColorEntry
    # Neighbor entries heard this round; broadcast next round for 2-hop info.
    heard: tuple[ColorEntry, ...]


class TwoHopColoringAlgorithm(AnonymousAlgorithm):
    """Las-Vegas anonymous 2-hop coloring (outputs are bitstring colors)."""

    bits_per_round = 1
    name = "two-hop-coloring"

    # The first round whose transition may commit: by then a node has seen
    # one full round of 2-hop (twice-stale) information.
    _FIRST_COMMIT_ROUND = 3

    def init_state(self, input_label, degree: int) -> _State:
        return _State(
            color="",
            committed=False,
            output=None,
            round_number=0,
            prev_entry=("", False),
            heard=(),
        )

    def message(self, state: _State):
        return (state.color, state.committed, state.heard)

    def transition(self, state: _State, received, bits: str) -> _State:
        round_number = state.round_number + 1
        heard_now: tuple[ColorEntry, ...] = tuple(
            (color, committed) for (color, committed, _lists) in received
        )

        if state.committed:
            return replace(
                state,
                round_number=round_number,
                prev_entry=(state.color, state.committed),
                heard=heard_now,
            )

        conflict = self._has_conflict(state, received)
        if not conflict and round_number >= self._FIRST_COMMIT_ROUND:
            return _State(
                color=state.color,
                committed=True,
                output=state.color,
                round_number=round_number,
                prev_entry=(state.color, False),
                heard=heard_now,
            )
        return _State(
            color=state.color + bits,
            committed=False,
            output=None,
            round_number=round_number,
            prev_entry=(state.color, False),
            heard=heard_now,
        )

    def output(self, state: _State):
        return state.output

    # ------------------------------------------------------------------

    def _has_conflict(self, state: _State, received) -> bool:
        """Whether any visible 1-hop or 2-hop entry still threatens my color."""
        for (color_u, committed_u, list_u) in received:
            if self._entry_conflicts(state.color, color_u, committed_u):
                return True
            entries = list(list_u)
            # Remove my own echo exactly once per neighbor list (I appear
            # once in every neighbor's neighborhood; the lists carry
            # 2-rounds-stale entries and ``prev_entry`` is exactly my
            # 2-rounds-stale entry).  Lists are empty only in round 1.
            if entries:
                try:
                    entries.remove(state.prev_entry)
                except ValueError as exc:
                    raise AssertionError(
                        "own echo missing from a neighbor list; "
                        "message flow is inconsistent"
                    ) from exc
            for (color_w, committed_w) in entries:
                if self._entry_conflicts(state.color, color_w, committed_w):
                    return True
        return False

    @staticmethod
    def _entry_conflicts(my_color: str, other_color: str, other_committed: bool) -> bool:
        if other_committed:
            # A committed color is final; only exact equality could ever
            # collide, and my color will keep its current value or grow.
            return other_color == my_color
        # The other node's color keeps growing: any prefix relation means a
        # future collision is still possible.
        return prefix_related(my_color, other_color)
