"""Distributed problems Π as first-class objects (paper Section 1.1).

A :class:`~repro.problems.problem.DistributedProblem` knows its legal
input instances and can validate an output labeling against an instance.
:class:`~repro.problems.problem.TwoHopColoredVariant` builds Π^c from Π.
:mod:`repro.problems.gran` bundles a problem with its randomized solver
and decider — the certificate of GRAN membership that Theorem 1 takes as
hypothesis.
"""

from repro.problems.problem import DistributedProblem, TwoHopColoredVariant
from repro.problems.mis import MISProblem
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.decision import DecisionProblem, decision_outputs_valid
from repro.problems.election import (
    FOLLOWER,
    LEADER,
    LeaderElectionProblem,
    MinimalViewElection,
)
from repro.problems.gran import GranBundle

__all__ = [
    "FOLLOWER",
    "LEADER",
    "LeaderElectionProblem",
    "MinimalViewElection",
    "DistributedProblem",
    "TwoHopColoredVariant",
    "MISProblem",
    "ColoringProblem",
    "KHopColoringProblem",
    "MaximalMatchingProblem",
    "DecisionProblem",
    "decision_outputs_valid",
    "GranBundle",
]
