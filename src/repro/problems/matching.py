"""The maximal matching problem.

Anonymity makes the *output format* of matching interesting: a node
cannot name its partner, so matched nodes output the token pair
``("matched", my_token, partner_token)`` established during the
handshake, and unmatched nodes output ``("unmatched",)``.  An output
labeling is valid when **some** maximal matching is consistent with it:
there is a perfect pairing of the matched nodes along edges whose
endpoint outputs are mutually reciprocal, and no two unmatched nodes are
adjacent.  (Existence-based validity keeps the problem well-defined even
if distinct pairs happen to pick colliding tokens.)
"""

from __future__ import annotations


from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.problem import DistributedProblem, OutputLabeling

MATCHED = "matched"
UNMATCHED = "unmatched"


class MaximalMatchingProblem(DistributedProblem):
    """Maximal matching with token-pair outputs."""

    name = "maximal-matching"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph)

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        matched: list[Node] = []
        for v in graph.nodes:
            value = outputs[v]
            if not isinstance(value, tuple) or not value:
                return False
            if value[0] == MATCHED:
                if len(value) != 3:
                    return False
                matched.append(v)
            elif value[0] == UNMATCHED:
                if len(value) != 1:
                    return False
            else:
                return False

        # Maximality: no two adjacent unmatched nodes.
        for u, v in graph.edges():
            if outputs[u][0] == UNMATCHED and outputs[v][0] == UNMATCHED:
                return False

        # Candidate partner edges: adjacent matched pairs with reciprocal
        # tokens.
        candidates: dict[Node, list[Node]] = {v: [] for v in matched}
        for u, v in graph.edges():
            if outputs[u][0] == MATCHED and outputs[v][0] == MATCHED:
                _, token_u, partner_u = outputs[u]
                _, token_v, partner_v = outputs[v]
                if partner_u == token_v and partner_v == token_u:
                    candidates[u].append(v)
                    candidates[v].append(u)

        return _perfect_pairing_exists(matched, candidates)


def _perfect_pairing_exists(
    matched: list[Node], candidates: dict[Node, list[Node]]
) -> bool:
    """Whether the matched nodes admit a perfect pairing along candidate
    edges.  Backtracking; candidate edges are nearly a perfect matching
    already in honest executions, so this is fast in practice."""
    unpaired: set[Node] = set(matched)

    def backtrack() -> bool:
        if not unpaired:
            return True
        v = min(unpaired, key=repr)
        options = [u for u in candidates[v] if u in unpaired and u != v]
        if not options:
            return False
        for u in options:
            unpaired.discard(v)
            unpaired.discard(u)
            if backtrack():
                return True
            unpaired.add(v)
            unpaired.add(u)
        return False

    return backtrack()
