"""The distributed-problem abstraction and the Π^c transform.

A problem Π is a set of input instances (labeled graphs ``(V, E, i)``)
plus, per instance, a set of valid output labelings.  We represent the
instance set by a membership predicate (:meth:`is_instance`) and the
valid-output sets by a checker (:meth:`is_valid_output`) — which is all
the reproduction needs: solvers produce outputs and we verify them.

The paper's standing assumption that every input label includes the
node's degree is enforced by :meth:`inputs_well_formed`, which concrete
problems call from :meth:`is_instance`.

:class:`TwoHopColoredVariant` implements Π -> Π^c exactly as defined in
Section 1.1: instances gain a 2-hop coloring layer; valid outputs are
unchanged (they are judged against the underlying instance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from typing import Any

from repro.exceptions import ProblemError
from repro.graphs.coloring import is_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, Node

OutputLabeling = Mapping[Node, Any]


class DistributedProblem(ABC):
    """A distributed problem Π."""

    name: str = "problem"
    input_layer: str = "input"

    @abstractmethod
    def is_instance(self, graph: LabeledGraph) -> bool:
        """Whether ``graph`` is a legal input instance of Π."""

    @abstractmethod
    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        """Whether ``outputs`` is a valid output labeling for instance
        ``graph``.  Callers must pass a total labeling (every node)."""

    # ------------------------------------------------------------------

    def inputs_well_formed(self, graph: LabeledGraph) -> bool:
        """The paper's standing requirement: the graph carries the input
        layer and every input label is a tuple whose first component is
        the node's degree."""
        if not graph.has_layer(self.input_layer):
            return False
        for v in graph.nodes:
            label = graph.label_of(v, self.input_layer)
            if not isinstance(label, tuple) or not label:
                return False
            if label[0] != graph.degree(v):
                return False
        return True

    def require_total(self, graph: LabeledGraph, outputs: OutputLabeling) -> None:
        missing = [v for v in graph.nodes if v not in outputs]
        if missing:
            raise ProblemError(
                f"output labeling for {self.name} misses nodes {missing!r}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TwoHopColoredVariant(DistributedProblem):
    """The 2-hop colored variant Π^c of an underlying problem Π.

    An instance is ``(V, E, i, c)`` where ``(V, E, i)`` ∈ Π and ``c`` is a
    2-hop coloring; the valid outputs for ``(V, E, i, c)`` are exactly
    Π's valid outputs for ``(V, E, i)``.
    """

    def __init__(self, base: DistributedProblem, color_layer: str = "color") -> None:
        self.base = base
        self.color_layer = color_layer
        self.name = f"{base.name}^c"
        self.input_layer = base.input_layer

    def is_instance(self, graph: LabeledGraph) -> bool:
        if not graph.has_layer(self.color_layer):
            return False
        if not is_two_hop_coloring(graph, graph.layer(self.color_layer)):
            return False
        return self.base.is_instance(self.strip(graph))

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        return self.base.is_valid_output(self.strip(graph), outputs)

    def strip(self, graph: LabeledGraph) -> LabeledGraph:
        """The underlying Π instance ``(V, E, i)`` (drop the coloring)."""
        if graph.has_layer(self.color_layer):
            return graph.without_layer(self.color_layer)
        return graph
