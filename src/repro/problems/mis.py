"""The maximal independent set problem (paper Sections 1, 1.2).

Instances: every connected labeled graph with well-formed inputs.
Outputs: ``True`` (in the MIS) / ``False`` (not in it); valid when the
``True`` set is independent and maximal.  MIS is the paper's flagship
member of GRAN: solvable by randomized anonymous algorithms, unsolvable
deterministically without symmetry-breaking labels.
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.problem import DistributedProblem, OutputLabeling


class MISProblem(DistributedProblem):
    """Maximal independent set."""

    name = "mis"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph)

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        if not all(isinstance(outputs[v], bool) for v in graph.nodes):
            return False
        for u, v in graph.edges():
            if outputs[u] and outputs[v]:
                return False  # not independent
        for v in graph.nodes:
            if not outputs[v] and not any(outputs[u] for u in graph.neighbors(v)):
                return False  # not maximal
        return True
