"""Leader election — the problem the paper *excludes* from GRAN.

Election demands a unique distinguished node; on instances whose view
classes are nontrivial that is unattainable by any anonymous algorithm
(deterministic outputs are constant on view classes, and randomized
Las-Vegas executions lift from factors with positive probability).  The
problem class is kept here to delimit the theorem:

* :class:`LeaderElectionProblem` — the standard validity rule (exactly
  one ``LEADER``, everyone else ``FOLLOWER``).
* :class:`MinimalViewElection` — a deterministic anonymous algorithm
  that elects on *prime* 2-hop colored instances, where depth-n views
  are unique aliases (Corollary 1): the node with the minimal alias
  wins.  It expects the instance's node count in the input label (the
  "prior knowledge" the paper's related-work discussion attaches to
  election) and gathers views by flooding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.problem import DistributedProblem, OutputLabeling
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.views.view_tree import ViewTree

LEADER = "LEADER"
FOLLOWER = "FOLLOWER"


class LeaderElectionProblem(DistributedProblem):
    """Exactly one node outputs LEADER; all others FOLLOWER."""

    name = "leader-election"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph)

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        values = [outputs[v] for v in graph.nodes]
        if any(value not in (LEADER, FOLLOWER) for value in values):
            return False
        return values.count(LEADER) == 1


@dataclass(frozen=True)
class _ElectionState:
    n: int
    color: Any
    view: ViewTree  # my view built so far (depth = round + 1)
    round_number: int
    output: str | None


class MinimalViewElection(AnonymousAlgorithm):
    """Deterministic election on prime 2-hop colored instances.

    Input label must be ``((degree, n, ...), color)`` — i.e. the input
    layer carries the node count after the degree, plus the 2-hop color
    layer.  Every node grows its local view one level per round by
    exchanging current views; after ``n`` rounds views are the unique
    aliases (Corollary 1), and a node elects itself iff its alias is
    minimal among all aliases visible in its depth-``2n`` view.  On a
    *non-prime* instance the minimal alias is shared and more than one
    node would claim leadership — which is precisely the experiment
    showing election ∉ GRAN.
    """

    bits_per_round = 0
    name = "minimal-view-election"

    def init_state(self, input_label, degree: int) -> _ElectionState:
        real_input, color = input_label
        n = real_input[1]
        return _ElectionState(
            n=n,
            color=color,
            view=ViewTree.leaf((real_input, color)),
            round_number=0,
            output=None,
        )

    def message(self, state: _ElectionState):
        return state.view

    def transition(self, state: _ElectionState, received, bits: str) -> _ElectionState:
        round_number = state.round_number + 1
        if state.output is not None:
            return replace(state, round_number=round_number)
        grown = ViewTree.make(state.view.mark, list(received))
        if round_number < 2 * state.n:
            return replace(state, view=grown, round_number=round_number)
        # Decision round: my alias is my depth-n truncation; every node's
        # alias appears as a depth-n truncation of some subtree within
        # distance n - 1 >= diameter.
        n = state.n
        my_alias = grown.truncate(n)
        aliases = {
            id(subtree.truncate(n)): subtree.truncate(n)
            for subtree in grown.subtrees()
            if subtree.depth >= n
        }
        minimum = min(aliases.values(), key=lambda t: t.sort_key())
        verdict = LEADER if my_alias is minimum else FOLLOWER
        return replace(state, view=grown, round_number=round_number, output=verdict)

    def output(self, state: _ElectionState) -> str | None:
        return state.output
