"""Distributed decision problems Δ_Y (paper Section 1.1).

Given a set ``Y`` of yes-instances, the decision problem Δ_Y takes *any*
labeled graph as input; valid outputs have every node say ``"YES"`` on a
yes-instance and at least one node say ``"NO"`` otherwise.  The GRAN
definition requires a randomized anonymous algorithm for Δ_Π — deciding
instance membership of Π itself.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.problem import DistributedProblem, OutputLabeling

YES = "YES"
NO = "NO"


def decision_outputs_valid(
    is_yes_instance: bool, outputs: Mapping[Node, Any]
) -> bool:
    """The Δ_Y acceptance rule applied to a total output labeling."""
    values = list(outputs.values())
    if any(value not in (YES, NO) for value in values):
        return False
    if is_yes_instance:
        return all(value == YES for value in values)
    return any(value == NO for value in values)


class DecisionProblem(DistributedProblem):
    """Δ_Y for a yes-instance predicate ``Y``."""

    def __init__(
        self, predicate: Callable[[LabeledGraph], bool], name: str = "decision"
    ) -> None:
        self.predicate = predicate
        self.name = f"decide-{name}"

    def is_instance(self, graph: LabeledGraph) -> bool:
        # Every labeled graph is an instance of a decision problem.
        return True

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        return decision_outputs_valid(self.predicate(graph), outputs)
