"""GRAN membership bundles.

Theorem 1's hypothesis is ``Π ∈ GRAN``: a randomized anonymous algorithm
*solves* Π and another *decides* Δ_Π.  A :class:`GranBundle` carries that
certificate — the problem together with both algorithms — and is the
object the derandomization pipeline consumes.  The bundle can
empirically check its own claims on concrete instances, which the test
suite and the T1 experiment use as a sanity layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.exceptions import ProblemError
from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.decision import decision_outputs_valid
from repro.problems.problem import DistributedProblem
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.engine import execute


@dataclass
class GranBundle:
    """A problem with its GRAN certificate (solver + decider).

    ``solver`` must Las-Vegas-solve ``problem``; ``decider`` must
    Las-Vegas-solve Δ_problem (all-YES on instances, some-NO otherwise).
    """

    problem: DistributedProblem
    solver: AnonymousAlgorithm
    decider: AnonymousAlgorithm

    def check_solver_on(
        self, graph: LabeledGraph, seeds: Iterable[int], max_rounds: int = 10_000
    ) -> None:
        """Run the solver for each seed and validate every output labeling.
        Raises :class:`ProblemError` on the first invalid output."""
        if not self.problem.is_instance(graph):
            raise ProblemError(
                f"{graph!r} is not an instance of {self.problem.name}"
            )
        for seed in seeds:
            result = execute(
                self.solver, graph, seed=seed, max_rounds=max_rounds, require_decided=True
            )
            if not self.problem.is_valid_output(graph, result.outputs):
                raise ProblemError(
                    f"solver {self.solver.name} produced an invalid output for "
                    f"{self.problem.name} on {graph!r} with seed {seed}: "
                    f"{result.outputs!r}"
                )

    def check_decider_on(
        self, graph: LabeledGraph, seeds: Iterable[int], max_rounds: int = 10_000
    ) -> None:
        """Run the decider for each seed and validate the verdicts against
        ground-truth instance membership."""
        expected = self.problem.is_instance(graph)
        for seed in seeds:
            result = execute(
                self.decider, graph, seed=seed, max_rounds=max_rounds, require_decided=True
            )
            if not decision_outputs_valid(expected, result.outputs):
                raise ProblemError(
                    f"decider {self.decider.name} mis-decided {self.problem.name} "
                    f"membership (expected {'YES' if expected else 'NO'}) on "
                    f"{graph!r} with seed {seed}: {result.outputs!r}"
                )
