"""Graph coloring problems: the 1-hop classic and the k-hop variants.

The paper highlights that the 2-hop variant of coloring is still in GRAN
while every k-hop variant with ``k > 2`` is not (Section 1.2) — the
``k > 2`` case is exercised by our impossibility experiments, which is
why :class:`KHopColoringProblem` is parameterized rather than fixed at
``k ∈ {1, 2}``.
"""

from __future__ import annotations

from repro.exceptions import ProblemError
from repro.graphs.coloring import is_k_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph
from repro.problems.problem import DistributedProblem, OutputLabeling


class KHopColoringProblem(DistributedProblem):
    """Output a proper k-hop coloring of the input graph."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ProblemError(f"k must be at least 1, got {k}")
        self.k = k
        self.name = f"{k}-hop-coloring"

    def is_instance(self, graph: LabeledGraph) -> bool:
        return self.inputs_well_formed(graph)

    def is_valid_output(self, graph: LabeledGraph, outputs: OutputLabeling) -> bool:
        self.require_total(graph, outputs)
        return is_k_hop_coloring(graph, dict(outputs), self.k)


class ColoringProblem(KHopColoringProblem):
    """Classic (1-hop) graph coloring: adjacent nodes differ."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "coloring"
