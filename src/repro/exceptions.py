"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subsystem raises the most specific subclass that
applies; error messages always name the offending object so failures in
long experiment sweeps are attributable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph violates a structural requirement (simplicity, connectivity,
    unknown node, bad port numbering, ...)."""


class LabelingError(ReproError):
    """A labeling function is malformed or violates a coloring constraint."""


class FactorError(ReproError):
    """A claimed factor/product relationship does not hold: the map is not
    surjective, not label-preserving, or not a local isomorphism."""


class ViewError(ReproError):
    """A local-view computation received inconsistent arguments."""


class RuntimeModelError(ReproError):
    """The synchronous anonymous runtime was misused (e.g. an algorithm
    sent a message on a nonexistent port, or overwrote an irrevocable
    output)."""


class OutputAlreadySetError(RuntimeModelError):
    """A node attempted to change its irrevocable output."""


class SimulationError(ReproError):
    """A simulation induced by a bit assignment could not be carried out
    (e.g. the assignment does not cover every node)."""


class FaultInjectionError(ReproError):
    """The fault-injection subsystem was misconfigured (a rate outside
    [0, 1], a crash scheduled before round 1, or a delivery discipline
    the :class:`~repro.faults.delivery.FaultyDelivery` decorator does
    not know how to wrap)."""


class DynamicError(ReproError):
    """The dynamic-network subsystem was misused: a malformed delta, a
    churn rate outside [0, 1], a delta batch that would disconnect the
    graph or change the node set, or an incremental view state that
    diverged from its from-scratch oracle."""


class ProblemError(ReproError):
    """A distributed problem was given an invalid instance or output."""


class ArtifactError(ReproError):
    """The content-addressed artifact layer was given an unknown kind, a
    malformed spec/payload, or found a store record whose payload does
    not match its recorded digest."""


class DerandomizationError(ReproError):
    """The A*/A-infinity machinery hit an internal inconsistency (these
    indicate bugs or an input outside the theorem's hypotheses, such as a
    labeling that is not a 2-hop coloring)."""


class CandidateError(DerandomizationError):
    """Candidate enumeration for A* was asked for an infeasible phase."""
