"""Experiment infrastructure: results, registry, rendering."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.analysis.sweeps import SweepRow, format_table
from repro.exceptions import ReproError


class ExperimentCheckFailed(ReproError):
    """An experiment's assertion about the paper's claim failed."""


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        Short id (matches DESIGN.md's index, e.g. ``"F2"``/``"figure2"``).
    title:
        Table title including the paper artifact being reproduced.
    columns / rows:
        The regenerated table.
    checks:
        Named boolean checks — executable forms of the paper's claims.
        All must be ``True`` for the experiment to pass.
    preamble:
        Optional free-form text shown above the table (e.g. Figure 1's
        rendered tree).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[SweepRow]
    checks: dict[str, bool] = field(default_factory=dict)
    preamble: str = ""

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def require_passed(self) -> "ExperimentResult":
        failed = [name for name, ok in self.checks.items() if not ok]
        if failed:
            raise ExperimentCheckFailed(
                f"experiment {self.experiment_id} failed checks: {failed!r}"
            )
        return self

    def render(self) -> str:
        parts = []
        if self.preamble:
            parts.append(self.preamble)
        parts.append(format_table(self.title, list(self.columns), self.rows))
        checks = ", ".join(
            f"{name}={'ok' if ok else 'FAILED'}" for name, ok in self.checks.items()
        )
        if checks:
            parts.append(f"checks: {checks}")
        return "\n".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registry entry: the experiment callable plus scheduling metadata.

    ``cost`` is a relative wall-time weight (1.0 = a typical fast
    experiment); the parallel runner dispatches expensive experiments
    first so a straggler never lands last on an otherwise-drained pool.
    ``family`` groups related experiments (``"figures"``,
    ``"theorems"``, ``"resilience"``, ...); it defaults to the defining
    module's basename and is what ``--list`` and family filters key on.
    ``accepts_seed`` records whether the callable takes a ``seed``
    keyword; experiments that fix their seeds internally are simply
    called with no arguments.
    """

    experiment_id: str
    fn: Callable[..., ExperimentResult]
    cost: float = 1.0
    family: str = ""
    accepts_seed: bool = False

    def run(self, seed: int | None = None) -> ExperimentResult:
        if seed is not None and self.accepts_seed:
            return self.fn(seed=seed)
        return self.fn()


_REGISTRY: dict[str, ExperimentSpec] = {}


def experiment(experiment_id: str, *, cost: float = 1.0, family: str = ""):
    """Decorator registering an experiment function under an id.

    ``cost`` is the relative wall-time weight used by the parallel
    runner's longest-first scheduler (see ``repro.experiments.runner``);
    ``family`` defaults to the defining module's basename.
    """

    def register(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        try:
            accepts_seed = "seed" in inspect.signature(fn).parameters
        except (TypeError, ValueError):
            accepts_seed = False
        _REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            fn=fn,
            cost=cost,
            family=family or fn.__module__.rsplit(".", 1)[-1],
            accepts_seed=accepts_seed,
        )
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        return fn

    return register


def all_experiment_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_spec(experiment_id: str) -> ExperimentSpec:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; available: {all_experiment_ids()!r}"
        ) from None


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    return get_spec(experiment_id).fn


def all_specs() -> list[ExperimentSpec]:
    """Every registered experiment spec, in id order."""
    return [_REGISTRY[eid] for eid in all_experiment_ids()]


def all_families() -> list[str]:
    """Every registered experiment family, sorted."""
    return sorted({spec.family for spec in _REGISTRY.values()})


def run_all() -> list[ExperimentResult]:
    """Run every registered experiment, in id order."""
    return [_REGISTRY[eid].fn() for eid in all_experiment_ids()]
