"""Experiment infrastructure: results, registry, rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis.sweeps import SweepRow, format_table
from repro.exceptions import ReproError


class ExperimentCheckFailed(ReproError):
    """An experiment's assertion about the paper's claim failed."""


@dataclass
class ExperimentResult:
    """The outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        Short id (matches DESIGN.md's index, e.g. ``"F2"``/``"figure2"``).
    title:
        Table title including the paper artifact being reproduced.
    columns / rows:
        The regenerated table.
    checks:
        Named boolean checks — executable forms of the paper's claims.
        All must be ``True`` for the experiment to pass.
    preamble:
        Optional free-form text shown above the table (e.g. Figure 1's
        rendered tree).
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[SweepRow]
    checks: Dict[str, bool] = field(default_factory=dict)
    preamble: str = ""

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def require_passed(self) -> "ExperimentResult":
        failed = [name for name, ok in self.checks.items() if not ok]
        if failed:
            raise ExperimentCheckFailed(
                f"experiment {self.experiment_id} failed checks: {failed!r}"
            )
        return self

    def render(self) -> str:
        parts = []
        if self.preamble:
            parts.append(self.preamble)
        parts.append(format_table(self.title, list(self.columns), self.rows))
        checks = ", ".join(
            f"{name}={'ok' if ok else 'FAILED'}" for name, ok in self.checks.items()
        )
        if checks:
            parts.append(f"checks: {checks}")
        return "\n".join(parts)


_REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {}


def experiment(experiment_id: str):
    """Decorator registering an experiment function under an id."""

    def register(fn: Callable[[], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        return fn

    return register


def all_experiment_ids() -> List[str]:
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; available: {all_experiment_ids()!r}"
        ) from None


def run_all() -> List[ExperimentResult]:
    """Run every registered experiment, in id order."""
    return [_REGISTRY[eid]() for eid in all_experiment_ids()]
