"""Hash-seed independence gate: ``python -m repro.experiments.hashseed_gate``.

The flow lint (docs/LINT.md, FLOW002) proves *statically* that no
set-iteration order reaches a canonical encoder.  This gate is the
dynamic twin of that proof, wired into CI as ``make hashseed-smoke``:
it re-executes the canonical views/artifacts/dynamic pipelines in
child interpreters under two different ``PYTHONHASHSEED`` values and
diffs the emitted byte manifests byte-for-byte.  String-hash
randomization perturbs every ``set``/``dict`` hash order the runtime
uses internally, so any order leak the lattice missed shows up here as
a digest divergence naming the exact pipeline stage.

Two modes:

* default (no args) — the driver: spawns ``--emit`` children under
  ``PYTHONHASHSEED`` 0 (twice, pinning run-to-run determinism) and
  4217, compares their stdout.  Exits 0 on byte equality, 1 with the
  first diverging manifest line otherwise.
* ``--emit`` — one child run: builds a fixed graph portfolio, pushes
  it through views, refinement, quotients, artifact keys, dynamic
  replay and fabric task keys, and prints a sorted JSON manifest of
  ``label -> sha256(canonical bytes)`` to stdout.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

__all__ = ["emit_manifest", "main"]

#: Two seeds is the contract: equality across *different* hash seeds is
#: what proves independence; 0 is additionally run twice to separate
#: "hash-order leak" from "plain nondeterminism" in the failure report.
_SEEDS = ("0", "0", "4217")

_VIEW_DEPTH = 3


def _portfolio():
    """A small graph zoo covering the shapes the paper cares about:
    symmetric (cycle, torus, circulant), asymmetric (caterpillar) and
    sampled-but-seeded (random regular)."""
    from repro.graphs.builders import (
        caterpillar_graph,
        circulant_graph,
        cycle_graph,
        petersen_graph,
        random_regular_graph,
        torus_graph,
        with_uniform_input,
    )

    return [
        ("cycle-6", with_uniform_input(cycle_graph(6))),
        ("torus-3x4", with_uniform_input(torus_graph(3, 4))),
        ("circulant-9-12", with_uniform_input(circulant_graph(9, (1, 2)))),
        ("petersen", with_uniform_input(petersen_graph())),
        ("caterpillar-4x2", with_uniform_input(caterpillar_graph(4, 2))),
        ("random-regular-10-3", with_uniform_input(random_regular_graph(10, 3, seed=7))),
    ]


def _quotient_portfolio():
    """2-hop-colored instances whose view quotient is simple."""
    from repro.graphs.builders import (
        caterpillar_graph,
        cycle_graph,
        with_uniform_input,
    )
    from repro.graphs.coloring import (
        apply_two_hop_coloring,
        greedy_two_hop_coloring,
    )
    from repro.graphs.lifts import cyclic_lift

    def colored(graph):
        return apply_two_hop_coloring(graph, greedy_two_hop_coloring(graph))

    base = colored(with_uniform_input(cycle_graph(3)))
    lift, _ = cyclic_lift(base, 4)
    return [
        ("colored-cycle-6", colored(with_uniform_input(cycle_graph(6)))),
        ("colored-caterpillar-4x2", colored(with_uniform_input(caterpillar_graph(4, 2)))),
        ("lifted-colored-cycle-3x4", lift),
    ]


def emit_manifest() -> "dict[str, str]":
    """Run the canonical pipelines and digest every byte surface."""
    from repro.artifacts.encoders import (
        encode_dynamic_views,
        encode_quotient,
        encode_refinement,
        encode_views,
    )
    from repro.artifacts.keys import artifact_key
    from repro.artifacts.specs import (
        dynamic_views_spec,
        quotient_spec,
        refinement_spec,
        views_spec,
    )
    from repro.dynamic.delta import add_edge, relabel, remove_edge
    from repro.dynamic.maintain import replay_views
    from repro.experiments.fabric import task_key
    from repro.factor.quotient import infinite_view_graph
    from repro.views.local_views import all_views
    from repro.views.refinement import color_refinement

    def digest(payload: bytes) -> str:
        return hashlib.sha256(payload).hexdigest()

    manifest: "dict[str, str]" = {}
    for name, graph in _portfolio():
        views = all_views(graph, _VIEW_DEPTH)
        manifest[f"{name}/views"] = digest(encode_views(views))
        manifest[f"{name}/refinement"] = digest(
            encode_refinement(color_refinement(graph))
        )
        # Keys are addresses: a hash-order leak in spec canonicalization
        # would silently rotate every cache entry, so pin them too.
        manifest[f"{name}/key/views"] = artifact_key(views_spec(graph, _VIEW_DEPTH))
        manifest[f"{name}/key/refinement"] = artifact_key(refinement_spec(graph))
        manifest[f"{name}/key/task"] = task_key(
            "hashseed-gate", views_spec(graph, _VIEW_DEPTH), seed=0
        )

    # Quotients require 2-hop-colored input (Lemma 2); the lift of a
    # colored cycle is the paper's Figure 2 tower, whose quotient
    # recovers the base — a nontrivial fibration to canonicalize.
    for name, graph in _quotient_portfolio():
        manifest[f"{name}/quotient"] = digest(
            encode_quotient(infinite_view_graph(graph, with_views=True))
        )
        manifest[f"{name}/key/quotient"] = artifact_key(
            quotient_spec(graph, with_views=True)
        )

    base = _portfolio()[0][1]
    deltas = [
        add_edge(0, 3),
        relabel(1, "input", (2, 99)),
        add_edge(1, 4),
        remove_edge(0, 1),
    ]
    manifest["dynamic/replayed-views"] = digest(
        encode_dynamic_views(replay_views(base, deltas, _VIEW_DEPTH))
    )
    manifest["dynamic/key"] = artifact_key(
        dynamic_views_spec(base, deltas, _VIEW_DEPTH)
    )
    return manifest


def _child(seed: str) -> "tuple[str, str]":
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments.hashseed_gate", "--emit"],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"emit child (PYTHONHASHSEED={seed}) failed:\n{proc.stderr}"
        )
    return seed, proc.stdout


def _first_divergence(a: str, b: str) -> str:
    for line_a, line_b in zip(a.splitlines(), b.splitlines()):
        if line_a != line_b:
            return f"{line_a!r} vs {line_b!r}"
    return f"lengths differ: {len(a)} vs {len(b)} bytes"


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv == ["--emit"]:
        print(json.dumps(emit_manifest(), indent=2, sort_keys=True))
        return 0
    if argv:
        print(f"usage: {__name__} [--emit]", file=sys.stderr)
        return 2

    print(f"[gate] canonical manifests under PYTHONHASHSEED {_SEEDS} ...")
    runs = [_child(seed) for seed in _SEEDS]
    (seed_a, out_a), (_, out_rerun), (seed_b, out_b) = runs
    failures = []
    if out_a != out_rerun:
        failures.append(
            f"rerun under PYTHONHASHSEED={seed_a} diverges (plain "
            f"nondeterminism, not hash order): {_first_divergence(out_a, out_rerun)}"
        )
    if out_a != out_b:
        failures.append(
            f"PYTHONHASHSEED={seed_a} vs {seed_b} diverge — a hash-order "
            f"leak reaches canonical bytes: {_first_divergence(out_a, out_b)}"
        )
    if failures:
        for failure in failures:
            print(f"[gate] FAILED: {failure}", file=sys.stderr)
        return 1
    entries = len(json.loads(out_a))
    print(
        f"[gate] ok: {entries} manifest entries byte-identical across "
        f"seeds {seed_a} and {seed_b} (and across reruns)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
