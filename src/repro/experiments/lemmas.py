"""Experiments L2-L4 and LIFT: the lemmas and the lifting engine."""

from __future__ import annotations

from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments._shared import lifted_colored_c3
from repro.factor.factorizing_map import FactorizingMap
from repro.factor.lifting import verify_execution_lifting
from repro.factor.prime import is_prime, prime_factors
from repro.factor.quotient import infinite_view_graph
from repro.graphs.builders import cycle_graph, with_uniform_input
from repro.graphs.isomorphism import are_isomorphic
from repro.runtime.engine import execute
from repro.views.local_views import all_views


@experiment("lemma2", cost=1.5)
def lemma2() -> ExperimentResult:
    """Lemma 2: G_infinity is a factor of every 2-hop colored G."""
    rows, checks = [], {}
    for fiber in (1, 2, 3, 4):
        _base, lift, _proj = lifted_colored_c3(fiber)
        quotient = infinite_view_graph(lift)  # construction verifies the map
        checks[f"factor verified (x{fiber})"] = True
        checks[f"multiplicity x{fiber}"] = quotient.map.multiplicity == fiber
        rows.append(
            SweepRow(
                f"C3-lift x{fiber}",
                {
                    "|V|": lift.num_nodes,
                    "|V_inf|": quotient.graph.num_nodes,
                    "m": quotient.map.multiplicity,
                },
            )
        )
    return ExperimentResult(
        experiment_id="lemma2",
        title="Lemma 2 — G_infinity ⪯ G for 2-hop colored lifts of C3",
        columns=["|V|", "|V_inf|", "m"],
        rows=rows,
        checks=checks,
    )


@experiment("lemma3", cost=6.0)
def lemma3() -> ExperimentResult:
    """Lemma 3 + counterexample: prime factor unique iff 2-hop colored."""
    _base, lift, _proj = lifted_colored_c3(4)
    colored_primes = prime_factors(lift)
    quotient = infinite_view_graph(lift)
    uncolored_primes = prime_factors(with_uniform_input(cycle_graph(12)))
    checks = {
        "colored C12 has one prime factor": len(colored_primes) == 1,
        "it is the view quotient": are_isomorphic(colored_primes[0], quotient.graph),
        "uncolored C12 has two prime factors (C3, C4)": sorted(
            p.num_nodes for p in uncolored_primes
        )
        == [3, 4],
    }
    rows = [
        SweepRow(
            "colored C12",
            {"prime factors": len(colored_primes), "sizes": [p.num_nodes for p in colored_primes]},
        ),
        SweepRow(
            "uncolored C12",
            {
                "prime factors": len(uncolored_primes),
                "sizes": sorted(p.num_nodes for p in uncolored_primes),
            },
        ),
    ]
    return ExperimentResult(
        experiment_id="lemma3",
        title=(
            "Lemma 3 — the prime factor of a 2-hop colored graph is unique; "
            "uniqueness fails for the uncolored C12"
        ),
        columns=["prime factors", "sizes"],
        rows=rows,
        checks=checks,
    )


@experiment("lemma4", cost=0.5)
def lemma4() -> ExperimentResult:
    """Lemma 4 / Corollary 1: views alias nodes in prime colored graphs."""
    base, _lift, _proj = lifted_colored_c3(1)
    views = all_views(base, base.num_nodes)
    distinct = len({id(t) for t in views.values()})
    checks = {
        "base is prime": is_prime(base),
        "depth-n views pairwise distinct": distinct == base.num_nodes,
    }
    rows = [
        SweepRow("colored C3", {"n": base.num_nodes, "distinct views": distinct})
    ]
    return ExperimentResult(
        experiment_id="lemma4",
        title=(
            "Lemma 4 — depth-n views of a prime 2-hop colored graph are "
            "pairwise distinct aliases"
        ),
        columns=["n", "distinct views"],
        rows=rows,
        checks=checks,
    )


@experiment("lifting", cost=2.5)
def lifting() -> ExperimentResult:
    """The lifting lemma: factor executions lift message-for-message."""
    algorithms = {
        "two-hop-coloring": TwoHopColoringAlgorithm(),
        "mis": AnonymousMISAlgorithm(),
        "coloring": VertexColoringAlgorithm(),
    }
    rows, checks = [], {}
    for algorithm_name, algorithm in algorithms.items():
        for fiber in (2, 4):
            base, lift, projection = lifted_colored_c3(fiber)
            fm = FactorizingMap(
                lift.with_only_layers(["input"]),
                base.with_only_layers(["input"]),
                projection,
            )
            factor_run = execute(algorithm, fm.factor, seed=17, require_decided=True)
            comparison = verify_execution_lifting(
                algorithm, fm, factor_run.trace.assignment()
            )
            checks[f"{algorithm_name} x{fiber}"] = comparison.lemma_holds
            rows.append(
                SweepRow(
                    f"{algorithm_name} x{fiber}",
                    {
                        "factor rounds": comparison.factor_result.rounds,
                        "product rounds": comparison.product_result.rounds,
                        "messages match": comparison.messages_match,
                        "outputs match": comparison.outputs_match,
                    },
                )
            )
    return ExperimentResult(
        experiment_id="lifting",
        title=(
            "Lifting lemma — per-fiber identical messages and outputs when "
            "a factor execution is lifted to the product"
        ),
        columns=["factor rounds", "product rounds", "messages match", "outputs match"],
        rows=rows,
        checks=checks,
    )
