"""The append-only JSONL result store behind the experiment fabric.

One completed task = one JSON line, written with ``flush`` + ``fsync``
before the fabric moves on.  There is no footer, no index and no
rewrite-in-place: the file is valid after *every* appended line, so a
killed run (CI timeout, OOM, ctrl-C) loses at most the record that was
mid-write — and :meth:`ResultStore.open` repairs exactly that case by
truncating a trailing partial line before appending resumes.

Corruption anywhere *before* the final line is not tolerated: that
cannot be produced by a crash of this writer, so it is reported as an
error instead of silently dropping someone's results.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError

__all__ = ["ResultStore", "StoreCorrupt", "rewrite_store", "scan_store"]


class StoreCorrupt(ReproError):
    """A JSONL store has a malformed line before its final line."""


def _parse_lines(data: bytes, path: Path) -> "tuple[dict[str, dict[str, Any]], int]":
    """Parse store bytes; returns ``(records by key, good-byte count)``.

    A malformed or truncated *final* line is tolerated (crash mid-write)
    and excluded from the good-byte count; a malformed earlier line
    raises :class:`StoreCorrupt`.
    """
    records: dict[str, dict[str, Any]] = {}
    offset = 0
    good = 0
    lines = data.split(b"\n")
    for index, raw in enumerate(lines):
        is_last = index == len(lines) - 1
        # A well-formed file ends with "\n", so the split's final
        # element is empty; anything else there is a partial write.
        if is_last and raw == b"":
            break
        line_span = len(raw) + 1  # the "\n" this line would end with
        try:
            record = json.loads(raw)
            if not isinstance(record, dict) or "key" not in record:
                raise ValueError("record is not an object with a 'key'")
        except ValueError as exc:
            if is_last:
                break  # torn tail: recoverable by truncation
            raise StoreCorrupt(
                f"{path}: malformed line {index + 1} "
                f"(not a crash artifact): {exc}"
            ) from None
        if is_last:
            break  # parseable but missing its newline: still a torn tail
        records[str(record["key"])] = record
        offset += line_span
        good = offset
    return records, good


def scan_store(path: "str | Path") -> "dict[str, dict[str, Any]]":
    """Read-only scan: every complete record, keyed by task key.

    Missing files scan as empty (a fresh run resumes from nothing); a
    torn final line is skipped without touching the file.
    """
    target = Path(path)
    if not target.exists():
        return {}
    records, _good = _parse_lines(target.read_bytes(), target)
    return records


def rewrite_store(path: "str | Path", records: "dict[str, dict[str, Any]]") -> None:
    """Atomically replace a store file with exactly ``records``.

    The one sanctioned way to *remove* records (the append-only contract
    stays intact for the live file): records are written to a sibling
    temp file in sorted key order, fsync'd, then moved over the original
    with :func:`os.replace` — a crash at any point leaves either the old
    complete file or the new complete file, never a mix.  Used by
    ``python -m repro.artifacts gc`` to drop stale-fingerprint entries.
    """
    target = Path(path)
    temp = target.with_name(target.name + ".rewrite")
    with open(temp, "wb") as handle:
        for key in sorted(records):
            line = json.dumps(records[key], sort_keys=True, separators=(",", ":"))
            handle.write(line.encode("utf-8") + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)


class ResultStore:
    """An open-for-append JSONL store with its in-memory key index.

    Use :meth:`open` (or the context manager) rather than the
    constructor: opening scans existing records, truncates a torn final
    line and positions the file for appends.
    """

    def __init__(
        self,
        path: Path,
        records: "dict[str, dict[str, Any]]",
        handle: io.BufferedWriter,
    ) -> None:
        self.path = path
        self.records = records
        self._handle: "io.BufferedWriter | None" = handle

    @classmethod
    def open(cls, path: "str | Path") -> "ResultStore":
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        records: dict[str, dict[str, Any]] = {}
        good = 0
        if target.exists():
            records, good = _parse_lines(target.read_bytes(), target)
        handle = open(target, "ab")
        if handle.tell() != good:
            # Crash mid-write: drop the torn tail so the next append
            # starts on a clean line boundary.
            handle.truncate(good)
            handle.seek(good)
        return cls(target, records, handle)

    def append(self, record: "dict[str, Any]") -> None:
        """Durably append one record (must carry a ``key``)."""
        if self._handle is None:
            raise ReproError(f"{self.path}: store is closed")
        key = str(record["key"])
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line.encode("utf-8") + b"\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def __len__(self) -> int:
        return len(self.records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
