"""Experiments T1-T3: the theorems, validated over sweeps."""

from __future__ import annotations

from repro.algorithms.deciders import WellFormedInputDecider
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.matching import AnonymousMatchingAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.algorithms.vertex_coloring import VertexColoringAlgorithm
from repro.analysis.sweeps import SweepRow, standard_families
from repro.core.derandomize import derandomize_pipeline
from repro.core.infinity import AInfinitySolver
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments._shared import colored, lifted_colored_c3
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    with_uniform_input,
)
from repro.graphs.lifts import lift_graph
from repro.problems.coloring import ColoringProblem, KHopColoringProblem
from repro.problems.gran import GranBundle
from repro.problems.matching import MaximalMatchingProblem
from repro.problems.mis import MISProblem
from repro.views.refinement import stabilization_depth


def _bundles():
    decider = WellFormedInputDecider()
    return {
        "mis": GranBundle(MISProblem(), AnonymousMISAlgorithm(), decider),
        "coloring": GranBundle(ColoringProblem(), VertexColoringAlgorithm(), decider),
        "2-hop-coloring": GranBundle(
            KHopColoringProblem(2), TwoHopColoringAlgorithm(), decider
        ),
        "matching": GranBundle(
            MaximalMatchingProblem(), AnonymousMatchingAlgorithm(), decider
        ),
    }


@experiment("theorem1", cost=40.0)
def theorem1() -> ExperimentResult:
    """Theorem 1 end to end: randomized 2-hop stage + deterministic stage,
    for every GRAN problem, across graph families.  Compact variant of
    the full benchmark sweep (smaller family set per problem)."""
    rows = []
    all_valid = True
    for problem_name, bundle in _bundles().items():
        for name, graph in standard_families(sizes=(4, 6), include_random=False):
            result = derandomize_pipeline(
                bundle, graph, seed=1, strategy="prg", max_assignment_length=128
            )
            # derandomize_pipeline validates internally (raises otherwise).
            rows.append(
                SweepRow(
                    f"{problem_name} / {name}",
                    {
                        "n": graph.num_nodes,
                        "stage1 rounds": result.stage1_rounds,
                        "quotient": result.quotient_size,
                        "sim rounds": result.stage2.simulation_rounds,
                    },
                )
            )
    return ExperimentResult(
        experiment_id="theorem1",
        title=(
            "Theorem 1 — randomized-coloring + deterministic-stage pipeline; "
            "every row validated against the problem definition"
        ),
        columns=["n", "stage1 rounds", "quotient", "sim rounds"],
        rows=rows,
        checks={"all outputs valid": all_valid},
    )


@experiment("decoupling", cost=5.0)
def decoupling_as_one_algorithm() -> ExperimentResult:
    """The headline sentence, recomposed: the randomized coloring stage
    and the deterministic stage fused into a SINGLE anonymous algorithm
    (with an embedded synchronizer for the staggered hand-off), run as
    one Las-Vegas execution per instance."""
    from repro.algorithms.greedy_by_color import GreedyMISByColor
    from repro.runtime.composition import TwoStageComposition
    from repro.runtime.engine import execute

    composed = TwoStageComposition(
        TwoHopColoringAlgorithm(),
        GreedyMISByColor(),
        lambda original_input, degree, color: (original_input[0], color),
    )
    problem = MISProblem()
    rows, checks = [], {}
    for name, graph in standard_families(sizes=(4, 6, 8), include_random=True):
        result = execute(composed, graph, seed=3, require_decided=True)
        checks[f"valid on {name}"] = problem.is_valid_output(graph, result.outputs)
        rows.append(
            SweepRow(
                name,
                {
                    "n": graph.num_nodes,
                    "total rounds": result.rounds,
                    "|MIS|": sum(result.outputs.values()),
                },
            )
        )
    return ExperimentResult(
        experiment_id="decoupling",
        title=(
            "DECOUPLE — the two-stage decoupling recomposed into one "
            "anonymous algorithm (coloring ; greedy MIS, synchronized)"
        ),
        columns=["n", "total rounds", "|MIS|"],
        rows=rows,
        checks=checks,
    )


@experiment("theorem2", cost=10.0)
def theorem2() -> ExperimentResult:
    """Theorem 2: A_infinity on prime and lifted instances."""
    problem, algorithm = MISProblem(), AnonymousMISAlgorithm()
    solver = AInfinitySolver(problem, algorithm)
    cases = [
        ("C3 (prime)", colored(with_uniform_input(cycle_graph(3)))),
        ("K4 (prime)", colored(with_uniform_input(complete_graph(4)))),
        ("P3 (prime)", colored(with_uniform_input(path_graph(3)))),
    ]
    for fiber in (2, 3, 4):
        _base, lift, _proj = lifted_colored_c3(fiber)
        cases.append((f"C{3 * fiber} over C3", lift))
    k4 = colored(with_uniform_input(complete_graph(4)))
    k4_lift, _ = lift_graph(k4, 2, seed=3)
    cases.append(("K4-lift x2", k4_lift))

    rows, checks = [], {}
    for name, instance in cases:
        result = solver.solve(instance)
        plain = instance.with_only_layers(["input"])
        checks[f"valid on {name}"] = problem.is_valid_output(plain, result.outputs)
        fibers_agree = all(
            len({result.outputs[v] for v in result.quotient.map.fiber(t)}) == 1
            for t in result.quotient.graph.nodes
        )
        checks[f"fiber-constant on {name}"] = fibers_agree
        rows.append(
            SweepRow(
                name,
                {
                    "n": instance.num_nodes,
                    "quotient": result.quotient.graph.num_nodes,
                    "sim rounds": result.simulation_rounds,
                    "assignment t": max(len(b) for b in result.assignment.values()),
                },
            )
        )
    return ExperimentResult(
        experiment_id="theorem2",
        title=(
            "Theorem 2 — A_infinity (smallest successful simulation on the "
            "view quotient) for MIS"
        ),
        columns=["n", "quotient", "sim rounds", "assignment t"],
        rows=rows,
        checks=checks,
    )


@experiment("norris", cost=3.0)
def norris() -> ExperimentResult:
    """Theorem 3 (Norris): view stabilization depth is at most n."""
    rows, checks = [], {}
    for name, graph in standard_families(sizes=(4, 6, 8, 12), include_random=True):
        depth = stabilization_depth(graph)
        n = graph.num_nodes
        checks[f"bound holds on {name}"] = depth <= n
        rows.append(
            SweepRow(name, {"n": n, "stab depth": depth, "slack": n - depth})
        )
    for n in (8, 16, 20):
        graph = with_uniform_input(path_graph(n))
        depth = stabilization_depth(graph)
        checks[f"path-{n} deep but bounded"] = n // 2 - 1 <= depth <= n
        rows.append(
            SweepRow(f"path-{n} (extremal)", {"n": n, "stab depth": depth, "slack": n - depth})
        )
    return ExperimentResult(
        experiment_id="norris",
        title="Theorem 3 (Norris) — view stabilization depth vs the bound n",
        columns=["n", "stab depth", "slack"],
        rows=rows,
        checks=checks,
    )
