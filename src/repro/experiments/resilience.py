"""The ``resilience`` experiment family: where do the guarantees break?

The paper's central objects assume a perfectly reliable synchronous
network.  Each experiment here perturbs one assumption with a seeded,
byte-replayable :class:`~repro.faults.plan.FaultPlan` and tabulates the
smallest fault intensity at which the corresponding guarantee first
fails:

* ``resilience-drop`` — 2-hop coloring validity (Theorem 1's stage 1)
  under message loss;
* ``resilience-crash`` — the deterministic greedy-by-color stage under
  crash-stop nodes, judging safety on the survivors;
* ``resilience-corrupt`` — a Theorem 2-style simulation induced by a
  recorded successful assignment, replayed through corrupted tapes;
* ``resilience-reorder`` — the port-numbering abstraction under
  within-inbox reordering and loss.

Every run is classified by :func:`repro.analysis.resilience.probe`
(``ok`` / ``invalid`` / ``undecided`` / ``error``); all plans and seeds
are fixed inside the experiment functions, so results are bit-identical
across runs, job counts and machines, like every other registry entry.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.greedy_by_color import GreedyMISByColor
from repro.algorithms.luby_mis import AnonymousMISAlgorithm
from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.resilience import (
    ResilienceOutcome,
    first_break,
    independence_preserved,
    probe,
)
from repro.analysis.sweeps import SweepRow, standard_family_specs
from repro.experiments._shared import colored
from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fabric import GridSweep, register_grid, register_kernel
from repro.faults import FaultPlan, execute_with_faults
from repro.graphs.builders import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    with_uniform_input,
)
from repro.graphs.coloring import is_two_hop_coloring
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.problems.mis import MISProblem
from repro.runtime.engine import execute
from repro.runtime.port_model import PortAwareAlgorithm

DROP_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
CORRUPT_RATES = (0.0, 0.05, 0.15, 0.3)
REORDER_RATES = (0.0, 0.25, 0.5)
SEEDS = (0, 1, 2)


def _status_summary(outcomes: list[ResilienceOutcome]) -> str:
    """Compact multi-seed status cell, e.g. ``"ok:2 error:1"``."""
    counts: dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return " ".join(f"{status}:{n}" for status, n in sorted(counts.items()))


def _fmt_break(rate: float | None) -> str:
    return "-" if rate is None else f"{rate:g}"


@experiment("resilience-drop", cost=4.0)
def resilience_drop() -> ExperimentResult:
    """Message loss vs 2-hop coloring validity, swept over drop rates."""
    algorithm = TwoHopColoringAlgorithm()
    families = [
        ("cycle-8", with_uniform_input(cycle_graph(8))),
        ("path-8", with_uniform_input(path_graph(8))),
        ("complete-6", with_uniform_input(complete_graph(6))),
        ("random-10", with_uniform_input(random_connected_graph(10, 0.3, seed=10))),
    ]
    rows, checks = [], {}
    for name, graph in families:
        worst_by_rate: list[ResilienceOutcome] = []
        cells: dict[str, Any] = {"n": graph.num_nodes}
        injected_total = 0
        for rate in DROP_RATES:
            outcomes = []
            for seed in SEEDS:
                plan = FaultPlan(plan_seed=100 * seed + 1, drop_rate=rate)
                outcome = probe(
                    algorithm,
                    graph,
                    plan,
                    validator=is_two_hop_coloring,
                    seed=seed,
                    max_rounds=80,
                )
                outcomes.append(outcome)
                injected_total += outcome.faults_injected
                if rate == 0.0:
                    bare = execute(algorithm, graph, seed=seed, max_rounds=80)
                    checks[f"zero-rate matches bare ({name}, seed {seed})"] = (
                        outcome.outputs == bare.outputs
                    )
            cells[f"p={rate:g}"] = _status_summary(outcomes)
            worst_by_rate.append(
                min(outcomes, key=lambda o: o.ok)  # any non-ok makes the rate broken
            )
        broke_at = first_break(list(DROP_RATES), worst_by_rate)
        cells["first break"] = _fmt_break(broke_at)
        checks[f"zero rate survives ({name})"] = worst_by_rate[0].ok
        rows.append(SweepRow(name, cells))
        checks[f"faults were injected ({name})"] = injected_total > 0
    return ExperimentResult(
        experiment_id="resilience-drop",
        title=(
            "RES — randomized 2-hop coloring under message loss "
            "(status per drop rate, 3 seeds; first breaking rate)"
        ),
        columns=["n", *[f"p={r:g}" for r in DROP_RATES], "first break"],
        rows=rows,
        checks=checks,
    )


@experiment("resilience-crash", cost=2.0)
def resilience_crash() -> ExperimentResult:
    """Crash-stop nodes vs the deterministic greedy-by-color MIS stage.

    Safety (independence among survivors) must hold under every crash
    schedule; liveness legitimately degrades to ``undecided`` when a
    node that others wait on goes silent.
    """
    problem = MISProblem()
    algorithm = GreedyMISByColor()
    families = [
        ("cycle-8", colored(with_uniform_input(cycle_graph(8)))),
        ("path-7", colored(with_uniform_input(path_graph(7)))),
        ("complete-5", colored(with_uniform_input(complete_graph(5)))),
    ]
    rows, checks = [], {}
    for name, graph in families:
        first, second = graph.nodes[0], graph.nodes[len(graph.nodes) // 2]
        schedules: list[tuple[str, tuple[tuple[Node, int], ...]]] = [
            ("none", ()),
            ("v0@r1", ((first, 1),)),
            ("v0@r2", ((first, 2),)),
            ("two@r2,r3", ((first, 2), (second, 3))),
        ]
        cells: dict[str, Any] = {"n": graph.num_nodes}
        for label, crashes in schedules:
            crashed_nodes = [v for v, _ in crashes]
            try:
                faulted = execute_with_faults(
                    algorithm,
                    graph,
                    FaultPlan(crashes=crashes),
                    max_rounds=50,
                )
            except Exception as exc:  # deterministic: recorded, not raised
                cells[label] = f"error:{type(exc).__name__}"
                checks[f"safety under {label} ({name})"] = False
                continue
            outputs = dict(faulted.result.outputs)
            safe = independence_preserved(graph, outputs, exclude=crashed_nodes)
            checks[f"safety under {label} ({name})"] = safe
            if not crashes:
                plain = graph.with_only_layers(["input"])
                checks[f"no-crash valid ({name})"] = faulted.result.all_decided and (
                    problem.is_valid_output(plain, outputs)
                )
            survivors = [v for v in graph.nodes if v not in crashed_nodes]
            decided = sum(1 for v in survivors if v in outputs)
            cells[label] = f"{decided}/{len(survivors)} decided"
        rows.append(SweepRow(name, cells))
    return ExperimentResult(
        experiment_id="resilience-crash",
        title=(
            "RES — greedy-by-color MIS under crash-stop nodes "
            "(surviving nodes decided; independence judged on survivors)"
        ),
        columns=["n", "none", "v0@r1", "v0@r2", "two@r2,r3"],
        rows=rows,
        checks=checks,
    )


@experiment("resilience-corrupt", cost=3.0)
def resilience_corrupt() -> ExperimentResult:
    """Tape corruption vs a simulation induced by a successful assignment.

    Theorem 2 turns a successful random run into a deterministic
    simulation by replaying its recorded bits; this experiment measures
    how brittle that reduction is when the replayed bits decay.
    """
    problem = MISProblem()
    algorithm = AnonymousMISAlgorithm()
    cases = [
        ("cycle-6", with_uniform_input(cycle_graph(6)), 2),
        ("path-5", with_uniform_input(path_graph(5)), 4),
        ("complete-4", with_uniform_input(complete_graph(4)), 1),
    ]
    rows, checks = [], {}
    for name, graph, seed in cases:
        seeded = execute(algorithm, graph, seed=seed, require_decided=True)
        assignment = seeded.trace.assignment()
        cells: dict[str, Any] = {"n": graph.num_nodes}
        outcomes = []
        for rate in CORRUPT_RATES:
            plan = FaultPlan(plan_seed=7, corrupt_rate=rate)
            outcome = probe(
                algorithm,
                graph,
                plan,
                validator=problem.is_valid_output,
                assignment=assignment,
            )
            outcomes.append(outcome)
            cells[f"q={rate:g}"] = (
                f"{outcome.status}"
                + (f" ({outcome.faults_injected} flips)" if outcome.faults_injected else "")
            )
            if rate == 0.0:
                checks[f"clean replay reproduces the run ({name})"] = (
                    outcome.outputs == seeded.outputs
                )
        cells["first break"] = _fmt_break(first_break(list(CORRUPT_RATES), outcomes))
        checks[f"clean replay valid ({name})"] = outcomes[0].ok
        rows.append(SweepRow(name, cells))
    return ExperimentResult(
        experiment_id="resilience-corrupt",
        title=(
            "RES — Theorem 2-style induced simulation under tape-bit "
            "corruption (status per flip rate; first breaking rate)"
        ),
        columns=["n", *[f"q={r:g}" for r in CORRUPT_RATES], "first break"],
        rows=rows,
        checks=checks,
    )


class PortLedgerAlgorithm(PortAwareAlgorithm):
    """Deterministic port workload: each node ledgers, per round, the
    payloads its ports delivered.  The final ledger is a faithful
    transcript of the port abstraction — any reordering or loss changes
    it, so output equality with a fault-free run *is* the validity
    notion for the port model."""

    bits_per_round = 0
    name = "port-ledger"

    def __init__(self, rounds_needed: int) -> None:
        self.rounds_needed = rounds_needed

    def init_state(self, input_label: Any, degree: int) -> tuple[tuple, int]:
        return ((), 0)

    def messages(self, state: tuple[tuple, int], degree: int) -> list[Any]:
        return [(state[1], port) for port in range(degree)]

    def transition(
        self, state: tuple[tuple, int], received: tuple[Any, ...], bits: str
    ) -> tuple[tuple, int]:
        return (state[0] + (tuple(repr(r) for r in received),), state[1] + 1)

    def output(self, state: tuple[tuple, int]) -> tuple | None:
        return state[0] if state[1] >= self.rounds_needed else None


# ---------------------------------------------------------------------------
# Fabric grid sweeps.  The registry experiments above probe a handful of
# hand-picked families; the grids declare the full
# family × fault-rate × seed sweep as atomic fabric tasks, so the
# thousand-point version runs sharded, resumable and cached by code
# fingerprint (see ``repro.experiments.fabric`` and docs/EXPERIMENTS.md).
# ---------------------------------------------------------------------------

GRID_DROP_RATES = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)
GRID_SEEDS = (0, 1, 2)


@register_kernel("two-hop-drop-probe")
def two_hop_drop_kernel(graph: LabeledGraph, drop_rate: float, seed: int) -> dict:
    """One grid point: 2-hop coloring validity under message loss.

    The fault plan's seed and the execution seed both derive from the
    task's 63-bit fabric seed, so a point's randomness is a pure
    function of its identity — never of the shard or worker it ran on.
    """
    plan = FaultPlan(plan_seed=seed & 0x7FFFFFFF, drop_rate=drop_rate)
    outcome = probe(
        TwoHopColoringAlgorithm(),
        graph,
        plan,
        validator=is_two_hop_coloring,
        seed=seed,
        max_rounds=80,
    )
    return {
        "status": outcome.status,
        "rounds": outcome.rounds,
        "faults_injected": outcome.faults_injected,
    }


register_grid(
    GridSweep(
        name="resilience-drop-grid",
        kernel="two-hop-drop-probe",
        families=tuple(standard_family_specs(sizes=(6, 8, 12))),
        axis="drop_rate",
        values=GRID_DROP_RATES,
        seeds=GRID_SEEDS,
        cost=2.0,
    )
)


@experiment("resilience-reorder", cost=2.0)
def resilience_reorder() -> ExperimentResult:
    """Within-inbox reordering (plus loss) vs the port abstraction."""
    families = [
        ("cycle-6", with_uniform_input(cycle_graph(6))),
        ("path-5", with_uniform_input(path_graph(5))),
    ]
    rows, checks = [], {}
    for name, graph in families:
        algorithm = PortLedgerAlgorithm(rounds_needed=4)
        bare = execute(algorithm, graph, max_rounds=6)

        def matches_bare(
            g: LabeledGraph, outputs: dict[Node, Any], _bare=bare
        ) -> bool:
            return outputs == _bare.outputs

        cells: dict[str, Any] = {"n": graph.num_nodes}
        outcomes = []
        reorder_events = 0
        for rate in REORDER_RATES:
            plan = FaultPlan(plan_seed=13, reorder_rate=rate, drop_rate=rate / 5)
            outcome = probe(
                algorithm, graph, plan, validator=matches_bare, max_rounds=6
            )
            outcomes.append(outcome)
            reorder_events += dict(outcome.fault_counts).get("reorder", 0)
            cells[f"r={rate:g}"] = outcome.status
        cells["first break"] = _fmt_break(first_break(list(REORDER_RATES), outcomes))
        checks[f"zero-rate transcript identical ({name})"] = outcomes[0].ok
        checks[f"reordering observed ({name})"] = reorder_events > 0
        rows.append(SweepRow(name, cells))
    return ExperimentResult(
        experiment_id="resilience-reorder",
        title=(
            "RES — port-numbered delivery under within-inbox reordering "
            "and loss (ledger transcript vs fault-free run)"
        ),
        columns=["n", *[f"r={r:g}" for r in REORDER_RATES], "first break"],
        rows=rows,
        checks=checks,
    )
