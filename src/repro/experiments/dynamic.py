"""The ``dynamic`` experiment family: guarantees under topology churn.

The paper fixes the graph for the whole computation; these experiments
measure what survives when it churns.  Every churn decision comes from
a seeded, byte-replayable :class:`~repro.dynamic.delta.ChurnPlan`, so
results are bit-identical across runs, job counts and machines, like
every other registry entry:

* ``churn-views`` — incremental view maintenance under churn traces,
  with the from-scratch differential oracle checked after every batch
  and the blast-radius reuse fractions tabulated;
* ``churn-validity`` — 2-hop coloring validity swept over churn rates,
  judged against the *final* churned snapshot (the paper's stage-1
  guarantee, measured as it decays);
* ``churn-engine`` — the ambient :func:`~repro.dynamic.context.
  apply_churn` hook composed with PR-4 fault plans on a deterministic
  inbox-ledger workload, proving the two ambient wrappers stack.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.two_hop_coloring import TwoHopColoringAlgorithm
from repro.analysis.churn import ChurnOutcome, churn_probe
from repro.analysis.resilience import first_break
from repro.analysis.sweeps import SweepRow
from repro.dynamic import (
    ChurnPlan,
    ChurnSchedule,
    DynamicGraph,
    apply_churn,
    differential_check,
)
from repro.exceptions import DynamicError
from repro.experiments.base import ExperimentResult, experiment
from repro.faults import FaultPlan, inject_faults
from repro.graphs.builders import (
    cycle_graph,
    hypercube_graph,
    random_connected_graph,
    random_regular_graph,
    with_uniform_input,
)
from repro.graphs.coloring import is_two_hop_coloring
from repro.runtime.algorithm import FunctionAlgorithm
from repro.runtime.engine import execute

CHURN_RATES = (0.0, 0.05, 0.1, 0.2)
SEEDS = (0, 1, 2)


def _status_summary(outcomes: "list[ChurnOutcome]") -> str:
    """Compact multi-seed status cell, e.g. ``"ok:2 invalid:1"``."""
    counts: dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return " ".join(f"{status}:{n}" for status, n in sorted(counts.items()))


def _fmt_break(rate: "float | None") -> str:
    return "-" if rate is None else f"{rate:g}"


@experiment("churn-views", cost=3.0)
def churn_views() -> ExperimentResult:
    """Incremental view maintenance vs the from-scratch oracle.

    Each family runs a fixed five-batch churn trace through a
    :class:`DynamicGraph` with an attached maintainer;
    :func:`differential_check` re-proves byte- and identity-equality
    with a clean :class:`~repro.views.local_views.ViewBuilder` rebuild
    after every batch, and the table reports how much of the view state
    the blast-radius rule reused.
    """
    depth, trace_rounds = 6, 5
    plan = ChurnPlan(
        plan_seed=17,
        insert_rate=0.08,
        delete_rate=0.08,
        relabel_rate=0.05,
        relabel_values=(("A",), ("B",)),
    )
    families = [
        ("cycle-16", with_uniform_input(cycle_graph(16))),
        ("hypercube-4", with_uniform_input(hypercube_graph(4))),
        ("random-regular-12", with_uniform_input(random_regular_graph(12, 3, seed=5))),
    ]
    rows, checks = [], {}
    for name, graph in families:
        dynamic = DynamicGraph(graph)
        maintainer = dynamic.maintainer(depth)
        schedule = ChurnSchedule(plan)
        oracle_ok = True
        for round_number in range(1, trace_rounds + 1):
            batch = schedule.batch(round_number, dynamic.graph)
            if batch:
                dynamic.apply(batch)
            try:
                differential_check(maintainer)
            except DynamicError:
                oracle_ok = False
                break
        stats = maintainer.stats()
        slots = stats["recomputed"] + stats["reused"]
        cells: dict[str, Any] = {
            "n": graph.num_nodes,
            "deltas": len(dynamic.log),
            "recomputed": stats["recomputed"],
            "reused": stats["reused"],
            "reuse %": f"{stats['reused'] * 100 // slots if slots else 100}%",
        }
        checks[f"oracle byte-identical after every batch ({name})"] = oracle_ok
        checks[f"churn observed ({name})"] = len(dynamic.log) > 0
        checks[f"subtrees reused across batches ({name})"] = stats["reused"] > 0
        rows.append(SweepRow(name, cells))
    return ExperimentResult(
        experiment_id="churn-views",
        title=(
            "DYN — incremental view maintenance under churn traces "
            f"(depth {depth}, {trace_rounds} batches; from-scratch oracle "
            "after every batch)"
        ),
        columns=["n", "deltas", "recomputed", "reused", "reuse %"],
        rows=rows,
        checks=checks,
    )


@experiment("churn-validity", cost=4.0)
def churn_validity() -> ExperimentResult:
    """Churn rate vs 2-hop coloring validity, judged on the final graph.

    The randomized stage-1 algorithm colors against the topology it
    *observes*; churn makes that observation stale, so validity on the
    final snapshot is exactly the guarantee that decays.  Swept over
    insert+delete rates and three seeds per rate.
    """
    algorithm = TwoHopColoringAlgorithm()
    families = [
        ("cycle-8", with_uniform_input(cycle_graph(8))),
        ("random-10", with_uniform_input(random_connected_graph(10, 0.3, seed=10))),
    ]
    rows, checks = [], {}
    for name, graph in families:
        worst_by_rate: list[ChurnOutcome] = []
        cells: dict[str, Any] = {"n": graph.num_nodes}
        deltas_total = 0
        for rate in CHURN_RATES:
            outcomes = []
            for seed in SEEDS:
                plan = ChurnPlan(
                    plan_seed=100 * seed + 1, insert_rate=rate, delete_rate=rate
                )
                outcome = churn_probe(
                    algorithm,
                    graph,
                    plan,
                    validator=is_two_hop_coloring,
                    seed=seed,
                    max_rounds=80,
                )
                outcomes.append(outcome)
                deltas_total += outcome.deltas_applied
                if rate == 0.0:
                    bare = execute(algorithm, graph, seed=seed, max_rounds=80)
                    checks[f"zero-churn matches bare ({name}, seed {seed})"] = (
                        outcome.outputs == bare.outputs
                    )
            cells[f"c={rate:g}"] = _status_summary(outcomes)
            worst_by_rate.append(
                min(outcomes, key=lambda o: o.ok)  # any non-ok makes the rate broken
            )
        cells["first break"] = _fmt_break(first_break(list(CHURN_RATES), worst_by_rate))
        checks[f"zero churn survives ({name})"] = worst_by_rate[0].ok
        checks[f"churn observed ({name})"] = deltas_total > 0
        rows.append(SweepRow(name, cells))
    return ExperimentResult(
        experiment_id="churn-validity",
        title=(
            "DYN — randomized 2-hop coloring under topology churn "
            "(status per insert+delete rate, 3 seeds; validity judged on "
            "the final snapshot)"
        ),
        columns=["n", *[f"c={r:g}" for r in CHURN_RATES], "first break"],
        rows=rows,
        checks=checks,
    )


def _ledger(stop_at: int) -> FunctionAlgorithm:
    """Decides after ``stop_at`` rounds with the per-round inbox sizes —
    a faithful transcript of delivery, so churn (degree changes) and
    faults (losses) both leave fingerprints in the output."""
    return FunctionAlgorithm(
        init=lambda label, deg: ((), 0),
        msg=lambda s: s[1],
        step=lambda s, received, b: (s[0] + (len(received),), s[1] + 1),
        out=lambda s: s[0] if s[1] >= stop_at else None,
        bits_per_round=0,
        name="inbox-ledger",
    )


@experiment("churn-engine", cost=2.0)
def churn_engine() -> ExperimentResult:
    """Ambient churn composed with ambient fault injection.

    Runs a deterministic inbox-ledger workload under the four corners of
    {no churn, churn} x {no faults, drops}: the composed corner must
    apply both kinds of events, every corner must replay byte-
    identically, and the empty-empty corner must match the bare engine.
    """
    graph = with_uniform_input(cycle_graph(8))
    rounds = 5
    churn_plan = ChurnPlan(plan_seed=5, insert_rate=0.3, delete_rate=0.3)
    fault_plan = FaultPlan(plan_seed=1, drop_rate=0.3)
    corners = [
        ("static", ChurnPlan(), FaultPlan()),
        ("churn", churn_plan, FaultPlan()),
        ("faults", ChurnPlan(), fault_plan),
        ("churn+faults", churn_plan, fault_plan),
    ]
    bare = execute(_ledger(rounds), graph, max_rounds=rounds)
    rows, checks = [], {}
    cells: dict[str, Any] = {"n": graph.num_nodes}
    for label, cp, fp in corners:
        runs = []
        for _ in range(2):  # replay determinism: every corner runs twice
            with inject_faults(fp):
                with apply_churn(cp) as churn:
                    result = execute(_ledger(rounds), graph, max_rounds=rounds)
            runs.append((result, churn.deltas_applied))
        (result, deltas), (replay, replay_deltas) = runs
        checks[f"replay byte-identical ({label})"] = (
            result.outputs == replay.outputs and deltas == replay_deltas
        )
        if label == "static":
            checks["empty plans match the bare engine"] = (
                result.outputs == bare.outputs
                and deltas == 0
                and result.metrics.faults_injected == 0
            )
        if label == "churn":
            checks["churn leaves a delivery fingerprint"] = (
                result.outputs != bare.outputs and deltas > 0
            )
        if label == "churn+faults":
            checks["composition applies both event kinds"] = (
                deltas > 0 and result.metrics.faults_injected > 0
            )
        decided = sum(1 for v in graph.nodes if v in result.outputs)
        cells[label] = (
            f"{decided}/{graph.num_nodes} decided, d={deltas}, "
            f"f={result.metrics.faults_injected}"
        )
    rows.append(SweepRow("cycle-8", cells))
    return ExperimentResult(
        experiment_id="churn-engine",
        title=(
            "DYN — ambient churn x ambient faults on an inbox-ledger "
            "workload (deltas applied, faults injected, replay checks)"
        ),
        columns=["n", "static", "churn", "faults", "churn+faults"],
        rows=rows,
        checks=checks,
    )
